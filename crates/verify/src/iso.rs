//! State isomorphisms for quotient-aware trace extraction.
//!
//! When the explorer merges a freshly computed successor `S` into an
//! already-stored representative `R` (because their canonical keys agree),
//! the two states are isomorphic but not identical: their copy subtrees
//! may sit at permuted positions and their raw [`spi_semantics::NameId`]s
//! may differ.  Redirecting the edge to `R` and exploring on from there is
//! sound for *reachability*, but the observations recorded in `R`'s
//! future are in `R`'s coordinate system — creator positions and nonce
//! identities of `R`'s lineage, not of the run that actually reached the
//! merge point.  An [`Iso`] records the coordinate change `R → S`, so
//! trace extraction can map every future observation back into the true
//! lineage and reconstruct exactly the trace set of the unquotiented
//! semantics.
//!
//! An iso has two halves:
//!
//! * a **path permutation** ([`PathPerm`]): prefix-rewrite pairs over
//!   session-copy roots, covering creator stamps and localization
//!   positions;
//! * an **id map**: finitely many explicit pairs below `floor`, then a
//!   uniform tail `r ↦ r + shift` for `r ≥ floor`.  The explicit pairs
//!   come from zipping the canonicalization journals of the two merge
//!   sides (equal canonical strings assign their names in the same
//!   order); the tail covers names the representative allocates *after*
//!   the merge point, which the true lineage would have allocated in
//!   lockstep at an offset of `shift = |S names| − |R names|`.
//!
//! Isos are kept in a *normal form* (identity pairs dropped, pairs sorted,
//! the floor lowered past any tail-consistent suffix, `floor = 0` when the
//! tail is the identity), so extensional equality coincides with
//! structural equality.  [`IsoTable`] interns normal forms; because every
//! iso arising during extraction maps real-state name spaces (bounded by
//! the largest name table in the system), the interned set is finite and
//! iso-aware closures terminate even on τ-cycles whose composed iso is a
//! non-trivial automorphism.

use std::collections::HashMap;

use spi_semantics::PathPerm;

use crate::{ObsEvent, ObsTerm};

/// A state isomorphism in flattened normal form: a path permutation plus
/// an id map (explicit pairs below `floor`, shifted tail above).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Iso {
    /// The path half: copy-root prefix rewrites.
    perm: PathPerm,
    /// Explicit id pairs `(src, dst)`, sorted by `src`; all `src < floor`.
    ids: Vec<(u32, u32)>,
    /// Ids at or above this behave uniformly as `r ↦ r + shift`.
    floor: u32,
    /// The tail offset (`0` when `floor` is `0`).
    shift: i64,
}

impl Iso {
    /// The identity isomorphism.
    #[must_use]
    pub fn identity() -> Iso {
        Iso::default()
    }

    /// Builds an iso and normalizes it: identity pairs are dropped, pairs
    /// are sorted, the floor is lowered past any tail-consistent suffix,
    /// and a zero shift zeroes the floor.  Extensionally equal inputs
    /// produce structurally equal normal forms.
    #[must_use]
    pub fn new(perm: PathPerm, ids: Vec<(u32, u32)>, floor: u32, shift: i64) -> Iso {
        let mut ids: Vec<(u32, u32)> = ids.into_iter().filter(|(a, b)| a != b).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut floor = floor;
        let mut shift = shift;
        // Lower the floor past every id that already behaves like the
        // tail; the pairs that encoded it become redundant.
        loop {
            if floor == 0 {
                break;
            }
            let r = floor - 1;
            let mapped = match ids.binary_search_by_key(&r, |(a, _)| *a) {
                Ok(i) => i64::from(ids[i].1),
                Err(_) => i64::from(r),
            };
            if mapped == i64::from(r) + shift {
                if let Ok(i) = ids.binary_search_by_key(&r, |(a, _)| *a) {
                    ids.remove(i);
                }
                floor = r;
            } else {
                break;
            }
        }
        if shift == 0 {
            // An identity tail starts wherever the pairs end.
            floor = ids.last().map_or(0, |(a, _)| a + 1);
            shift = 0;
        }
        debug_assert!(ids.iter().all(|(a, _)| *a < floor || shift == 0));
        Iso {
            perm,
            ids,
            floor,
            shift,
        }
    }

    /// Returns `true` for the identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.perm.is_identity() && self.ids.is_empty() && self.shift == 0
    }

    /// Returns `true` when the iso moves tree positions (a genuine
    /// session-symmetry merge, not just a name renumbering).
    #[must_use]
    pub fn permutes_paths(&self) -> bool {
        !self.perm.is_identity()
    }

    /// Maps one raw name id.
    #[must_use]
    pub fn apply_id(&self, r: u32) -> u32 {
        match self.ids.binary_search_by_key(&r, |(a, _)| *a) {
            Ok(i) => self.ids[i].1,
            Err(_) if r >= self.floor => {
                u32::try_from(i64::from(r) + self.shift).unwrap_or(u32::MAX)
            }
            Err(_) => r,
        }
    }

    /// Maps one observation into the target coordinate system.
    #[must_use]
    pub fn apply_event(&self, ev: &ObsEvent) -> ObsEvent {
        if self.is_identity() {
            return ev.clone();
        }
        ObsEvent {
            chan: ev.chan.clone(),
            payload: self.apply_obs(&ev.payload),
        }
    }

    fn apply_obs(&self, t: &ObsTerm) -> ObsTerm {
        match t {
            ObsTerm::Free(n) => ObsTerm::Free(n.clone()),
            ObsTerm::Fresh { nonce, creator } => ObsTerm::Fresh {
                nonce: self.apply_id(*nonce),
                creator: self.perm.apply(creator),
            },
            ObsTerm::Pair(a, b, creator) => ObsTerm::Pair(
                Box::new(self.apply_obs(a)),
                Box::new(self.apply_obs(b)),
                creator.as_ref().map(|p| self.perm.apply(p)),
            ),
            ObsTerm::Enc(body, key, creator) => ObsTerm::Enc(
                body.iter().map(|x| self.apply_obs(x)).collect(),
                Box::new(self.apply_obs(key)),
                creator.as_ref().map(|p| self.perm.apply(p)),
            ),
        }
    }

    /// The composition "`first`, then `then`" (i.e. `then ∘ first`): maps
    /// through `first` into its target system, then through `then`.
    #[must_use]
    pub fn compose(first: &Iso, then: &Iso) -> Iso {
        if first.is_identity() {
            return then.clone();
        }
        if then.is_identity() {
            return first.clone();
        }
        let shift = first.shift + then.shift;
        // Beyond F both maps act by their tails (the tail of `first`
        // lands in the tail region of `then` — merge-side tables line up).
        let bound = i64::from(first.floor).max(i64::from(then.floor) - first.shift).max(0);
        let bound = u32::try_from(bound).unwrap_or(u32::MAX);
        let ids = (0..bound)
            .map(|r| (r, then.apply_id(first.apply_id(r))))
            .collect();
        Iso::new(first.perm.then(&then.perm), ids, bound, shift)
    }
}

/// An interning table of isomorphisms.  Index `0` is always the identity;
/// composition results are memoized by operand ids, which keeps iso-aware
/// closure computations linear in distinct `(iso, iso)` pairs.
#[derive(Debug, Clone, Default)]
pub struct IsoTable {
    isos: Vec<Iso>,
    index: HashMap<Iso, u32>,
    memo: HashMap<(u32, u32), u32>,
}

impl IsoTable {
    /// A table holding only the identity (id `0`).
    #[must_use]
    pub fn new() -> IsoTable {
        let mut t = IsoTable::default();
        t.isos.push(Iso::identity());
        t.index.insert(Iso::identity(), 0);
        t
    }

    /// Rebuilds a table from a stored iso list (index positions are
    /// preserved; the list must start with the identity, as produced by
    /// [`IsoTable::into_isos`]).
    #[must_use]
    pub fn from_isos(isos: Vec<Iso>) -> IsoTable {
        if isos.is_empty() {
            return IsoTable::new();
        }
        let index = isos
            .iter()
            .enumerate()
            .map(|(i, iso)| (iso.clone(), i as u32))
            .collect();
        IsoTable {
            isos,
            index,
            memo: HashMap::new(),
        }
    }

    /// The interned isos, identity first.
    #[must_use]
    pub fn into_isos(self) -> Vec<Iso> {
        self.isos
    }

    /// Returns `true` when only the identity is interned.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.isos.len() <= 1
    }

    /// Interns a (normalized) iso, returning its id.
    pub fn intern(&mut self, iso: Iso) -> u32 {
        if let Some(&id) = self.index.get(&iso) {
            return id;
        }
        let id = u32::try_from(self.isos.len()).unwrap_or(u32::MAX);
        self.index.insert(iso.clone(), id);
        self.isos.push(iso);
        id
    }

    /// The iso with id `id`.
    #[must_use]
    pub fn get(&self, id: u32) -> &Iso {
        &self.isos[id as usize]
    }

    /// Memoized composition by id: "`first`, then `then`".
    pub fn compose_ids(&mut self, first: u32, then: u32) -> u32 {
        if first == 0 {
            return then;
        }
        if then == 0 {
            return first;
        }
        if let Some(&id) = self.memo.get(&(first, then)) {
            return id;
        }
        let composed = Iso::compose(self.get(first), self.get(then));
        let id = self.intern(composed);
        self.memo.insert((first, then), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_addr::Path;
    use spi_syntax::Name;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn normalization_gives_extensional_identity() {
        // Pairs that spell out a uniform shift collapse into the tail.
        let a = Iso::new(PathPerm::identity(), vec![(3, 5), (4, 6)], 5, 2);
        let b = Iso::new(PathPerm::identity(), vec![], 3, 2);
        assert_eq!(a, b);
        // An identity-tail iso with no pairs is the identity.
        let c = Iso::new(PathPerm::identity(), vec![(7, 7)], 9, 0);
        assert!(c.is_identity());
    }

    #[test]
    fn apply_id_uses_pairs_then_tail() {
        let iso = Iso::new(PathPerm::identity(), vec![(1, 4), (4, 1)], 6, 3);
        assert_eq!(iso.apply_id(1), 4);
        assert_eq!(iso.apply_id(4), 1);
        assert_eq!(iso.apply_id(2), 2, "below floor, no pair: fixed");
        assert_eq!(iso.apply_id(6), 9, "tail shifts");
        assert_eq!(iso.apply_id(100), 103);
    }

    #[test]
    fn compose_agrees_with_pointwise_application() {
        let f = Iso::new(PathPerm::identity(), vec![(0, 2), (2, 0)], 4, 1);
        let g = Iso::new(PathPerm::identity(), vec![(2, 3), (3, 2)], 5, -1);
        let fg = Iso::compose(&f, &g);
        for r in 0..50 {
            assert_eq!(fg.apply_id(r), g.apply_id(f.apply_id(r)), "at {r}");
        }
    }

    #[test]
    fn compose_with_paths_maps_events() {
        let swap = PathPerm::from_pairs([(p("00"), p("010")), (p("010"), p("00"))]);
        let iso = Iso::new(swap, vec![(1, 2), (2, 1)], 3, 0);
        let ev = ObsEvent {
            chan: Name::new("o"),
            payload: ObsTerm::Fresh {
                nonce: 1,
                creator: p("001"),
            },
        };
        let mapped = iso.apply_event(&ev);
        assert_eq!(
            mapped.payload,
            ObsTerm::Fresh {
                nonce: 2,
                creator: p("0101"),
            }
        );
    }

    #[test]
    fn table_interns_extensionally() {
        let mut t = IsoTable::new();
        let a = t.intern(Iso::new(PathPerm::identity(), vec![(3, 5), (4, 6)], 5, 2));
        let b = t.intern(Iso::new(PathPerm::identity(), vec![], 3, 2));
        assert_eq!(a, b);
        assert_eq!(t.intern(Iso::identity()), 0);
        // Composing an iso with its inverse is the identity.
        let swap = t.intern(Iso::new(PathPerm::identity(), vec![(1, 2), (2, 1)], 3, 0));
        assert_eq!(t.compose_ids(swap, swap), 0);
    }

    #[test]
    fn cyclic_composition_terminates_in_a_finite_group() {
        // A 3-cycle on ids: composing it with itself repeatedly stays in
        // the 3-element subgroup the interning table makes finite.
        let mut t = IsoTable::new();
        let c = t.intern(Iso::new(
            PathPerm::identity(),
            vec![(0, 1), (1, 2), (2, 0)],
            3,
            0,
        ));
        let mut seen = std::collections::BTreeSet::new();
        let mut cur = c;
        for _ in 0..10 {
            cur = t.compose_ids(cur, c);
            seen.insert(cur);
        }
        assert!(seen.len() <= 3, "{seen:?}");
        assert!(seen.contains(&0), "the cycle closes at the identity");
    }
}
