//! E1 / micro: the relative-address algebra — `between`, `inverse`,
//! `compose`, `resolve_at` — at several path depths, plus Figure 1 tree
//! operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spi_addr::{ProcTree, RelAddr};
use spi_bench::{random_path, rng};

fn bench_between_and_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("addr_ops");
    for depth in [4usize, 16, 64] {
        let mut r = rng(1);
        let triples: Vec<_> = (0..256)
            .map(|_| {
                (
                    random_path(&mut r, depth),
                    random_path(&mut r, depth),
                    random_path(&mut r, depth),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("between", depth), &triples, |b, ts| {
            b.iter(|| {
                let mut acc = 0usize;
                for (s, t, _) in ts {
                    acc += RelAddr::between(s, t).observer().len();
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("compose", depth), &triples, |b, ts| {
            b.iter(|| {
                let mut acc = 0usize;
                for (creator, sender, receiver) in ts {
                    let tag = RelAddr::between(sender, creator);
                    let comm = RelAddr::between(receiver, sender);
                    acc += tag.compose(&comm).expect("coherent").target().len();
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("resolve", depth), &triples, |b, ts| {
            b.iter(|| {
                let mut acc = 0usize;
                for (s, t, _) in ts {
                    acc += RelAddr::between(s, t)
                        .resolve_at(s)
                        .expect("resolves")
                        .len();
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("proc_tree");
    for leaves in [8usize, 64, 512] {
        // A right spine of the requested width.
        let mut tree = ProcTree::leaf(0usize);
        for i in 1..leaves {
            tree = ProcTree::node(ProcTree::leaf(i), tree);
        }
        group.bench_with_input(BenchmarkId::new("iterate", leaves), &tree, |b, t| {
            b.iter(|| t.leaves().map(|(p, _)| p.len()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("lookup", leaves), &tree, |b, t| {
            let paths: Vec<_> = t.leaves().map(|(p, _)| p).collect();
            b.iter(|| {
                let mut acc = 0usize;
                for p in &paths {
                    acc += *t.leaf_at(p).expect("leaf");
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(addr, bench_between_and_compose, bench_tree_ops);
criterion_main!(addr);
