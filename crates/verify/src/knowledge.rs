//! Dolev–Yao knowledge: what an intruder can learn and derive.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spi_semantics::{NameTable, RtTerm};

/// Source of fresh knowledge generations: every content change gets a
/// globally unique stamp, so `(generation, goal)` soundly keys derivation
/// memos even across clones (clones share a generation exactly when they
/// share content).
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A Dolev–Yao knowledge base over run-time messages.
///
/// The base is kept *analyzed*: whenever a message is learnt, pairs are
/// projected and ciphertexts are opened when their key is derivable, to a
/// fixpoint.  Derivability ([`Knowledge::can_derive`]) then only needs
/// synthesis: a term is derivable when it is in the analyzed set or can be
/// built from derivable parts by pairing and encryption.
///
/// Provenance is part of knowledge: the intruder stores messages *with*
/// their creator stamps (it cannot forge them — relative addresses "are
/// not available to the users" of the calculus).  Replaying a stored
/// ciphertext therefore delivers the original creator's message, which is
/// exactly what makes the paper's replay attack on `Pm2` observable.
///
/// # Example
///
/// ```
/// use spi_verify::Knowledge;
/// use spi_semantics::{NameTable, RtTerm};
/// use spi_syntax::Name;
///
/// let mut names = NameTable::new();
/// let k = names.alloc_restricted(&Name::new("k"), "1".parse()?);
/// let m = names.alloc_restricted(&Name::new("m"), "0".parse()?);
/// let cipher = RtTerm::Enc {
///     body: vec![RtTerm::Id(m)],
///     key: Box::new(RtTerm::Id(k)),
///     creator: None,
/// };
///
/// let mut kn = Knowledge::new();
/// kn.learn(cipher.clone());
/// // Without the key, the content stays opaque...
/// assert!(!kn.can_derive(&RtTerm::Id(m)));
/// assert!(kn.can_derive(&cipher));
/// // ...until the key is learnt.
/// kn.learn(RtTerm::Id(k));
/// assert!(kn.can_derive(&RtTerm::Id(m)));
/// # Ok::<(), spi_addr::AddrError>(())
/// ```
/// The analyzed set lives behind an [`Arc`] so cloning a knowledge base
/// (once per candidate successor during exploration) is a pointer bump;
/// `learn` copies the set only when it actually inserts.  `generation`
/// is a cache stamp, not part of the value: equality, ordering and
/// hashing ignore it.
#[derive(Debug, Clone, Default)]
pub struct Knowledge {
    analyzed: Arc<BTreeSet<RtTerm>>,
    generation: u64,
}

impl PartialEq for Knowledge {
    fn eq(&self, other: &Knowledge) -> bool {
        self.analyzed == other.analyzed
    }
}

impl Eq for Knowledge {}

impl PartialOrd for Knowledge {
    fn partial_cmp(&self, other: &Knowledge) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Knowledge {
    fn cmp(&self, other: &Knowledge) -> std::cmp::Ordering {
        self.analyzed.cmp(&other.analyzed)
    }
}

impl std::hash::Hash for Knowledge {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.analyzed.hash(state);
    }
}

impl Knowledge {
    /// An empty knowledge base.
    #[must_use]
    pub fn new() -> Knowledge {
        Knowledge::default()
    }

    /// The analyzed messages, smallest first.
    pub fn iter(&self) -> impl Iterator<Item = &RtTerm> {
        self.analyzed.iter()
    }

    /// The number of analyzed messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.analyzed.len()
    }

    /// Returns `true` when nothing has been learnt.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.analyzed.is_empty()
    }

    /// Learns a message and re-analyzes to a fixpoint: pairs are
    /// projected, and every stored ciphertext whose key has become
    /// derivable is opened.
    pub fn learn(&mut self, msg: RtTerm) {
        debug_assert!(msg.is_message(), "knowledge stores messages only");
        if self.analyzed.contains(&msg) {
            return;
        }
        Arc::make_mut(&mut self.analyzed).insert(msg);
        // Re-analyze to a fixpoint.
        loop {
            let mut new: Vec<RtTerm> = Vec::new();
            for t in self.analyzed.iter() {
                match t {
                    RtTerm::Pair { fst, snd, .. } => {
                        for part in [fst.as_ref(), snd.as_ref()] {
                            if !self.analyzed.contains(part) {
                                new.push(part.clone());
                            }
                        }
                    }
                    RtTerm::Enc { body, key, .. } if self.can_derive(key) => {
                        for part in body {
                            if !self.analyzed.contains(part) {
                                new.push(part.clone());
                            }
                        }
                    }
                    _ => {}
                }
            }
            if new.is_empty() {
                break;
            }
            let set = Arc::make_mut(&mut self.analyzed);
            for t in new {
                set.insert(t);
            }
        }
        self.generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
    }

    /// The cache stamp of this base's content: changes whenever `learn`
    /// actually inserts, and is shared by clones (which share content).
    /// Distinct stamps never alias distinct contents, so memoizing
    /// derivability on `(generation, goal)` is sound.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A copy with every stored message rewritten through `f`.  Intended
    /// for structure-preserving renamings (copy permutations rewriting
    /// creator stamps): such maps send the analyzed fixpoint to the
    /// analyzed fixpoint, so no re-analysis runs.
    #[must_use]
    pub fn map_terms<F: Fn(&RtTerm) -> RtTerm>(&self, f: F) -> Knowledge {
        Knowledge {
            analyzed: Arc::new(self.analyzed.iter().map(f).collect()),
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Can the intruder derive `goal`?  Synthesis over the analyzed set:
    /// a term is derivable when stored, or buildable by pairing /
    /// encryption from derivable parts.
    ///
    /// Creator stamps matter: a ciphertext the intruder *builds* is a
    /// different message (it will be stamped with the intruder's position
    /// on injection) from an identical-looking stored one, so derivability
    /// of a specifically-stamped term requires having stored it.
    #[must_use]
    pub fn can_derive(&self, goal: &RtTerm) -> bool {
        if self.analyzed.contains(goal) {
            return true;
        }
        match goal {
            RtTerm::Pair { fst, snd, creator } => {
                // Only unstamped composites can be freshly built.
                creator.is_none() && self.can_derive(fst) && self.can_derive(snd)
            }
            RtTerm::Enc { body, key, creator } => {
                creator.is_none() && body.iter().all(|t| self.can_derive(t)) && self.can_derive(key)
            }
            _ => false,
        }
    }

    /// The candidate payloads for injecting into an input whose
    /// continuation expects a ciphertext under `key` with `arity`
    /// components: stored ciphertexts of that shape, plus freshly built
    /// ones when the key is derivable (bounded by `cap` combinations).
    #[must_use]
    pub fn ciphertext_candidates(&self, key: &RtTerm, arity: usize, cap: usize) -> Vec<RtTerm> {
        self.ciphertext_candidates_with(key, arity, cap, self.can_derive(key))
    }

    fn ciphertext_candidates_with(
        &self,
        key: &RtTerm,
        arity: usize,
        cap: usize,
        key_derivable: bool,
    ) -> Vec<RtTerm> {
        let mut out: Vec<RtTerm> = Vec::new();
        for t in self.analyzed.iter() {
            if let RtTerm::Enc { body, key: k, .. } = t {
                if k.as_ref() == key && body.len() == arity {
                    out.push(t.clone());
                }
            }
        }
        if key_derivable {
            // Freshly built ciphertexts over analyzed atoms, capped.
            let atoms: Vec<&RtTerm> = self.analyzed.iter().collect();
            let mut stack: Vec<Vec<RtTerm>> = vec![Vec::new()];
            'outer: while let Some(partial) = stack.pop() {
                if partial.len() == arity {
                    let built = RtTerm::Enc {
                        body: partial,
                        key: Box::new(key.clone()),
                        creator: None,
                    };
                    if !out.contains(&built) {
                        out.push(built);
                    }
                    if out.len() >= cap {
                        break 'outer;
                    }
                    continue;
                }
                for a in &atoms {
                    let mut next = partial.clone();
                    next.push((*a).clone());
                    stack.push(next);
                    if stack.len() > cap * 4 {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Renders the knowledge base for diagnostics.
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        let items: Vec<String> = self.analyzed.iter().map(|t| t.display(names)).collect();
        format!("{{{}}}", items.join(", "))
    }
}

/// A memo table for [`Knowledge::can_derive`], keyed on the knowledge
/// base's [`generation`](Knowledge::generation) and the goal term, so the
/// intruder's derivation closure is not recomputed once per candidate
/// successor.  Each explorer worker owns one; entries never go stale
/// because generations are never reused for different contents.
#[derive(Debug, Clone, Default)]
pub struct DeriveCache {
    map: HashMap<(u64, RtTerm), bool>,
}

impl DeriveCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> DeriveCache {
        DeriveCache::default()
    }

    /// Memoized [`Knowledge::can_derive`].
    pub fn can_derive(&mut self, kn: &Knowledge, goal: &RtTerm) -> bool {
        if let Some(&hit) = self.map.get(&(kn.generation, goal.clone())) {
            return hit;
        }
        let answer = kn.can_derive(goal);
        self.map.insert((kn.generation, goal.clone()), answer);
        answer
    }

    /// Memoized [`Knowledge::ciphertext_candidates`] key check plus the
    /// candidate enumeration itself (enumeration is cheap once the
    /// derivability of the key is known).
    pub fn ciphertext_candidates(
        &mut self,
        kn: &Knowledge,
        key: &RtTerm,
        arity: usize,
        cap: usize,
    ) -> Vec<RtTerm> {
        kn.ciphertext_candidates_with(key, arity, cap, self.can_derive(kn, key))
    }
}

impl Extend<RtTerm> for Knowledge {
    fn extend<I: IntoIterator<Item = RtTerm>>(&mut self, iter: I) {
        for t in iter {
            self.learn(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_addr::Path;
    use spi_syntax::Name;

    fn setup() -> (NameTable, RtTerm, RtTerm, RtTerm) {
        let mut names = NameTable::new();
        let k = names.alloc_restricted(&Name::new("k"), "1".parse::<Path>().unwrap());
        let m = names.alloc_restricted(&Name::new("m"), "0".parse::<Path>().unwrap());
        let c = names.intern_free(&Name::new("c"));
        (names, RtTerm::Id(k), RtTerm::Id(m), RtTerm::Id(c))
    }

    fn enc(body: Vec<RtTerm>, key: RtTerm) -> RtTerm {
        RtTerm::Enc {
            body,
            key: Box::new(key),
            creator: None,
        }
    }

    fn pair(a: RtTerm, b: RtTerm) -> RtTerm {
        RtTerm::Pair {
            fst: Box::new(a),
            snd: Box::new(b),
            creator: None,
        }
    }

    #[test]
    fn pairs_are_projected() {
        let (_, k, m, _) = setup();
        let mut kn = Knowledge::new();
        kn.learn(pair(k.clone(), m.clone()));
        assert!(kn.can_derive(&k));
        assert!(kn.can_derive(&m));
    }

    #[test]
    fn ciphertexts_open_when_the_key_arrives_later() {
        let (_, k, m, _) = setup();
        let mut kn = Knowledge::new();
        kn.learn(enc(vec![m.clone()], k.clone()));
        assert!(!kn.can_derive(&m), "perfect cryptography");
        kn.learn(k);
        assert!(kn.can_derive(&m), "late key opens stored ciphertexts");
    }

    #[test]
    fn nested_analysis_reaches_a_fixpoint() {
        let (_, k, m, c) = setup();
        // {({m}k, k)}c — learning c opens everything.
        let inner = enc(vec![m.clone()], k.clone());
        let packed = enc(vec![pair(inner, k.clone())], c.clone());
        let mut kn = Knowledge::new();
        kn.learn(packed);
        assert!(!kn.can_derive(&m));
        kn.learn(c);
        assert!(kn.can_derive(&m));
        assert!(kn.can_derive(&k));
    }

    #[test]
    fn synthesis_builds_unstamped_composites_only() {
        let (_, k, m, _) = setup();
        let mut kn = Knowledge::new();
        kn.learn(k.clone());
        kn.learn(m.clone());
        assert!(kn.can_derive(&enc(vec![m.clone()], k.clone())));
        // A creator-stamped ciphertext cannot be forged.
        let stamped = RtTerm::Enc {
            body: vec![m],
            key: Box::new(k),
            creator: Some("00".parse::<Path>().unwrap()),
        };
        assert!(!kn.can_derive(&stamped), "stamps are unforgeable");
        // But once stored (intercepted), it is derivable as-is.
        kn.learn(stamped.clone());
        assert!(kn.can_derive(&stamped));
    }

    #[test]
    fn ciphertext_candidates_prefer_stored_ones() {
        let (_, k, m, c) = setup();
        let stored = RtTerm::Enc {
            body: vec![m],
            key: Box::new(k.clone()),
            creator: Some("00".parse::<Path>().unwrap()),
        };
        let mut kn = Knowledge::new();
        kn.learn(stored.clone());
        kn.learn(c);
        // Key not derivable: only the stored ciphertext qualifies.
        let cands = kn.ciphertext_candidates(&k, 1, 16);
        assert_eq!(cands, vec![stored.clone()]);
        // With the key, fresh ciphertexts over analyzed atoms appear too.
        kn.learn(k.clone());
        let cands = kn.ciphertext_candidates(&k, 1, 16);
        assert!(cands.contains(&stored));
        assert!(cands
            .iter()
            .any(|t| matches!(t, RtTerm::Enc { creator: None, .. })));
    }

    #[test]
    fn candidates_respect_arity() {
        let (_, k, m, _) = setup();
        let mut kn = Knowledge::new();
        kn.learn(enc(vec![m.clone(), m], k.clone()));
        assert!(kn.ciphertext_candidates(&k, 1, 16).is_empty());
        assert_eq!(kn.ciphertext_candidates(&k, 2, 16).len(), 1);
    }

    #[test]
    fn extend_learns_everything() {
        let (_, k, m, _) = setup();
        let mut kn = Knowledge::new();
        kn.extend([k.clone(), m.clone()]);
        assert!(kn.can_derive(&pair(k, m)));
    }

    #[test]
    fn display_lists_messages() {
        let (names, k, _, _) = setup();
        let mut kn = Knowledge::new();
        kn.learn(k);
        assert!(kn.display(&names).contains("k'"));
    }
}
