//! Measure wall-clock exploration time for the Pm2/Pm3 multi-session
//! instances and print one JSON record per configuration, suitable for
//! appending to `BENCH_explore.json`.
//!
//! Run with `cargo run --release -p spi-bench --bin explore_trajectory -- <engine-label> [workers] [reduce-mode]`.
//! The label tags the engine variant being measured (e.g. `seed-sequential`,
//! `hashed-seq`, `parallel`, `symmetry-por`); the harness itself always goes
//! through the public `Verifier` API so successive engine generations are
//! measured the same way.  A reduce mode other than `none` switches to the
//! deeper instance ladder (sessions 3 and 4) that only completes in
//! reasonable time under reduction, and reports the reduction counters.

use std::time::Instant;

use spi_auth::{ReduceOptions, Verifier};
use spi_protocols::multi;
use spi_syntax::Process;

const RUNS: usize = 7;

struct Measured {
    median_ms: f64,
    states: usize,
    transitions: usize,
    quotiented: u64,
    pruned: u64,
}

fn median_ms(verifier: &Verifier, protocol: &Process) -> Measured {
    // Warm-up run (also gives us the state/transition counts).
    let lts = verifier.explore(protocol).expect("explores");
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(verifier.explore(protocol).expect("explores"));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Measured {
        median_ms: samples[samples.len() / 2],
        states: lts.stats.states,
        transitions: lts.stats.edges,
        quotiented: lts.stats.states_quotiented,
        pruned: lts.stats.por_pruned,
    }
}

fn main() {
    let label = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unlabelled".to_string());
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|w| w.parse().ok())
        .unwrap_or(0);
    let reduce = std::env::args()
        .nth(3)
        .map(|m| ReduceOptions::parse(&m).expect("reduce mode: none|symmetry|por|full"))
        .unwrap_or_else(ReduceOptions::none);
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    let deep = std::env::args().nth(4).as_deref() == Some("deep");
    let instances: &[(&str, &Process, u32)] = if reduce.enabled() {
        // The reduced ladder: the shallow rungs for comparability with
        // the unreduced records, the deep ones because only a reduced
        // engine finishes them in reasonable time.  (Pm3 at 4 sessions
        // is beyond even the reduced engine's patience for a 7-run
        // median; its trajectory is documented through 3 sessions.)
        &[
            ("pm2_naive", &pm2, 2),
            ("pm2_naive", &pm2, 3),
            ("pm2_naive", &pm2, 4),
            ("pm3_nonce", &pm3, 2),
            ("pm3_nonce", &pm3, 3),
        ]
    } else if deep {
        // The unreduced wall, measured once for the comparison records.
        &[("pm2_naive", &pm2, 4)]
    } else {
        &[
            ("pm2_naive", &pm2, 2),
            ("pm2_naive", &pm2, 3),
            ("pm3_nonce", &pm3, 2),
        ]
    };
    for &(name, protocol, sessions) in instances {
        let verifier = configure(Verifier::new(["c"]).sessions(sessions), workers, reduce);
        let m = median_ms(&verifier, protocol);
        println!(
            "{{\"engine\": \"{label}\", \"instance\": \"{name}\", \"sessions\": {sessions}, \
             \"reduce\": \"{}\", \"median_ms\": {:.2}, \"states\": {}, \"transitions\": {}, \
             \"states_quotiented\": {}, \"por_pruned\": {}, \"runs\": {RUNS}}}",
            reduce.mode(),
            m.median_ms,
            m.states,
            m.transitions,
            m.quotiented,
            m.pruned,
        );
    }
}

fn configure(verifier: Verifier, workers: usize, reduce: ReduceOptions) -> Verifier {
    // workers == 0 means "leave the verifier at its default" (available
    // parallelism); any other value pins the exploration thread count.
    let verifier = if workers == 0 {
        verifier
    } else {
        verifier.workers(workers)
    };
    verifier.reduce(reduce)
}
