//! Actions of the proved semantics and their firing.

use spi_addr::{Branch, Path, ProcTree};

use crate::config::place;
use crate::{Config, LeafState, MachineError, RtChanIndex, RtTerm};

/// An action the proved semantics offers in a configuration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// An internal communication between an output leaf and an input leaf.
    Comm {
        /// Position of the sender.
        out_path: Path,
        /// Position of the receiver.
        in_path: Path,
    },
    /// One unfolding of a replication: `!P` becomes `P | !P` in place.
    Unfold {
        /// Position of the replication leaf.
        path: Path,
    },
}

/// What happened during a communication — the payload of the proved
/// transition label, used by narrators and explorers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommInfo {
    /// The sender's position (the `‖…` proof part of the output).
    pub sender: Path,
    /// The receiver's position.
    pub receiver: Path,
    /// The channel subject the synchronization happened on.
    pub subject: RtTerm,
    /// The transmitted message, creator-stamped.
    pub payload: RtTerm,
}

/// The result of firing an [`Action`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepInfo {
    /// A communication fired.
    Comm(CommInfo),
    /// A replication unfolded.
    Unfold {
        /// Position of the replication before unfolding (the fresh copy
        /// now lives at `path·‖0`).
        path: Path,
    },
}

/// Does this localization index let `partner` synchronize?
fn index_allows(index: &RtChanIndex, partner: &Path) -> bool {
    match index {
        RtChanIndex::Plain | RtChanIndex::Loc(_) => true,
        RtChanIndex::AtAbs(q) => q == partner,
        // A literal that failed to resolve at its leaf can never fire.
        RtChanIndex::At(_) => false,
    }
}

impl Config {
    /// Enumerates the enabled actions: every internal communication the
    /// localization discipline admits, plus one unfolding per replication
    /// leaf that has spawned fewer than `unfold_bound` copies.
    #[must_use]
    pub fn enabled(&self, unfold_bound: u32) -> Vec<Action> {
        let mut outs = Vec::new();
        let mut ins = Vec::new();
        let mut actions = Vec::new();
        for (path, leaf) in self.tree.leaves() {
            match leaf {
                LeafState::Out { chan, .. } => outs.push((path, chan.clone())),
                LeafState::In { chan, .. } => ins.push((path, chan.clone())),
                LeafState::Bang { unfolded, .. } => {
                    if *unfolded < unfold_bound {
                        actions.push(Action::Unfold { path });
                    }
                }
                LeafState::Dead => {}
            }
        }
        for (op, oc) in &outs {
            for (ip, ic) in &ins {
                if op == ip {
                    continue;
                }
                if oc.subject == ic.subject
                    && index_allows(&oc.index, ip)
                    && index_allows(&ic.index, op)
                {
                    actions.push(Action::Comm {
                        out_path: op.clone(),
                        in_path: ip.clone(),
                    });
                }
            }
        }
        actions
    }

    /// Fires one action.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NotEnabled`] when the action is not offered
    /// by the current configuration, and placement errors from the
    /// continuations.
    pub fn fire(&mut self, action: &Action) -> Result<StepInfo, MachineError> {
        match action {
            Action::Comm { out_path, in_path } => {
                // Validate both sides before mutating anything.
                let (subject, oc_index) = match self.tree.leaf_at(out_path)? {
                    LeafState::Out { chan, .. } => (chan.subject.clone(), chan.index.clone()),
                    _ => {
                        return Err(MachineError::NotALeaf {
                            path: out_path.clone(),
                        })
                    }
                };
                let ic = match self.tree.leaf_at(in_path)? {
                    LeafState::In { chan, .. } => chan.clone(),
                    _ => {
                        return Err(MachineError::NotALeaf {
                            path: in_path.clone(),
                        })
                    }
                };
                if subject != ic.subject {
                    return Err(MachineError::NotEnabled {
                        reason: "channel subjects differ".into(),
                    });
                }
                if !index_allows(&oc_index, in_path) || !index_allows(&ic.index, out_path) {
                    return Err(MachineError::NotEnabled {
                        reason: "localization forbids this pairing".into(),
                    });
                }
                let (payload, _) = self.take_output(out_path, in_path)?;
                self.deliver(in_path, payload.clone(), out_path.clone())?;
                Ok(StepInfo::Comm(CommInfo {
                    sender: out_path.clone(),
                    receiver: in_path.clone(),
                    subject,
                    payload,
                }))
            }
            Action::Unfold { path } => self.unfold(path),
        }
    }

    /// Consumes the output at `out_path`, as received by a partner at
    /// `receiver`: checks the localization discipline, stamps the payload
    /// with its creator, instantiates the sender's location variable (if
    /// any) to `receiver`, and places the continuation.
    ///
    /// Explorers use this directly to model an intruder *intercepting* a
    /// message (the partner being the intruder's position).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NotALeaf`] when `out_path` is not an output
    /// leaf and [`MachineError::NotEnabled`] when its localization refuses
    /// `receiver`.
    pub fn take_output(
        &mut self,
        out_path: &Path,
        receiver: &Path,
    ) -> Result<(RtTerm, StepInfo), MachineError> {
        let LeafState::Out {
            chan,
            payload,
            cont,
        } = self.tree.leaf_at(out_path)?.clone()
        else {
            return Err(MachineError::NotALeaf {
                path: out_path.clone(),
            });
        };
        if !index_allows(&chan.index, receiver) {
            return Err(MachineError::NotEnabled {
                reason: format!("output localization at {out_path} refuses partner {receiver}"),
            });
        }
        let payload = payload.stamp(out_path);
        let cont = match &chan.index {
            RtChanIndex::Loc(lam) => cont.subst_loc(lam, receiver),
            _ => cont,
        };
        let placed = place(cont, out_path.clone(), std::sync::Arc::make_mut(&mut self.names))?;
        std::sync::Arc::make_mut(&mut self.tree).replace(out_path, placed)?;
        Ok((
            payload.clone(),
            StepInfo::Comm(CommInfo {
                sender: out_path.clone(),
                receiver: receiver.clone(),
                subject: chan.subject,
                payload,
            }),
        ))
    }

    /// Delivers `payload` to the input at `in_path` as if sent by the
    /// process at `sender`: checks the localization discipline, stamps the
    /// payload with `sender` (an intruder-built composite becomes the
    /// intruder's), instantiates the receiver's location variable (if any)
    /// to `sender`, substitutes, and places the continuation.
    ///
    /// Explorers use this directly to model an intruder *injecting* a
    /// message.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::NotALeaf`] when `in_path` is not an input
    /// leaf, [`MachineError::NotAMessage`] for a non-message payload, and
    /// [`MachineError::NotEnabled`] when the localization refuses
    /// `sender`.
    pub fn deliver(
        &mut self,
        in_path: &Path,
        payload: RtTerm,
        sender: Path,
    ) -> Result<StepInfo, MachineError> {
        if !payload.is_message() {
            return Err(MachineError::NotAMessage {
                term: payload.display(&self.names),
            });
        }
        let LeafState::In { chan, var, cont } = self.tree.leaf_at(in_path)?.clone() else {
            return Err(MachineError::NotALeaf {
                path: in_path.clone(),
            });
        };
        if !index_allows(&chan.index, &sender) {
            return Err(MachineError::NotEnabled {
                reason: format!("input localization at {in_path} refuses partner {sender}"),
            });
        }
        let payload = payload.stamp(&sender);
        let mut cont = cont.subst_var(&var, &payload);
        if let RtChanIndex::Loc(lam) = &chan.index {
            cont = cont.subst_loc(lam, &sender);
        }
        let placed = place(cont, in_path.clone(), std::sync::Arc::make_mut(&mut self.names))?;
        std::sync::Arc::make_mut(&mut self.tree).replace(in_path, placed)?;
        Ok(StepInfo::Comm(CommInfo {
            sender,
            receiver: in_path.clone(),
            subject: chan.subject,
            payload,
        }))
    }

    /// Unfolds the replication at `path`: the leaf `!P` becomes the node
    /// `(P, !P)`, leaving every other position untouched.
    fn unfold(&mut self, path: &Path) -> Result<StepInfo, MachineError> {
        let LeafState::Bang { body, unfolded } = self.tree.leaf_at(path)?.clone() else {
            return Err(MachineError::NotALeaf { path: path.clone() });
        };
        let copy = place(body.clone(), path.child(Branch::Left), std::sync::Arc::make_mut(&mut self.names))?;
        let replica = ProcTree::leaf(LeafState::Bang {
            body,
            unfolded: unfolded + 1,
        });
        std::sync::Arc::make_mut(&mut self.tree).replace(path, ProcTree::node(copy, replica))?;
        Ok(StepInfo::Unfold { path: path.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn plain_communication_fires() {
        let mut c = cfg("(^m)(c<m> | c(x).observe<x>)");
        let actions = c.enabled(0);
        assert_eq!(
            actions,
            vec![Action::Comm {
                out_path: p("0"),
                in_path: p("1")
            }]
        );
        let info = c.fire(&actions[0]).unwrap();
        match info {
            StepInfo::Comm(ci) => {
                assert_eq!(ci.sender, p("0"));
                assert_eq!(ci.receiver, p("1"));
                // The restriction sits above the parallel split, so it
                // executed at the root: the name's creator is ε.
                assert_eq!(ci.payload.creator(c.names()), Some(&Path::root()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The receiver now outputs the received m on observe.
        match c.tree().leaf_at(&p("1")).unwrap() {
            LeafState::Out { payload, .. } => {
                assert_eq!(payload.creator(c.names()), Some(&Path::root()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn localized_output_refuses_wrong_partner() {
        // The output is localized at absolute ‖1‖0 (via literal 0.10),
        // but the only listener on c is at ‖1‖1.
        let mut c = cfg("c@(0.10)<m> | (d(x) | c(y))");
        assert!(c.enabled(0).is_empty(), "no pairing allowed");
        // Forcing it errors out.
        let err = c
            .fire(&Action::Comm {
                out_path: p("0"),
                in_path: p("11"),
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::NotEnabled { .. }));
    }

    #[test]
    fn localized_output_accepts_the_right_partner() {
        let mut c = cfg("c@(0.10)<m> | (c(y).observe<y> | d(x))");
        let actions = c.enabled(0);
        assert_eq!(
            actions,
            vec![Action::Comm {
                out_path: p("0"),
                in_path: p("10")
            }]
        );
        c.fire(&actions[0]).unwrap();
        assert!(c.barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn location_variables_instantiate_and_pin_the_partner() {
        // B receives on c@lam, then wants a second message on c@lam.
        // Two senders exist; after hooking to the first, only that one may
        // deliver the second message.
        let mut c = cfg("c<m>.c<m> | (c<n>.c<n> | c@lam(x).c@lam(y).observe<y>)");
        // Fire: sender at ‖0 hooks B (at ‖1‖1).
        c.fire(&Action::Comm {
            out_path: p("0"),
            in_path: p("11"),
        })
        .unwrap();
        // Now the other sender at ‖1‖0 must be refused...
        let err = c
            .fire(&Action::Comm {
                out_path: p("10"),
                in_path: p("11"),
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::NotEnabled { .. }));
        // ...while the hooked partner can continue.
        c.fire(&Action::Comm {
            out_path: p("0"),
            in_path: p("11"),
        })
        .unwrap();
        assert!(c.barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn output_location_variables_pin_the_receiver() {
        // The sender's channel is localized by a location variable: after
        // the first send it is pinned to whoever received.
        let mut c = cfg("c@lam<m>.c@lam<m> | (c(x) | c(y).observe<y>)");
        c.fire(&Action::Comm {
            out_path: p("0"),
            in_path: p("10"),
        })
        .unwrap();
        // The second output may now only go to ‖1‖0, whose input is gone.
        assert!(c.enabled(0).is_empty());
    }

    #[test]
    fn unfold_grows_in_place() {
        let mut c = cfg("!(^m) c<m> | c(x)");
        let actions = c.enabled(1);
        assert!(actions.contains(&Action::Unfold { path: p("0") }));
        c.fire(&Action::Unfold { path: p("0") }).unwrap();
        // The copy sits at ‖0‖0, the replica at ‖0‖1; the input at ‖1 is
        // untouched.
        assert!(matches!(
            c.tree().leaf_at(&p("00")).unwrap(),
            LeafState::Out { .. }
        ));
        assert!(matches!(
            c.tree().leaf_at(&p("01")).unwrap(),
            LeafState::Bang { unfolded: 1, .. }
        ));
        // The unfold bound now blocks a second unfolding at bound 1.
        assert!(!c.enabled(1).contains(&Action::Unfold { path: p("01") }));
        assert!(c.enabled(2).contains(&Action::Unfold { path: p("01") }));
    }

    #[test]
    fn replicated_restrictions_are_fresh_per_copy() {
        let mut c = cfg("!(^m) c<m> | (c(x) | c(y))");
        c.fire(&Action::Unfold { path: p("0") }).unwrap();
        c.fire(&Action::Unfold { path: p("01") }).unwrap();
        let m1 = match c.tree().leaf_at(&p("00")).unwrap() {
            LeafState::Out { payload, .. } => payload.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let m2 = match c.tree().leaf_at(&p("010")).unwrap() {
            LeafState::Out { payload, .. } => payload.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(m1, m2, "each copy creates its own m");
        assert_eq!(
            m1.creator(c.names()),
            Some(&p("00")),
            "creator is the copy's position"
        );
        assert_eq!(m2.creator(c.names()), Some(&p("010")));
    }

    #[test]
    fn composite_payloads_are_stamped_with_the_sender() {
        let mut c = cfg("(^k)((^m) c<{m}k> | c(z).observe<z>)");
        let actions = c.enabled(0);
        let info = c.fire(&actions[0]).unwrap();
        match info {
            StepInfo::Comm(ci) => {
                // The ciphertext was built by the sender at ‖0.
                assert_eq!(ci.payload.creator(c.names()), Some(&p("0")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn forwarding_preserves_the_creator() {
        // A creates m, sends to F, F forwards to B.
        let mut c = cfg("(^m) c<m> | (c(x).d<x> | d(y).observe<y>)");
        c.fire(&Action::Comm {
            out_path: p("0"),
            in_path: p("10"),
        })
        .unwrap();
        let info = c
            .fire(&Action::Comm {
                out_path: p("10"),
                in_path: p("11"),
            })
            .unwrap();
        match info {
            StepInfo::Comm(ci) => {
                // Still A's name: the creator is ‖0, not the forwarder.
                assert_eq!(ci.payload.creator(c.names()), Some(&p("0")));
                // The located view at the final receiver ‖1‖1 is the
                // relative address of A w.r.t. B.
                let loc = ci.payload.location_at(&p("11"), c.names()).unwrap();
                assert_eq!(loc, spi_addr::RelAddr::between(&p("11"), &p("0")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_decrypts_after_communication() {
        let mut c = cfg("(^k)((^m) c<{m}k> | c(z).case z of {w}k in observe<w>)");
        let actions = c.enabled(0);
        c.fire(&actions[0]).unwrap();
        // The decryption evaluated during placement; w is bound to m.
        match c.tree().leaf_at(&p("1")).unwrap() {
            LeafState::Out { chan, payload, .. } => {
                assert_eq!(chan.subject.display(c.names()), "observe");
                assert_eq!(payload.creator(c.names()), Some(&p("0")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_key_decryption_sticks() {
        let mut c = cfg("(^k, h)((^m) c<{m}k> | c(z).case z of {w}h in observe<w>)");
        let actions = c.enabled(0);
        c.fire(&actions[0]).unwrap();
        assert!(c.tree().leaf_at(&p("1")).unwrap().is_dead());
        assert!(c.barbs().is_empty());
    }

    #[test]
    fn deliver_checks_localization() {
        let mut c = cfg("c@(1.0)(x).observe<x>");
        // Input at root... the literal cannot resolve at the root leaf
        // (observer component ‖1 is not a suffix of ε) — the index stays
        // unresolved and refuses everyone.
        let mut names = NameTable::new();
        let v = names.intern_free(&spi_syntax::Name::new("v"));
        let _ = names;
        let err = c.deliver(&Path::root(), RtTerm::Id(v), p("1")).unwrap_err();
        assert!(matches!(err, MachineError::NotEnabled { .. }));
    }

    #[test]
    fn deliver_rejects_non_messages() {
        let mut c = cfg("c(x).observe<x>");
        let bad = crate::RtTerm::Var(spi_syntax::Var::new("y"));
        let err = c.deliver(&Path::root(), bad, p("1")).unwrap_err();
        assert!(matches!(err, MachineError::NotAMessage { .. }));
    }

    #[test]
    fn take_output_rejects_non_output_leaves() {
        let mut c = cfg("c(x)");
        let err = c.take_output(&Path::root(), &p("1")).unwrap_err();
        assert!(matches!(err, MachineError::NotALeaf { .. }));
    }

    #[test]
    fn firing_with_mismatched_subjects_errors() {
        let mut c = cfg("c<m> | d(x)");
        let err = c
            .fire(&Action::Comm {
                out_path: p("0"),
                in_path: p("1"),
            })
            .unwrap_err();
        assert!(matches!(err, MachineError::NotEnabled { .. }));
    }

    #[test]
    fn split_executes_during_placement() {
        let mut c = cfg("c<(m, n)> | c(x).let (y, z) = x in observe<z>");
        let actions = c.enabled(0);
        c.fire(&actions[0]).unwrap();
        match c.tree().leaf_at(&p("1")).unwrap() {
            LeafState::Out { payload, .. } => {
                assert_eq!(payload.display(c.names()), "n");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn split_on_a_non_pair_sticks() {
        let mut c = cfg("c<m> | c(x).let (y, z) = x in observe<z>");
        let actions = c.enabled(0);
        c.fire(&actions[0]).unwrap();
        assert!(c.tree().leaf_at(&p("1")).unwrap().is_dead());
    }

    #[test]
    fn split_components_keep_their_creators() {
        let mut c = cfg("(^m, n) c<(m, n)> | c(x).let (y, z) = x in observe<y>");
        let actions = c.enabled(0);
        c.fire(&actions[0]).unwrap();
        match c.tree().leaf_at(&p("1")).unwrap() {
            LeafState::Out { payload, .. } => {
                // m was created at ‖0 by the sender's restriction.
                assert_eq!(payload.creator(c.names()), Some(&p("0")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    use crate::NameTable;
}
