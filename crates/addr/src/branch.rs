//! The arc tags `‖0` and `‖1` of the tree of sequential processes.

use std::fmt;

/// An arc tag in the binary tree of sequential processes.
///
/// The paper labels the arc to the left component of a parallel
/// composition with `‖0` and the arc to the right component with `‖1`
/// (Figure 1).  [`Branch::Left`] is `‖0`, [`Branch::Right`] is `‖1`.
///
/// # Example
///
/// ```
/// use spi_addr::Branch;
///
/// assert_eq!(Branch::Left.flip(), Branch::Right);
/// assert_eq!(Branch::Left.to_string(), "‖0");
/// assert_eq!(Branch::from_bit(1), Branch::Right);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Branch {
    /// The left component of a parallel composition: `‖0`.
    Left,
    /// The right component of a parallel composition: `‖1`.
    Right,
}

impl Branch {
    /// Returns the opposite tag: `‖0.flip() = ‖1` and vice versa.
    ///
    /// Definition 1 of the paper requires that the two components of a
    /// relative address, when both non-empty, start with *flipped* tags
    /// (`ϑ₀ = ‖i ϑ₀′ ⇒ ϑ₁ = ‖1−i ϑ₁′`); this is the `1−i` operation.
    #[must_use]
    pub fn flip(self) -> Branch {
        match self {
            Branch::Left => Branch::Right,
            Branch::Right => Branch::Left,
        }
    }

    /// Returns the numeric index of the tag: `0` for `‖0`, `1` for `‖1`.
    #[must_use]
    pub fn bit(self) -> u8 {
        match self {
            Branch::Left => 0,
            Branch::Right => 1,
        }
    }

    /// Builds a tag from a bit: even values give `‖0`, odd give `‖1`.
    #[must_use]
    pub fn from_bit(bit: u8) -> Branch {
        if bit.is_multiple_of(2) {
            Branch::Left
        } else {
            Branch::Right
        }
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Branch::Left => write!(f, "‖0"),
            Branch::Right => write!(f, "‖1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        assert_eq!(Branch::Left.flip().flip(), Branch::Left);
        assert_eq!(Branch::Right.flip().flip(), Branch::Right);
    }

    #[test]
    fn flip_swaps() {
        assert_eq!(Branch::Left.flip(), Branch::Right);
        assert_eq!(Branch::Right.flip(), Branch::Left);
    }

    #[test]
    fn bit_round_trip() {
        for b in [Branch::Left, Branch::Right] {
            assert_eq!(Branch::from_bit(b.bit()), b);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Branch::Left.to_string(), "‖0");
        assert_eq!(Branch::Right.to_string(), "‖1");
    }

    #[test]
    fn ordering_left_before_right() {
        assert!(Branch::Left < Branch::Right);
    }
}
