//! Experiment E2 — Example 1 of the paper (Section 2): the two-step
//! computation of `S = !P | Q` with
//!
//! ```text
//! P  = ā⟨{M}k⟩.0
//! Q  = a(x). case x of {y}k in Q′
//! Q′ = (νh)( b̄⟨{y}h⟩.0 | R )
//! ```

use spi_auth_repro::semantics::{Action, Config, LeafState, RtTerm};
use spi_auth_repro::syntax::parse;

fn p(s: &str) -> spi_auth_repro::addr::Path {
    s.parse().expect("valid path")
}

#[test]
fn the_papers_two_step_computation() {
    let s = parse("!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))").unwrap();
    let mut cfg = Config::from_process(&s).unwrap();

    // !P can be rewritten as P | !P: one unfolding.
    let actions = cfg.enabled(1);
    assert!(actions.contains(&Action::Unfold { path: p("0") }));
    cfg.fire(&Action::Unfold { path: p("0") }).unwrap();

    // "In the first transition, Q receives on channel a the message {M}k
    //  sent by P and {M}k replaces x in the residual of Q."
    cfg.fire(&Action::Comm {
        out_path: p("00"),
        in_path: p("1"),
    })
    .unwrap();

    // "In the second transition, {M}k can be successfully decrypted by
    //  the residual of Q, with the correct key k, and M replaces y in Q′.
    //  The effect is to encrypt M with the key h, private to Q′."
    //
    // Our machine evaluates the (deterministic) decryption during
    // placement, so the residual of Q is already Q′ split in two leaves:
    // b̄⟨{M}h⟩ and R.
    let out = cfg.tree().leaf_at(&p("10")).unwrap();
    match out {
        LeafState::Out { chan, payload, .. } => {
            assert_eq!(chan.subject.display(cfg.names()), "b");
            match payload {
                RtTerm::Enc { body, key, .. } => {
                    // The body is M (the free name m), the key is the
                    // fresh private h.
                    assert_eq!(body.len(), 1);
                    assert_eq!(body[0].display(cfg.names()), "m");
                    match key.as_ref() {
                        RtTerm::Id(h) => {
                            assert!(cfg.names().entry(*h).restricted, "h is private to Q′");
                            assert_eq!(cfg.names().entry(*h).base.as_str(), "h");
                        }
                        other => panic!("unexpected key {other:?}"),
                    }
                }
                other => panic!("unexpected payload {other:?}"),
            }
        }
        other => panic!("expected the output b̄⟨{{M}}h⟩, got {other:?}"),
    }
    // R waits untouched next to it.
    assert!(matches!(
        cfg.tree().leaf_at(&p("11")).unwrap(),
        LeafState::In { .. }
    ));
    // And the replication is still available for more copies.
    assert!(matches!(
        cfg.tree().leaf_at(&p("01")).unwrap(),
        LeafState::Bang { unfolded: 1, .. }
    ));
}

#[test]
fn the_source_of_infinitely_many_outputs() {
    // "!P represents a source of infinitely many outputs on a."
    let s = parse("!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))").unwrap();
    let mut cfg = Config::from_process(&s).unwrap();
    for _ in 0..4 {
        let unfold = cfg
            .enabled(u32::MAX)
            .into_iter()
            .find(|a| matches!(a, Action::Unfold { .. }))
            .expect("the replication never exhausts");
        cfg.fire(&unfold).unwrap();
    }
    // Four copies of the output are now live.
    let outs = cfg
        .tree()
        .leaves()
        .filter(|(_, l)| matches!(l, LeafState::Out { .. }))
        .count();
    assert_eq!(outs, 4);
}

#[test]
fn wrong_key_blocks_the_second_step() {
    // With a different key the decryption is stuck and Q dies silently.
    let s = parse("!a<{m}k> | a(x).case x of {y}kk in (^h)(b<{y}h> | r(w))").unwrap();
    let mut cfg = Config::from_process(&s).unwrap();
    cfg.fire(&Action::Unfold { path: p("0") }).unwrap();
    cfg.fire(&Action::Comm {
        out_path: p("00"),
        in_path: p("1"),
    })
    .unwrap();
    assert!(cfg.tree().leaf_at(&p("1")).unwrap().is_dead());
}
