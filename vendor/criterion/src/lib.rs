//! A minimal, dependency-free benchmarking shim exposing the subset of
//! the `criterion` 0.5 API this workspace uses.
//!
//! The container building this workspace has no network access, so the
//! real `criterion` crate cannot be fetched.  This shim keeps the same
//! bench-authoring surface (`Criterion`, groups, `BenchmarkId`,
//! `Throughput`, `b.iter`, `criterion_group!`/`criterion_main!`) and
//! reports wall-clock medians to stdout.  It performs no statistical
//! analysis and writes no reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated runs of `routine` and records the samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup run, which also sizes the batches: batch enough
        // iterations that a sample spans ~1ms, so cheap routines are
        // measurable above timer noise.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let batch = if once < Duration::from_millis(1) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

fn report(id: &str, bencher: &Bencher) {
    println!("{:<48} time: {:>12.3?}", id, bencher.median());
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group throughput (accepted, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Accept and ignore harness flags passed by `cargo bench`.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}
