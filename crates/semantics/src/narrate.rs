//! Rendering machine steps in the paper's protocol-narration notation.
//!
//! The paper displays attacks as message sequences such as
//!
//! ```text
//! Message 1   A → E(B) : {M}K_AB      E intercepts the message intended for B
//! Message 2   E(A) → B : {M}K_AB      E pretending to be A
//! ```
//!
//! [`Narrator`] reconstructs this view from [`StepInfo`]s: a [`RoleMap`]
//! names the protocol roles by their tree positions (replicated instances
//! inherit the role of their replication, with an instance suffix), and an
//! optional intruder position turns intercepts and injections into the
//! `E(·)` forms.

use std::collections::HashMap;

use spi_addr::Path;

use crate::{Config, StepInfo};

/// Maps tree positions to protocol role names.
///
/// A role registered at position `p` also covers every position below `p`
/// — the instances a replication at `p` spawns — which are rendered with
/// an instance suffix (`A#2`).
///
/// # Example
///
/// ```
/// use spi_addr::Path;
/// use spi_semantics::RoleMap;
///
/// let mut roles = RoleMap::new();
/// roles.role("A", "00".parse::<Path>()?);
/// roles.role("B", "01".parse::<Path>()?);
/// assert_eq!(roles.role_of(&"00".parse::<Path>()?), Some("A".to_owned()));
/// // An instance spawned below A's replication:
/// assert_eq!(roles.role_of(&"0010".parse::<Path>()?), Some("A#2".to_owned()));
/// # Ok::<(), spi_addr::AddrError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoleMap {
    roles: Vec<(Path, String)>,
}

impl RoleMap {
    /// An empty role map.
    #[must_use]
    pub fn new() -> RoleMap {
        RoleMap::default()
    }

    /// Registers `name` as the role at `position`.
    pub fn role(&mut self, name: impl Into<String>, position: Path) -> &mut RoleMap {
        self.roles.push((position, name.into()));
        self
    }

    /// The role covering `position`: an exact or ancestor match, with a
    /// replication-instance suffix when the position lies strictly below
    /// the registered one.
    ///
    /// Instances are numbered by their position along the replication's
    /// right spine: the copy at `p·‖0` is `#1`, at `p·‖1‖0` is `#2`, ….
    #[must_use]
    pub fn role_of(&self, position: &Path) -> Option<String> {
        let mut best: Option<(&Path, &str)> = None;
        for (p, name) in &self.roles {
            if p.is_prefix_of(position) {
                match best {
                    Some((bp, _)) if bp.len() >= p.len() => {}
                    _ => best = Some((p, name)),
                }
            }
        }
        let (p, name) = best?;
        if p == position {
            return Some(name.to_owned());
        }
        // Count the right-spine depth to number the instance.
        let rest = position.suffix_from(p.len());
        let spine = rest
            .iter()
            .take_while(|b| *b == spi_addr::Branch::Right)
            .count();
        Some(format!("{name}#{}", spine + 1))
    }
}

/// Renders steps as paper-style narration lines.
#[derive(Debug, Default)]
pub struct Narrator {
    roles: RoleMap,
    intruder: Option<Path>,
    /// `channel base → role name` hints for the `E(A)` impersonation
    /// rendering: who honestly sends on that channel.
    sender_hints: HashMap<String, String>,
    /// `channel base → role name` hints for the intended receiver.
    receiver_hints: HashMap<String, String>,
    message_counter: usize,
}

impl Narrator {
    /// A narrator with the given role map.
    #[must_use]
    pub fn new(roles: RoleMap) -> Narrator {
        Narrator {
            roles,
            ..Narrator::default()
        }
    }

    /// Declares the intruder's tree position, enabling the `E(·)` forms.
    pub fn intruder(&mut self, position: Path) -> &mut Narrator {
        self.intruder = Some(position);
        self
    }

    /// Hints that `role` is the honest sender on channel `chan`, so an
    /// injection by the intruder on `chan` renders as `E(role) → …`.
    pub fn impersonates_sender(
        &mut self,
        chan: impl Into<String>,
        role: impl Into<String>,
    ) -> &mut Narrator {
        self.sender_hints.insert(chan.into(), role.into());
        self
    }

    /// Hints that `role` is the intended receiver on channel `chan`, so
    /// an interception renders as `… → E(role)`.
    pub fn intended_receiver(
        &mut self,
        chan: impl Into<String>,
        role: impl Into<String>,
    ) -> &mut Narrator {
        self.receiver_hints.insert(chan.into(), role.into());
        self
    }

    fn party(&self, position: &Path, chan: &str, receiving: bool) -> String {
        if Some(position) == self.intruder.as_ref() {
            let hint = if receiving {
                self.receiver_hints.get(chan)
            } else {
                self.sender_hints.get(chan)
            };
            match hint {
                Some(role) => format!("E({role})"),
                None => "E".to_owned(),
            }
        } else {
            self.roles
                .role_of(position)
                .unwrap_or_else(|| position.to_bits())
        }
    }

    /// Renders one step.  Communications produce paper-style lines;
    /// unfoldings produce a session-creation note.
    pub fn narrate(&mut self, step: &StepInfo, cfg: &Config) -> String {
        match step {
            StepInfo::Comm(ci) => {
                self.message_counter += 1;
                let chan = ci.subject.display(cfg.names());
                let from = self.party(&ci.sender, &chan, false);
                let to = self.party(&ci.receiver, &chan, true);
                let payload = ci.payload.display(cfg.names());
                let origin = ci
                    .payload
                    .creator(cfg.names())
                    .and_then(|c| self.roles.role_of(c))
                    .map(|r| format!("   [origin {r}]"))
                    .unwrap_or_default();
                format!(
                    "Message {n}   {from} → {to} : {payload}   (on {chan}){origin}",
                    n = self.message_counter
                )
            }
            StepInfo::Unfold { path } => {
                let role = self.roles.role_of(path).unwrap_or_else(|| path.to_bits());
                format!("            {role} spawns a new session instance")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Config};
    use spi_syntax::parse;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn role_lookup_prefers_the_deepest_prefix() {
        let mut roles = RoleMap::new();
        roles.role("P", p("0"));
        roles.role("A", p("00"));
        assert_eq!(roles.role_of(&p("00")), Some("A".to_owned()));
        assert_eq!(roles.role_of(&p("01")), Some("P#2".to_owned()));
        assert_eq!(roles.role_of(&p("1")), None);
    }

    #[test]
    fn replication_instances_number_along_the_spine() {
        let mut roles = RoleMap::new();
        roles.role("A", p("0"));
        // First copy at ‖0‖0, second at ‖0‖1‖0, third at ‖0‖1‖1‖0.
        assert_eq!(roles.role_of(&p("00")), Some("A#1".to_owned()));
        assert_eq!(roles.role_of(&p("010")), Some("A#2".to_owned()));
        assert_eq!(roles.role_of(&p("0110")), Some("A#3".to_owned()));
    }

    #[test]
    fn narration_renders_paper_style_lines() {
        let proc = parse("(^m) c<m> | c(x).observe<x>").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut roles = RoleMap::new();
        roles.role("A", p("0"));
        roles.role("B", p("1"));
        let mut narrator = Narrator::new(roles);
        let step = cfg
            .fire(&Action::Comm {
                out_path: p("0"),
                in_path: p("1"),
            })
            .unwrap();
        let line = narrator.narrate(&step, &cfg);
        assert!(line.starts_with("Message 1"));
        assert!(line.contains("A → B"));
        assert!(line.contains("[origin A]"));
    }

    #[test]
    fn intruder_rendering_uses_hints() {
        let proc = parse("c(x).observe<x> | c<m>").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut roles = RoleMap::new();
        roles.role("B", p("0"));
        let mut narrator = Narrator::new(roles);
        narrator.intruder(p("1"));
        narrator.impersonates_sender("c", "A");
        let step = cfg
            .fire(&Action::Comm {
                out_path: p("1"),
                in_path: p("0"),
            })
            .unwrap();
        let line = narrator.narrate(&step, &cfg);
        assert!(line.contains("E(A) → B"), "{line}");
    }

    #[test]
    fn interception_uses_the_receiver_hint() {
        // A sends; the intruder at ‖1 intercepts: rendered as A → E(B).
        let proc = parse("(^m) c<m> | c(x)").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut roles = RoleMap::new();
        roles.role("A", p("0"));
        let mut narrator = Narrator::new(roles);
        narrator.intruder(p("1"));
        narrator.intended_receiver("c", "B");
        let step = cfg
            .fire(&Action::Comm {
                out_path: p("0"),
                in_path: p("1"),
            })
            .unwrap();
        let line = narrator.narrate(&step, &cfg);
        assert!(line.contains("A → E(B)"), "{line}");
    }

    #[test]
    fn unknown_positions_fall_back_to_bits() {
        let proc = parse("c<m> | c(x)").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut narrator = Narrator::new(RoleMap::new());
        let step = cfg
            .fire(&Action::Comm {
                out_path: p("0"),
                in_path: p("1"),
            })
            .unwrap();
        let line = narrator.narrate(&step, &cfg);
        assert!(line.contains("0 → 1"), "{line}");
    }

    #[test]
    fn message_numbers_increment() {
        let proc = parse("c<m>.c<n> | c(x).c(y)").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut narrator = Narrator::new(RoleMap::new());
        for expected in ["Message 1", "Message 2"] {
            let step = cfg
                .fire(&Action::Comm {
                    out_path: p("0"),
                    in_path: p("1"),
                })
                .unwrap();
            let line = narrator.narrate(&step, &cfg);
            assert!(line.starts_with(expected), "{line}");
        }
    }

    #[test]
    fn unfold_notes_session_creation() {
        let proc = parse("!c<m>").unwrap();
        let mut cfg = Config::from_process(&proc).unwrap();
        let mut roles = RoleMap::new();
        roles.role("A", Path::root());
        let mut narrator = Narrator::new(roles);
        let step = cfg.fire(&Action::Unfold { path: Path::root() }).unwrap();
        let line = narrator.narrate(&step, &cfg);
        assert!(line.contains("new session instance"));
    }
}
