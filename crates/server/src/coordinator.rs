//! The fleet coordinator: sharded routing with failure handling.
//!
//! A coordinator speaks the *same* newline-delimited JSON protocol as
//! a single `spi serve` worker — clients need not know which they are
//! talking to.  Behind the socket it routes each job by content
//! digest to a worker on a consistent-hash [`Ring`], so each worker's
//! result cache holds a distinct shard of the question space:
//!
//! ```text
//! client ──▶ coordinator ──digest──▶ ring ──▶ worker A (cache shard A)
//!                 │                    ├────▶ worker B (cache shard B)
//!                 │ campaign           └────▶ worker C (cache shard C)
//!                 ▼
//!          split into work units ──▶ dispatcher per worker (work-stealing
//!          queue; a dead worker's units re-dispatch — content-addressed,
//!          so a retry is idempotent) ──▶ stitch unit reports back together
//! ```
//!
//! Failure handling, in order of escalation:
//! * a **rejected** answer (queue full, draining) tries the next ring
//!   candidate — exactly the node the key would move to if the first
//!   died;
//! * a **dial or read failure** marks the worker dead immediately and
//!   moves on; heartbeat sweeps catch silent deaths between requests;
//! * a **slow** worker gets a hedged second request to the next
//!   candidate once the wait passes the observed p99 dispatch latency
//!   (never below the configured floor), first answer wins;
//! * **quorum loss** degrades gracefully: the coordinator runs the job
//!   on its own local engine, marking the envelope `"via":"local"`.
//!
//! With `--chaos <seed>` the coordinator injects a deterministic
//! [`ChaosPlan`] against itself (worker kills, heartbeat deafness,
//! partitioned dials) — same seed, same failures, same points in the
//! request sequence.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spi_semantics::FaultKind;
use spi_verify::faultsim::multi_fault_schedules;
use spi_verify::jsonlite::Json;

use crate::chaos::{ChaosEvent, ChaosPlan};
use crate::client::Client;
use crate::flight::Singleflight;
use crate::protocol::{
    error_response, ok_response, parse_request, JobRequest, Mode, Request,
};
use crate::service::{read_line_capped, Engine, Histogram, RunControl};
use crate::shard::Ring;
use crate::Membership;

/// Coordinator configuration (the `spi fleet` flags).
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Minimum alive workers for fleet routing; below it, jobs run on
    /// the coordinator's local engine.
    pub quorum: usize,
    /// Failure-detection sweep interval.
    pub heartbeat_ms: u64,
    /// A worker whose last heartbeat is older than this is dead.
    pub fail_after_ms: u64,
    /// Schedules per campaign work unit.
    pub unit_size: usize,
    /// Hedged-request floor: a second request goes to the next ring
    /// candidate after `max(this, observed p99 dispatch latency)`.
    pub hedge_after_ms: u64,
    /// Worker dial timeout.
    pub connect_timeout_ms: u64,
    /// Worker response timeout.
    pub read_timeout_ms: u64,
    /// Full retry rounds (with exponential backoff) across the ring
    /// before degrading to local execution.
    pub retry_rounds: usize,
    /// Chaos seed; `None` runs without injected fleet faults.
    pub chaos: Option<u64>,
    /// Request horizon a chaos plan is expanded over.
    pub chaos_horizon: usize,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            addr: "127.0.0.1:7971".into(),
            quorum: 1,
            heartbeat_ms: 200,
            fail_after_ms: 1500,
            unit_size: 4,
            hedge_after_ms: 500,
            connect_timeout_ms: 1000,
            read_timeout_ms: 120_000,
            retry_rounds: 3,
            chaos: None,
            chaos_horizon: 64,
        }
    }
}

#[derive(Debug, Default)]
struct ChaosState {
    /// Heartbeats are ignored while the request counter is below this.
    deaf_until: u64,
    /// `(worker, until request index)` active one-way partitions.
    partitions: Vec<(String, u64)>,
}

struct Coord {
    engine: Arc<dyn Engine>,
    opts: CoordinatorOptions,
    addr: SocketAddr,
    members: Membership,
    draining: AtomicBool,
    cancel: Arc<AtomicBool>,
    requests: AtomicU64,
    routed: AtomicU64,
    local_runs: AtomicU64,
    retried: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    /// Hedges *not* fired because the primary proved alive through a
    /// progress heartbeat while the hedge timer ran.
    hedges_deferred: AtomicU64,
    redispatched: AtomicU64,
    /// Cache entries pushed to new ring owners when workers announced
    /// a drain (`leave`).
    handoff_entries: AtomicU64,
    dispatch_latency: Histogram,
    /// At most one in-flight dispatch per digest: the coordinator holds
    /// no result cache, so without this two cold clients racing on the
    /// same spec both dial the fleet (or both run locally) and the
    /// exploration executes twice.
    flight: Singleflight,
    /// Recent leader replies, newest last, consulted by flight
    /// followers after their wait.  Bounded — this is a rendezvous
    /// buffer for concurrent duplicates, not a cache (the workers own
    /// the caches).
    replies: Mutex<VecDeque<(String, String)>>,
    flight_collapsed: AtomicU64,
    chaos: Option<ChaosPlan>,
    chaos_state: Mutex<ChaosState>,
}

/// How many leader replies the follower rendezvous buffer retains.
const REPLY_MEMO_CAP: usize = 64;

/// A running coordinator.  Like [`crate::ServerHandle`], dropping it
/// does not stop the node; call [`CoordinatorHandle::join`].
pub struct CoordinatorHandle {
    coord: Arc<Coord>,
    acceptor: JoinHandle<()>,
    sweeper: JoinHandle<()>,
}

impl CoordinatorHandle {
    /// The bound listen address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.coord.addr
    }

    /// Alive worker addresses, sorted.
    #[must_use]
    pub fn workers(&self) -> Vec<String> {
        self.coord.members.alive()
    }

    /// Begins a graceful drain.  Idempotent; returns immediately.
    pub fn shutdown(&self) {
        trigger_drain(&self.coord);
    }

    /// Whether a drain has been triggered.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.coord.draining.load(Ordering::SeqCst)
    }

    /// A cheap handle another thread can use to trigger the drain.
    #[must_use]
    pub fn shutdown_handle(&self) -> CoordinatorShutdown {
        CoordinatorShutdown {
            coord: Arc::clone(&self.coord),
        }
    }

    /// Blocks until something triggers the drain, then joins.
    pub fn join_on_drain(self) {
        while !self.draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Drains and waits for the acceptor and sweeper to finish.
    pub fn join(self) {
        self.shutdown();
        let _ = self.acceptor.join();
        let _ = self.sweeper.join();
    }
}

/// Triggers a coordinator's drain from any thread.
pub struct CoordinatorShutdown {
    coord: Arc<Coord>,
}

impl CoordinatorShutdown {
    /// Begins the graceful drain.  Idempotent.
    pub fn shutdown(&self) {
        trigger_drain(&self.coord);
    }
}

fn trigger_drain(coord: &Arc<Coord>) {
    if coord.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    coord.cancel.store(true, Ordering::Relaxed);
    let _ = TcpStream::connect(coord.addr);
}

/// Starts a coordinator.  Workers announce themselves afterwards with
/// `{"op":"join","addr":…}` heartbeats.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn coordinate(
    engine: Arc<dyn Engine>,
    opts: CoordinatorOptions,
) -> Result<CoordinatorHandle, String> {
    let listener = TcpListener::bind(&opts.addr)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    let chaos = opts.chaos.map(|seed| ChaosPlan::generate(seed, opts.chaos_horizon));
    if let Some(plan) = &chaos {
        eprintln!(
            "spi-fleet: chaos plan {}",
            plan.to_json().render_compact()
        );
    }
    let coord = Arc::new(Coord {
        engine,
        addr,
        members: Membership::new(),
        draining: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        requests: AtomicU64::new(0),
        routed: AtomicU64::new(0),
        local_runs: AtomicU64::new(0),
        retried: AtomicU64::new(0),
        hedges: AtomicU64::new(0),
        hedge_wins: AtomicU64::new(0),
        hedges_deferred: AtomicU64::new(0),
        redispatched: AtomicU64::new(0),
        handoff_entries: AtomicU64::new(0),
        dispatch_latency: Histogram::default(),
        flight: Singleflight::new(),
        replies: Mutex::new(VecDeque::new()),
        flight_collapsed: AtomicU64::new(0),
        chaos,
        chaos_state: Mutex::new(ChaosState::default()),
        opts,
    });

    let sweeper = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || {
            while !coord.draining.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(coord.opts.heartbeat_ms));
                let _ = coord
                    .members
                    .sweep(Duration::from_millis(coord.opts.fail_after_ms));
            }
        })
    };

    let acceptor = {
        let coord = Arc::clone(&coord);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if coord.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let coord = Arc::clone(&coord);
                std::thread::spawn(move || handle_connection(&coord, stream));
            }
        })
    };

    Ok(CoordinatorHandle {
        coord,
        acceptor,
        sweeper,
    })
}

fn handle_connection(coord: &Arc<Coord>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let response = match read_line_capped(&mut reader) {
            Err(_) | Ok(None) => break,
            Ok(Some(Err(reason))) => error_response("request", &reason).render_compact(),
            Ok(Some(Ok(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(coord, &line)
            }
        };
        if writeln!(writer, "{response}").is_err() {
            break;
        }
    }
}

fn handle_line(coord: &Arc<Coord>, line: &str) -> String {
    match parse_request(line) {
        Err(e) => error_response("request", &e).render_compact(),
        Ok(Request::Ping) => ok_response("ping", None, false, Json::Obj(vec![])).render_compact(),
        Ok(Request::Stats) => stats_response(coord).render_compact(),
        Ok(Request::Shutdown) => {
            trigger_drain(coord);
            ok_response("shutdown", None, false, Json::Obj(vec![])).render_compact()
        }
        Ok(Request::Gossip) => error_response(
            "gossip",
            "the coordinator holds no result cache; gossip with a worker",
        )
        .render_compact(),
        Ok(Request::GossipPush { .. }) => error_response(
            "gossip-push",
            "the coordinator holds no result cache; push to a worker",
        )
        .render_compact(),
        Ok(Request::Join { addr }) => handle_join(coord, &addr).render_compact(),
        Ok(Request::Leave { addr, cache }) => handle_leave(coord, &addr, cache.as_ref()).render_compact(),
        Ok(Request::Job(job)) => handle_job(coord, &job),
    }
}

/// A worker announcing its drain, optionally handing over its cache
/// shard.  The coordinator removes it from the ring *now* (no waiting
/// for the failure detector) and pushes each handed-over entry to the
/// worker that now owns its digest — so a drain-then-kill loses no
/// warm cache entry and the first post-drain request is still a hit.
fn handle_leave(coord: &Arc<Coord>, addr: &str, cache: Option<&Json>) -> Json {
    coord.members.mark_dead(addr);
    let mut handed_off = 0usize;
    let mut targets = 0usize;
    if let Some(body) = cache {
        match crate::gossip::parse_gossip(body) {
            Err(e) => return error_response("leave", &format!("refusing the handoff: {e}")),
            Ok(entries) if entries.is_empty() => {}
            Ok(entries) => {
                let idx = coord.requests.load(Ordering::SeqCst);
                let survivors: Vec<String> = reachable_workers(coord, idx)
                    .into_iter()
                    .filter(|a| a != addr)
                    .collect();
                if !survivors.is_empty() {
                    // Route each entry to the worker its digest now
                    // lands on, grouping so each new owner gets one
                    // digest-guarded push.
                    let ring = Ring::new(survivors);
                    let mut per_owner: Vec<(String, crate::snapshot::Entries)> = Vec::new();
                    for entry in entries {
                        let Some(owner) = ring.candidates(&entry.0).next() else {
                            continue;
                        };
                        match per_owner.iter_mut().find(|(a, _)| a == owner) {
                            Some((_, batch)) => batch.push(entry),
                            None => per_owner.push((owner.to_string(), vec![entry])),
                        }
                    }
                    let connect = Duration::from_millis(coord.opts.connect_timeout_ms);
                    let read = Duration::from_millis(coord.opts.read_timeout_ms);
                    for (owner, batch) in per_owner {
                        match crate::gossip::push_to(&owner, &batch, connect, read) {
                            Ok(_) => {
                                handed_off += batch.len();
                                targets += 1;
                            }
                            Err(_) => coord.members.mark_dead(&owner),
                        }
                    }
                    coord
                        .handoff_entries
                        .fetch_add(u64::try_from(handed_off).unwrap_or(0), Ordering::SeqCst);
                }
            }
        }
    }
    ok_response(
        "leave",
        None,
        false,
        Json::Obj(vec![
            ("handed_off".to_string(), Json::count(handed_off)),
            ("targets".to_string(), Json::count(targets)),
        ]),
    )
}

fn handle_join(coord: &Arc<Coord>, addr: &str) -> Json {
    let idx = coord.requests.load(Ordering::SeqCst);
    let deaf = coord
        .chaos_state
        .lock()
        .expect("chaos lock")
        .deaf_until
        > idx;
    if deaf {
        // A dropped heartbeat answers ok (the worker cannot tell) but
        // leaves the membership table untouched, so failure detection
        // fires on perfectly healthy workers — the point of the drill.
        return ok_response(
            "join",
            None,
            false,
            Json::Obj(vec![("ignored".to_string(), Json::Bool(true))]),
        );
    }
    let rejoined = coord.members.heartbeat(addr);
    let peers: Vec<String> = coord
        .members
        .alive()
        .into_iter()
        .filter(|a| a != addr)
        .collect();
    ok_response(
        "join",
        None,
        false,
        Json::Obj(vec![
            ("rejoined".to_string(), Json::Bool(rejoined)),
            ("peers".to_string(), Json::str_arr(peers)),
        ]),
    )
}

fn stats_response(coord: &Arc<Coord>) -> Json {
    let (alive, dead) = coord.members.counts();
    let load = |c: &AtomicU64| Json::count(usize::try_from(c.load(Ordering::SeqCst)).unwrap_or(0));
    let mut fields = vec![
        ("role".to_string(), Json::str("coordinator")),
        ("workers_alive".to_string(), Json::count(alive)),
        ("workers_dead".to_string(), Json::count(dead)),
        ("requests".to_string(), load(&coord.requests)),
        ("routed".to_string(), load(&coord.routed)),
        ("local_runs".to_string(), load(&coord.local_runs)),
        ("retried".to_string(), load(&coord.retried)),
        ("hedges".to_string(), load(&coord.hedges)),
        ("hedge_wins".to_string(), load(&coord.hedge_wins)),
        ("hedges_deferred".to_string(), load(&coord.hedges_deferred)),
        ("redispatched".to_string(), load(&coord.redispatched)),
        ("handoff_entries".to_string(), load(&coord.handoff_entries)),
        ("flight_collapsed".to_string(), load(&coord.flight_collapsed)),
        ("dispatch_latency".to_string(), coord.dispatch_latency.to_json()),
        (
            "draining".to_string(),
            Json::Bool(coord.draining.load(Ordering::SeqCst)),
        ),
    ];
    if let Some(plan) = &coord.chaos {
        fields.push(("chaos".to_string(), plan.to_json()));
    }
    ok_response("stats", None, false, Json::Obj(fields))
}

/// Applies every chaos event scheduled at this request index.
fn apply_chaos(coord: &Arc<Coord>, idx: u64) {
    let Some(plan) = &coord.chaos else { return };
    let events: Vec<ChaosEvent> = plan
        .at(usize::try_from(idx).unwrap_or(usize::MAX))
        .cloned()
        .collect();
    for event in events {
        match event {
            ChaosEvent::KillWorker { victim } => {
                let alive = coord.members.alive();
                if alive.is_empty() {
                    continue;
                }
                let target = &alive[victim % alive.len()];
                eprintln!("spi-fleet: chaos kills {target} at request {idx}");
                // A real kill: the worker drains and exits; its
                // in-flight work answers `rejected` and re-dispatches.
                if let Ok(mut c) = Client::connect_with(
                    target,
                    Some(Duration::from_millis(coord.opts.connect_timeout_ms)),
                ) {
                    let _ = c.roundtrip(r#"{"op":"shutdown"}"#);
                }
                coord.members.mark_dead(target);
            }
            ChaosEvent::DropHeartbeats { requests } => {
                let mut state = coord.chaos_state.lock().expect("chaos lock");
                state.deaf_until = idx + u64::try_from(requests).unwrap_or(0);
            }
            ChaosEvent::Partition { victim, requests } => {
                let alive = coord.members.alive();
                if alive.is_empty() {
                    continue;
                }
                let target = alive[victim % alive.len()].clone();
                let mut state = coord.chaos_state.lock().expect("chaos lock");
                state
                    .partitions
                    .push((target, idx + u64::try_from(requests).unwrap_or(0)));
            }
        }
    }
}

/// Alive workers reachable at this request index (partitions excluded).
fn reachable_workers(coord: &Arc<Coord>, idx: u64) -> Vec<String> {
    let partitioned: Vec<String> = {
        let state = coord.chaos_state.lock().expect("chaos lock");
        state
            .partitions
            .iter()
            .filter(|(_, until)| *until > idx)
            .map(|(a, _)| a.clone())
            .collect()
    };
    coord
        .members
        .alive()
        .into_iter()
        .filter(|a| !partitioned.contains(a))
        .collect()
}

fn status_of(reply: &str) -> Option<String> {
    Json::parse(reply)
        .ok()?
        .get("status")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

fn handle_job(coord: &Arc<Coord>, job: &JobRequest) -> String {
    let idx = coord.requests.fetch_add(1, Ordering::SeqCst);
    apply_chaos(coord, idx);
    let op = job.mode.keyword();
    let digest = match job.digest() {
        Ok(d) => d,
        Err(e) => return error_response(op, &e).render_compact(),
    };
    if job.no_cache {
        // A cache-bypassing request asked for a fresh run; collapsing
        // it onto a concurrent duplicate would hand it stale bytes.
        return dispatch_job(coord, idx, job, &digest);
    }
    loop {
        if coord.flight.begin(&digest) {
            let reply = dispatch_job(coord, idx, job, &digest);
            if status_of(&reply).as_deref() == Some("ok") {
                remember_reply(coord, &digest, &reply);
            }
            coord.flight.finish(&digest);
            return reply;
        }
        // A concurrent duplicate: park behind the leader, then answer
        // from its reply.  A miss means the leader failed without an
        // ok — loop around and become the next leader.
        coord.flight_collapsed.fetch_add(1, Ordering::SeqCst);
        coord.flight.wait(&digest);
        if let Some(reply) = recall_reply(coord, &digest) {
            return reply;
        }
    }
}

/// The dispatch body shared by flight leaders and `no_cache` bypasses:
/// campaign fan-out when worthwhile, otherwise ring routing with local
/// degradation.
fn dispatch_job(coord: &Arc<Coord>, idx: u64, job: &JobRequest, digest: &str) -> String {
    if job.mode == Mode::Campaign && job.unit.is_none() {
        if let Some(response) = campaign_fanout(coord, idx, job, digest) {
            return response;
        }
    }
    match try_route(coord, idx, job, digest) {
        Ok(reply) => {
            coord.routed.fetch_add(1, Ordering::SeqCst);
            reply
        }
        Err(_) => run_local(coord, job, digest),
    }
}

fn remember_reply(coord: &Arc<Coord>, digest: &str, reply: &str) {
    let mut memo = coord.replies.lock().expect("reply memo");
    memo.retain(|(d, _)| d != digest);
    if memo.len() >= REPLY_MEMO_CAP {
        memo.pop_front();
    }
    memo.push_back((digest.to_string(), reply.to_string()));
}

fn recall_reply(coord: &Arc<Coord>, digest: &str) -> Option<String> {
    let memo = coord.replies.lock().expect("reply memo");
    memo.iter()
        .rev()
        .find(|(d, _)| d == digest)
        .map(|(_, reply)| reply.clone())
}

/// Routes one job through the ring with retries, backoff, and hedging.
///
/// Returns the worker's reply verbatim (its body bytes untouched) or
/// an error when no worker could be made to answer — the caller then
/// degrades to local execution.
fn try_route(coord: &Arc<Coord>, idx: u64, job: &JobRequest, digest: &str) -> Result<String, String> {
    // Ask the worker for progress heartbeats while it runs, so a busy
    // worker is distinguishable from a dead one: heartbeats defer the
    // hedge (and keep the read timeout alive).  `progress_ms` is
    // execution-only — it never enters the digest, so the worker's
    // cache bytes are untouched.  Heartbeats are consumed here, not
    // relayed: the coordinator's own clients see one final line.
    let mut dispatch = job.clone();
    if dispatch.progress_ms.is_none() {
        dispatch.progress_ms = Some((coord.opts.hedge_after_ms / 2).clamp(50, 1000));
    }
    let line = dispatch.wire_json().render_compact();
    let mut backoff = Duration::from_millis(10);
    for round in 0..=coord.opts.retry_rounds {
        let alive = reachable_workers(coord, idx);
        if alive.len() < coord.opts.quorum.max(1) {
            return Err("below quorum".into());
        }
        let ring = Ring::new(alive);
        let candidates: Vec<String> = ring.candidates(digest).map(str::to_owned).collect();
        for (pos, candidate) in candidates.iter().enumerate() {
            if round > 0 || pos > 0 {
                coord.retried.fetch_add(1, Ordering::SeqCst);
            }
            let backup = candidates.get(pos + 1).map(String::as_str);
            match dispatch_hedged(coord, candidate, backup, &line) {
                Ok(reply) => match status_of(&reply).as_deref() {
                    // ok and error both relay verbatim: an error here is
                    // a deterministic request fault every node answers
                    // identically.
                    Some("ok") | Some("error") => return Ok(reply),
                    // rejected (queue full, draining): next candidate.
                    _ => {}
                },
                Err(_) => {
                    coord.members.mark_dead(candidate);
                }
            }
        }
        if round < coord.opts.retry_rounds {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
    }
    Err("every candidate failed or rejected".into())
}

/// What a dispatch leg reports back: liveness, then the answer.
enum DispatchMsg {
    /// The worker streamed a progress heartbeat — it is alive and
    /// working, whatever the wall clock says.
    Progress(String),
    /// The leg finished (reply or transport failure).
    Final(String, Result<String, String>),
}

fn spawn_dispatch(coord: &Arc<Coord>, addr: String, line: String, tx: mpsc::Sender<DispatchMsg>) {
    let connect = Duration::from_millis(coord.opts.connect_timeout_ms);
    let read = Duration::from_millis(coord.opts.read_timeout_ms);
    std::thread::spawn(move || {
        let progress_tx = tx.clone();
        let progress_addr = addr.clone();
        let result = Client::connect_with(&addr, Some(connect)).and_then(|mut c| {
            c.read_timeout(Some(read))?;
            c.roundtrip_streaming(&line, move |_| {
                let _ = progress_tx.send(DispatchMsg::Progress(progress_addr.clone()));
            })
        });
        // The receiver may be gone (the other leg already answered).
        let _ = tx.send(DispatchMsg::Final(addr, result));
    });
}

/// One dispatch with a hedged backup: if the primary has not answered
/// *or heartbeated* by `max(hedge floor, observed p99)`, a second
/// identical request goes to `backup` and the first answer wins.
/// Duplicated work is harmless — requests are content-addressed, so
/// the slower leg lands on a cache entry or collapses in the worker's
/// singleflight.  A primary that streams progress heartbeats resets
/// the hedge timer each time: a long campaign on a healthy worker is
/// *slow*, not *stuck*, and double-firing it would waste half the
/// fleet's capacity on duplicates.
fn dispatch_hedged(
    coord: &Arc<Coord>,
    primary: &str,
    backup: Option<&str>,
    line: &str,
) -> Result<String, String> {
    let started = Instant::now();
    let observed_p99_ms = coord.dispatch_latency.percentile_us(99) / 1000;
    let hedge_after = Duration::from_millis(coord.opts.hedge_after_ms.max(observed_p99_ms));
    let read_limit = Duration::from_millis(coord.opts.read_timeout_ms);
    let (tx, rx) = mpsc::channel();
    spawn_dispatch(coord, primary.to_string(), line.to_string(), tx.clone());
    let mut outstanding = 1usize;
    let mut hedged = false;
    let mut wait = hedge_after;
    loop {
        match rx.recv_timeout(wait) {
            Ok(DispatchMsg::Progress(addr)) => {
                coord.members.heartbeat(&addr);
                if !hedged && addr == primary {
                    // Alive and working: push the hedge out by a full
                    // window rather than double-firing on it.
                    coord.hedges_deferred.fetch_add(1, Ordering::SeqCst);
                    wait = hedge_after;
                }
                // A heartbeat from a hedged leg just restarts the
                // (long) read wait, which recv_timeout does anyway.
            }
            Ok(DispatchMsg::Final(addr, Ok(reply))) => {
                let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                coord.dispatch_latency.record_us(us);
                if hedged && addr != primary {
                    coord.hedge_wins.fetch_add(1, Ordering::SeqCst);
                }
                return Ok(reply);
            }
            Ok(DispatchMsg::Final(addr, Err(e))) => {
                coord.members.mark_dead(&addr);
                outstanding -= 1;
                if outstanding == 0 {
                    return Err(e);
                }
                wait = read_limit;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !hedged {
                    hedged = true;
                    if let Some(b) = backup {
                        coord.hedges.fetch_add(1, Ordering::SeqCst);
                        outstanding += 1;
                        spawn_dispatch(coord, b.to_string(), line.to_string(), tx.clone());
                    }
                    wait = read_limit;
                } else {
                    return Err("dispatch timed out".into());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err("dispatch threads died".into());
            }
        }
    }
}

/// Runs the job on the coordinator's own engine (quorum lost or every
/// route exhausted) and marks the envelope `"via":"local"`.
fn run_local(coord: &Arc<Coord>, job: &JobRequest, digest: &str) -> String {
    coord.local_runs.fetch_add(1, Ordering::SeqCst);
    let op = job.mode.keyword();
    let ctl = RunControl {
        deadline: job
            .timeout_secs
            .map(|s| Instant::now() + Duration::from_secs(s)),
        cancel: Arc::clone(&coord.cancel),
        progress: None,
    };
    match coord.engine.run(job, &ctl).body {
        Ok(body) => {
            let mut envelope = ok_response(op, Some(digest), false, body);
            if let Json::Obj(fields) = &mut envelope {
                fields.push(("via".to_string(), Json::str("local")));
            }
            envelope.render_compact()
        }
        Err(e) => error_response(op, &e).render_compact(),
    }
}

/// Per-unit outcomes, indexed by unit position in the enumeration.
type UnitSlots = Vec<Option<Result<Json, String>>>;

/// A campaign split into per-schedule work units, work-stolen across
/// the fleet, stitched back into the byte-identical single-process
/// report.  Returns `None` when splitting is not worthwhile (few
/// schedules or no routable fleet) — the caller routes it whole.
fn campaign_fanout(coord: &Arc<Coord>, idx: u64, job: &JobRequest, digest: &str) -> Option<String> {
    let total = multi_fault_schedules(
        job.channels.iter().cloned(),
        &FaultKind::ALL,
        job.faults_depth,
    )
    .len();
    let unit = coord.opts.unit_size.max(1);
    if total <= unit {
        return None;
    }
    let workers = reachable_workers(coord, idx);
    if workers.len() < coord.opts.quorum.max(1) || workers.is_empty() {
        return None;
    }
    let unit_count = total.div_ceil(unit);
    let pending: Arc<Mutex<VecDeque<usize>>> =
        Arc::new(Mutex::new((0..unit_count).collect()));
    let slots: Arc<Mutex<UnitSlots>> = Arc::new(Mutex::new(vec![None; unit_count]));
    // One dispatcher per worker pulling from the shared unit queue:
    // work-stealing by construction — a fast worker's dispatcher simply
    // comes back for more, and a dead worker's dispatcher re-routes.
    let dispatchers: Vec<JoinHandle<()>> = workers
        .iter()
        .map(|_| {
            let coord = Arc::clone(coord);
            let pending = Arc::clone(&pending);
            let slots = Arc::clone(&slots);
            let job = job.clone();
            std::thread::spawn(move || loop {
                let next = pending.lock().expect("unit queue").pop_front();
                let Some(unit_index) = next else { break };
                let result = run_unit(&coord, idx, &job, unit_index, unit);
                slots.lock().expect("unit slots")[unit_index] = Some(result);
            })
        })
        .collect();
    for d in dispatchers {
        let _ = d.join();
    }
    let slots = Arc::try_unwrap(slots)
        .expect("dispatchers joined")
        .into_inner()
        .expect("unit slots");
    merge_units(job, digest, total, slots)
        .or_else(|| Some(run_local(coord, job, digest)))
}

/// Decides one work unit: routed through the ring when possible, run
/// on the local engine otherwise.  Either way the body comes from the
/// same `campaign_body` encoder, so merged bytes cannot differ.
fn run_unit(
    coord: &Arc<Coord>,
    idx: u64,
    job: &JobRequest,
    unit_index: usize,
    unit: usize,
) -> Result<Json, String> {
    let sub = job.with_unit(unit_index * unit, unit);
    let sub_digest = sub.digest()?;
    match try_route(coord, idx, &sub, &sub_digest) {
        Ok(reply) => {
            coord.routed.fetch_add(1, Ordering::SeqCst);
            let envelope =
                Json::parse(&reply).map_err(|e| format!("malformed worker reply: {e}"))?;
            match envelope.get("status").and_then(Json::as_str) {
                Some("ok") => envelope
                    .get("body")
                    .cloned()
                    .ok_or_else(|| "worker reply lacks a body".to_string()),
                _ => Err(format!("unit {unit_index} failed: {reply}")),
            }
        }
        Err(_) => {
            // The fleet cannot take this unit (quorum lost mid-campaign
            // or every candidate dead): decide it locally.
            coord.redispatched.fetch_add(1, Ordering::SeqCst);
            coord.local_runs.fetch_add(1, Ordering::SeqCst);
            let ctl = RunControl {
                deadline: sub
                    .timeout_secs
                    .map(|s| Instant::now() + Duration::from_secs(s)),
                cancel: Arc::clone(&coord.cancel),
                progress: None,
            };
            coord.engine.run(&sub, &ctl).body
        }
    }
}

/// Stitches unit bodies back into the single-process campaign body:
/// identical `identity`/`enumerated` across units, results
/// concatenated in unit order, tallies recomputed.  Any inconsistent
/// or failed unit aborts the merge (the caller falls back to a local
/// full run rather than serving a frankenreport).
fn merge_units(job: &JobRequest, digest: &str, total: usize, slots: UnitSlots) -> Option<String> {
    let mut identity: Option<String> = None;
    let mut results: Vec<Json> = Vec::with_capacity(total);
    let (mut attacks, mut survives, mut inconclusive) = (0usize, 0usize, 0usize);
    let mut early_rejects: i64 = 0;
    for slot in slots {
        let body = match slot {
            Some(Ok(body)) => body,
            _ => return None,
        };
        if body.get("enumerated").and_then(Json::as_int)
            != Some(i64::try_from(total).ok()?)
        {
            return None;
        }
        let unit_identity = body.get("identity").and_then(Json::as_str)?.to_string();
        match &identity {
            None => identity = Some(unit_identity),
            Some(seen) if *seen == unit_identity => {}
            Some(_) => return None,
        }
        if body.get("interrupted").and_then(Json::as_bool) != Some(false) {
            return None;
        }
        // Present only when the unit's bisim fast path fired (see
        // `protocol::campaign_body`); the merged counter is the sum.
        early_rejects += body.get("early_rejects").and_then(Json::as_int).unwrap_or(0);
        for r in body.get("results").and_then(Json::as_arr)? {
            match r.get("outcome").and_then(Json::as_str) {
                Some("attack") => attacks += 1,
                Some("survives") => survives += 1,
                Some("inconclusive") => inconclusive += 1,
                _ => return None,
            }
            results.push(r.clone());
        }
    }
    let identity = identity?;
    // The exact field order of `protocol::campaign_body`.
    let mut fields = vec![
        ("enumerated".to_string(), Json::count(total)),
        ("attacks".into(), Json::count(attacks)),
        ("survives".into(), Json::count(survives)),
        ("inconclusive".into(), Json::count(inconclusive)),
        ("interrupted".into(), Json::Bool(false)),
        ("identity".into(), Json::str(identity)),
    ];
    if early_rejects > 0 {
        fields.push(("early_rejects".into(), Json::Int(early_rejects)));
    }
    fields.push(("results".into(), Json::Arr(results)));
    let body = Json::Obj(fields);
    let mut envelope = ok_response(job.mode.keyword(), Some(digest), false, body);
    if let Json::Obj(fields) = &mut envelope {
        fields.push(("via".to_string(), Json::str("fleet")));
    }
    Some(envelope.render_compact())
}
