//! Property-based tests of the Dolev–Yao knowledge engine.

use proptest::prelude::*;
use spi_semantics::{NameTable, RtTerm};
use spi_syntax::Name;
use spi_verify::Knowledge;

/// A pool of atoms (restricted names) in a shared table.
fn pool() -> (NameTable, Vec<RtTerm>) {
    let mut names = NameTable::new();
    let atoms = (0..6)
        .map(|i| {
            RtTerm::Id(names.alloc_restricted(
                &Name::new(format!("a{i}")),
                if i % 2 == 0 { "0" } else { "1" }.parse().unwrap(),
            ))
        })
        .collect();
    (names, atoms)
}

fn arb_msg(atoms: Vec<RtTerm>) -> impl Strategy<Value = RtTerm> {
    let leaf = proptest::sample::select(atoms.clone());
    leaf.prop_recursive(3, 16, 2, move |inner| {
        let atoms = atoms.clone();
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RtTerm::Pair {
                fst: Box::new(a),
                snd: Box::new(b),
                creator: None,
            }),
            (inner, proptest::sample::select(atoms)).prop_map(|(b, k)| RtTerm::Enc {
                body: vec![b],
                key: Box::new(k),
                creator: None,
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn learning_is_monotone(msgs in prop::collection::vec(arb_msg(pool().1), 1..8)) {
        // Everything derivable before learning stays derivable after.
        let mut kn = Knowledge::new();
        for m in &msgs[..msgs.len() / 2] {
            kn.learn(m.clone());
        }
        let before: Vec<RtTerm> = kn.iter().cloned().collect();
        for m in &msgs[msgs.len() / 2..] {
            kn.learn(m.clone());
        }
        for t in &before {
            prop_assert!(kn.can_derive(t));
        }
    }

    #[test]
    fn learning_order_is_irrelevant(msgs in prop::collection::vec(arb_msg(pool().1), 1..8)) {
        let mut forward = Knowledge::new();
        for m in &msgs {
            forward.learn(m.clone());
        }
        let mut backward = Knowledge::new();
        for m in msgs.iter().rev() {
            backward.learn(m.clone());
        }
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn learning_is_idempotent(msgs in prop::collection::vec(arb_msg(pool().1), 1..6)) {
        let mut once = Knowledge::new();
        for m in &msgs {
            once.learn(m.clone());
        }
        let mut twice = once.clone();
        for m in &msgs {
            twice.learn(m.clone());
        }
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn learnt_messages_are_derivable(msgs in prop::collection::vec(arb_msg(pool().1), 1..8)) {
        let mut kn = Knowledge::new();
        for m in &msgs {
            kn.learn(m.clone());
        }
        for m in &msgs {
            prop_assert!(kn.can_derive(m));
        }
    }

    #[test]
    fn derivability_is_closed_under_construction(
        msgs in prop::collection::vec(arb_msg(pool().1), 1..6),
        key_idx in 0usize..6,
    ) {
        let (_, atoms) = pool();
        let mut kn = Knowledge::new();
        for m in &msgs {
            kn.learn(m.clone());
        }
        // Anything buildable from two derivable parts is derivable.
        if kn.can_derive(&msgs[0]) && kn.can_derive(&atoms[key_idx]) {
            let pair = RtTerm::Pair {
                fst: Box::new(msgs[0].clone()),
                snd: Box::new(atoms[key_idx].clone()),
                creator: None,
            };
            prop_assert!(kn.can_derive(&pair));
            let enc = RtTerm::Enc {
                body: vec![msgs[0].clone()],
                key: Box::new(atoms[key_idx].clone()),
                creator: None,
            };
            prop_assert!(kn.can_derive(&enc));
        }
    }

    #[test]
    fn sealed_contents_are_underivable_without_the_key(
        payload_idx in 0usize..3,
        key_idx in 3usize..6,
    ) {
        // Learn only {payload}key: neither part leaks.
        let (_, atoms) = pool();
        let payload = atoms[payload_idx].clone();
        let key = atoms[key_idx].clone();
        let sealed = RtTerm::Enc {
            body: vec![payload.clone()],
            key: Box::new(key.clone()),
            creator: None,
        };
        let mut kn = Knowledge::new();
        kn.learn(sealed);
        prop_assert!(!kn.can_derive(&payload));
        prop_assert!(!kn.can_derive(&key));
    }
}
