//! Tester synthesis: Definition 3 made executable.
//!
//! The trace-inclusion check of [`trace_preorder`](crate::trace_preorder)
//! is the efficient decision procedure; this module cross-validates it by
//! implementing Definition 3 *directly*: synthesize a family of concrete
//! tester processes — of the two shapes the paper itself uses —
//!
//! * **origin testers** `o(z).[z ≗ l] β̄⟨z⟩`, which detect where a
//!   revealed message was created (the paper's tester against `P1`), and
//! * **replay testers** `o(z).o(w).[z ≗ w] β̄⟨z⟩`, which detect two
//!   messages with the same origin (the paper's tester against `Pm2`),
//!
//! and compare pass-sets: `P ⊑ Q` requires every test passed by `P` to be
//! passed by `Q`.

use spi_addr::{Path, RelAddr};
use spi_semantics::Barb;
use spi_syntax::{Name, Process, Term};

use crate::{may_exhibit_bounded, ExploreOptions, Label, Lts, ObsTerm, VerifyError};

/// The barb every synthesized tester signals on.
const BETA: &str = "beta__";

/// The barb synthesized testers exhibit when they accept.
#[must_use]
pub fn tester_barb() -> Barb {
    Barb {
        chan: Name::new(BETA),
        output: true,
    }
}

/// Collects the `(channel, creator)` pairs observable in an explored
/// system: one per distinct origin revealed on each free channel.
fn observed_origins(lts: &Lts) -> Vec<(Name, Path)> {
    let mut out: Vec<(Name, Path)> = Vec::new();
    for state in &lts.states {
        for (label, _) in &state.edges {
            if let Label::Obs(ev, _) = label {
                let mut creators = Vec::new();
                collect_creators(&ev.payload, &mut creators);
                for c in creators {
                    let entry = (ev.chan.clone(), c);
                    if !out.contains(&entry) {
                        out.push(entry);
                    }
                }
            }
        }
    }
    out
}

fn collect_creators(t: &ObsTerm, out: &mut Vec<Path>) {
    match t {
        ObsTerm::Free(_) => {}
        ObsTerm::Fresh { creator, .. } => out.push(creator.clone()),
        ObsTerm::Pair(a, b, c) => {
            out.extend(c.clone());
            collect_creators(a, out);
            collect_creators(b, out);
        }
        ObsTerm::Enc(body, key, c) => {
            out.extend(c.clone());
            for x in body {
                collect_creators(x, out);
            }
            collect_creators(key, out);
        }
    }
}

/// Synthesizes the paper's two tester families for a system whose
/// explored observations are in `lts`.
///
/// The testers are written for the composition `system | T`: the system's
/// positions gain a `‖0` prefix and the tester sits at `‖1`, so an origin
/// at (pre-composition) position `p` is addressed by the literal
/// `between(‖1, ‖0·p)`.
#[must_use]
pub fn synthesize_testers(lts: &Lts) -> Vec<Process> {
    let tester_pos: Path = "1".parse().expect("static path");
    let mut testers = Vec::new();
    let origins = observed_origins(lts);
    // Origin testers: one per (channel, creator).
    for (chan, creator) in &origins {
        let shifted = "0".parse::<Path>().expect("static").join(creator);
        let lit = RelAddr::between(&tester_pos, &shifted);
        testers.push(Process::input(
            Term::name(chan.as_str()),
            "z",
            Process::addr_match_lit(
                Term::var("z"),
                lit,
                Process::output(Term::name(BETA), Term::var("z"), Process::Nil),
            ),
        ));
    }
    // Replay testers: one per channel.
    let mut chans: Vec<Name> = origins.into_iter().map(|(c, _)| c).collect();
    chans.sort();
    chans.dedup();
    for chan in chans {
        testers.push(Process::input(
            Term::name(chan.as_str()),
            "z",
            Process::input(
                Term::name(chan.as_str()),
                "w",
                Process::addr_match(
                    Term::var("z"),
                    Term::var("w"),
                    Process::output(Term::name(BETA), Term::var("z"), Process::Nil),
                ),
            ),
        ));
    }
    testers
}

/// The outcome of a direct Definition-3 comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Definition3Outcome {
    /// How many testers were synthesized and run against both systems.
    pub testers: usize,
    /// Testers passed by the implementation but not the specification —
    /// each one is a may-testing counterexample.
    pub violations: Vec<String>,
    /// Testers whose comparison could not be decided within the budget:
    /// either the implementation side might still pass beyond its
    /// truncation, or the specification side might.
    pub undecided: Vec<String>,
}

impl Definition3Outcome {
    /// Returns `true` when every test passed by the implementation is
    /// passed by the specification (over what was decided).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns `true` when every tester was decided within the budget.
    #[must_use]
    pub fn conclusive(&self) -> bool {
        self.undecided.is_empty()
    }
}

/// Runs Definition 3 directly: for every synthesized tester `T`, checks
/// that `(implementation | T) ⇓ β` implies `(specification | T) ⇓ β`.
///
/// Both arguments must be the *closed systems* (e.g. `(νC)(P | X)` from
/// [`Verifier::under_attack`]); `opts` configures the exploration of the
/// compositions — note the intruder position shifts to `‖0‖1` under the
/// tester composition.
///
/// [`Verifier::under_attack`]: https://docs.rs/spi-auth
///
/// # Errors
///
/// Propagates exploration failures.
pub fn definition3_preorder(
    implementation: &Process,
    specification: &Process,
    testers: &[Process],
    opts: &ExploreOptions,
) -> Result<Definition3Outcome, VerifyError> {
    let barb = tester_barb();
    let mut violations = Vec::new();
    let mut undecided = Vec::new();
    for (i, tester) in testers.iter().enumerate() {
        let composed = Process::par(implementation.clone(), tester.clone());
        let (impl_witness, impl_complete) = may_exhibit_bounded(&composed, &barb, opts)?;
        if impl_witness.is_none() {
            // A pass beyond the implementation's truncation could still
            // turn out to be a violation.
            if !impl_complete {
                undecided.push(format!(
                    "tester #{i} ({tester}): implementation side truncated before a pass was found"
                ));
            }
            continue;
        }
        // The implementation pass is sound — it lives on the explored
        // prefix.  A specification *failure* is sound only when the
        // specification side was fully explored.
        let composed = Process::par(specification.clone(), tester.clone());
        let (spec_witness, spec_complete) = may_exhibit_bounded(&composed, &barb, opts)?;
        if spec_witness.is_none() {
            if spec_complete {
                violations.push(format!("tester #{i} ({tester}) distinguishes the systems"));
            } else {
                undecided.push(format!(
                    "tester #{i} ({tester}): specification side truncated before a pass was found"
                ));
            }
        }
    }
    Ok(Definition3Outcome {
        testers: testers.len(),
        violations,
        undecided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, IntruderSpec};
    use spi_syntax::parse;

    fn explore(src: &str) -> Lts {
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        Explorer::new(ExploreOptions {
            intruder: Some(spec),
            ..ExploreOptions::default()
        })
        .explore(&parse(src).expect("parses"))
        .expect("explores")
    }

    #[test]
    fn origins_are_harvested_from_observations() {
        let lts = explore("(^c)(((^m) c<m> | c(x).observe<x>) | 0)");
        let origins = observed_origins(&lts);
        assert!(origins
            .iter()
            .any(|(c, p)| c == "observe" && p.to_bits() == "00"));
    }

    #[test]
    fn testers_cover_origin_and_replay_shapes() {
        let lts = explore("(^c)(((^m) c<m> | c(x).observe<x>) | 0)");
        let testers = synthesize_testers(&lts);
        assert!(testers.len() >= 2);
        let shown: Vec<String> = testers.iter().map(ToString::to_string).collect();
        assert!(shown.iter().any(|s| s.contains("~ @(")), "{shown:?}");
        assert!(
            shown.iter().any(|s| s.contains("observe(z).observe(w)")),
            "{shown:?}"
        );
    }

    #[test]
    fn identical_systems_pass_their_own_tests() {
        let sys = parse("(^c)(((^m) c<m> | c(x).observe<x>) | 0)").unwrap();
        let lts = explore(&sys.to_string());
        let testers = synthesize_testers(&lts);
        let opts = ExploreOptions {
            intruder: Some(IntruderSpec::new("01".parse().unwrap(), ["c"])),
            ..ExploreOptions::default()
        };
        let outcome = definition3_preorder(&sys, &sys, &testers, &opts).unwrap();
        assert!(outcome.holds());
        assert!(outcome.testers >= 1);
    }

    #[test]
    fn truncated_comparisons_are_flagged_undecided() {
        use crate::Budget;
        let sys = parse("(^c)(((^m) c<m> | c(x).observe<x>) | 0)").unwrap();
        let lts = explore(&sys.to_string());
        let testers = synthesize_testers(&lts);
        let opts = ExploreOptions {
            intruder: Some(IntruderSpec::new("01".parse().unwrap(), ["c"])),
            budget: Budget::unlimited().states(2),
            ..ExploreOptions::default()
        };
        let outcome = definition3_preorder(&sys, &sys, &testers, &opts).unwrap();
        assert!(outcome.holds(), "no decided violation");
        assert!(!outcome.conclusive(), "truncation is surfaced, not hidden");
    }

    #[test]
    fn distinct_origins_are_distinguished_by_synthesized_testers() {
        // Implementation reveals a message created by the right component;
        // the specification reveals one created by the left.
        let impl_sys = parse("(^c)((c(x).observe<x> | (^m) c<m>) | 0)").unwrap();
        let spec_sys = parse("(^c)(((^m) c<m> | c(x).observe<x>) | 0)").unwrap();
        let lts = explore(&impl_sys.to_string());
        let testers = synthesize_testers(&lts);
        let opts = ExploreOptions {
            intruder: Some(IntruderSpec::new("01".parse().unwrap(), ["c"])),
            ..ExploreOptions::default()
        };
        let outcome = definition3_preorder(&impl_sys, &spec_sys, &testers, &opts).unwrap();
        assert!(!outcome.holds(), "the origin tester notices");
    }
}
