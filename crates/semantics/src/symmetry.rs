//! Session-symmetry: interchangeable replica groups and the physical
//! application of copy permutations.
//!
//! A replication `!P` that has unfolded `k ≥ 2` times leaves `k` copies at
//! the roots `base·‖1^t·‖0` along its right spine.  The copies started
//! from the same body, so a state reached by running copy 1 first and a
//! state reached by running copy 2 first differ only by which copy holds
//! which residual — they are isomorphic up to a *copy permutation* that
//! swaps the subtrees and rewrites every absolute position (creator
//! stamps, localization indexes) accordingly.  Explorers quotient their
//! state keys by these permutations to collapse the factorially many
//! session interleavings into one representative per orbit.
//!
//! Soundness rests on the machine being *equivariant* under copy
//! permutations: every runtime path computation either stays inside one
//! copy (relative addresses between two positions under the same copy
//! root do not depend on the root) or uses absolute paths, which
//! [`apply_perm`] rewrites.  The one construct that is **not** equivariant
//! is an unresolved source-level relative address (it resolves against
//! the holder's depth, and copy roots sit at different depths along the
//! spine), so [`sym_eligible`] refuses any state that still carries one —
//! explorers fall back to the unquotiented key there.

use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;

use spi_addr::{Branch, Path, ProcTree};

use crate::{Config, LeafState, NameTable, RtChanIndex, RtChannel, RtProcess, RtTerm};

/// One group of interchangeable session replicas: the copies spawned by a
/// single replication leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionGroup {
    /// The position of the replication before any unfolding (the spine
    /// hangs off this path).
    pub base: Path,
    /// The copy roots `base·‖1^t·‖0` in spawn order.
    pub roots: Vec<Path>,
}

/// A finite path permutation given as prefix-rewrite pairs over copy
/// roots: a path starting with a source root is rewritten to start with
/// the paired destination root; every other path is left alone.
///
/// The sources of a well-formed permutation are pairwise prefix-free (copy
/// roots of top-level groups never nest), so at most one pair applies to
/// any path and [`PathPerm::apply`] is a function.  Identity pairs are
/// never stored, so the empty pair list *is* the identity.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathPerm {
    pairs: Vec<(Path, Path)>,
}

impl PathPerm {
    /// The identity permutation.
    #[must_use]
    pub fn identity() -> PathPerm {
        PathPerm::default()
    }

    /// Builds a permutation from `(source, destination)` root pairs,
    /// dropping identity pairs and sorting for a canonical representation.
    #[must_use]
    pub fn from_pairs<I>(pairs: I) -> PathPerm
    where
        I: IntoIterator<Item = (Path, Path)>,
    {
        let mut pairs: Vec<(Path, Path)> = pairs.into_iter().filter(|(s, d)| s != d).collect();
        pairs.sort();
        pairs.dedup();
        PathPerm { pairs }
    }

    /// Returns `true` for the identity permutation.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The prefix-rewrite pairs, sorted by source.
    #[must_use]
    pub fn pairs(&self) -> &[(Path, Path)] {
        &self.pairs
    }

    /// Rewrites one path: the unique applicable pair (if any) swaps the
    /// matching root prefix.
    #[must_use]
    pub fn apply(&self, p: &Path) -> Path {
        for (s, d) in &self.pairs {
            if s.is_prefix_of(p) {
                if let Some(suffix) = p.strip_prefix(s) {
                    return d.join(&suffix);
                }
            }
        }
        p.clone()
    }

    /// The inverse permutation (pairs swapped).
    #[must_use]
    pub fn invert(&self) -> PathPerm {
        PathPerm::from_pairs(self.pairs.iter().map(|(s, d)| (d.clone(), s.clone())))
    }

    /// The composition "`self` first, then `next`" as a permutation:
    /// `result.apply(p) == next.apply(&self.apply(p))` for every path
    /// whose copy roots are prefix-free across both permutations.
    #[must_use]
    pub fn then(&self, next: &PathPerm) -> PathPerm {
        let mut pairs: Vec<(Path, Path)> = self
            .pairs
            .iter()
            .map(|(s, d)| (s.clone(), next.apply(d)))
            .collect();
        for (s, d) in &next.pairs {
            if !self.pairs.iter().any(|(src, _)| src == s) {
                pairs.push((s.clone(), d.clone()));
            }
        }
        PathPerm::from_pairs(pairs)
    }
}

/// Discovers the top-level session groups of a configuration: every
/// replication leaf that has unfolded at least twice, excluding groups
/// nested inside another group's copy (only top-level copies permute
/// freely) and groups containing a pinned position (the intruder's or the
/// fault model's seat must not move).
#[must_use]
pub fn session_groups(cfg: &Config, pinned: &[Path]) -> Vec<SessionGroup> {
    let mut groups = Vec::new();
    for (path, leaf) in cfg.tree().leaves() {
        let LeafState::Bang { unfolded, .. } = leaf else {
            continue;
        };
        let k = *unfolded as usize;
        if k < 2 {
            continue;
        }
        let tags: Vec<Branch> = path.iter().collect();
        if tags.len() < k || tags[tags.len() - k..].iter().any(|b| *b != Branch::Right) {
            continue;
        }
        let base = path.prefix(tags.len() - k);
        let roots: Vec<Path> = (0..k)
            .map(|t| {
                let mut p = base.clone();
                for _ in 0..t {
                    p.push(Branch::Right);
                }
                p.child(Branch::Left)
            })
            .collect();
        groups.push(SessionGroup { base, roots });
    }
    let kept: Vec<SessionGroup> = groups
        .iter()
        .enumerate()
        .filter(|(i, g)| {
            let nested = groups
                .iter()
                .enumerate()
                .any(|(j, h)| *i != j && h.roots.iter().any(|r| r.is_prefix_of(&g.base)));
            let pins_copy = g
                .roots
                .iter()
                .any(|r| pinned.iter().any(|p| r.is_prefix_of(p)));
            !nested && !pins_copy
        })
        .map(|(_, g)| g.clone())
        .collect();
    let mut kept = kept;
    kept.sort_by(|a, b| a.base.cmp(&b.base));
    kept
}

/// Returns `true` when the configuration contains no construct whose
/// behaviour depends on a position's *depth* rather than its identity —
/// unresolved relative-address channel indexes, literal address
/// matchings, and located-literal patterns all resolve a stored relative
/// address against the holder's position, which copy permutations change.
/// Ineligible states keep their unquotiented keys (sound, just unmerged).
#[must_use]
pub fn sym_eligible(cfg: &Config) -> bool {
    cfg.tree().leaves().all(|(_, leaf)| leaf_eligible(leaf))
}

fn leaf_eligible(leaf: &LeafState) -> bool {
    match leaf {
        LeafState::Dead => true,
        LeafState::Out {
            chan,
            payload,
            cont,
        } => chan_eligible(chan) && term_eligible(payload) && proc_eligible(cont),
        LeafState::In { chan, cont, .. } => chan_eligible(chan) && proc_eligible(cont),
        LeafState::Bang { body, .. } => proc_eligible(body),
    }
}

fn chan_eligible(ch: &RtChannel) -> bool {
    term_eligible(&ch.subject) && !matches!(ch.index, RtChanIndex::At(_))
}

fn term_eligible(t: &RtTerm) -> bool {
    match t {
        RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) => true,
        RtTerm::Pair { fst, snd, .. } => term_eligible(fst) && term_eligible(snd),
        RtTerm::Enc { body, key, .. } => body.iter().all(term_eligible) && term_eligible(key),
        RtTerm::LocatedLit { .. } => false,
    }
}

fn proc_eligible(p: &RtProcess) -> bool {
    match p {
        RtProcess::Nil => true,
        RtProcess::Output(ch, t, cont) => {
            chan_eligible(ch) && term_eligible(t) && proc_eligible(cont)
        }
        RtProcess::Input(ch, _, cont) => chan_eligible(ch) && proc_eligible(cont),
        RtProcess::Restrict(_, body) | RtProcess::Bang(body) => proc_eligible(body),
        RtProcess::Par(l, r) => proc_eligible(l) && proc_eligible(r),
        RtProcess::Match(a, b, cont) | RtProcess::AddrMatchT(a, b, cont) => {
            term_eligible(a) && term_eligible(b) && proc_eligible(cont)
        }
        RtProcess::AddrMatchL(..) => false,
        RtProcess::Split { pair, body, .. } => term_eligible(pair) && proc_eligible(body),
        RtProcess::Case {
            scrutinee,
            key,
            body,
            ..
        } => term_eligible(scrutinee) && term_eligible(key) && proc_eligible(body),
    }
}

/// Rewrites every absolute path inside a term (composite creator stamps)
/// through `perm`.  Name creators live in the table and are rewritten by
/// [`apply_perm`]; [`RtTerm::Id`] nodes pass through unchanged.
#[must_use]
pub fn rewrite_term(t: &RtTerm, perm: &PathPerm) -> RtTerm {
    match t {
        RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) => t.clone(),
        RtTerm::Pair { fst, snd, creator } => RtTerm::Pair {
            fst: Box::new(rewrite_term(fst, perm)),
            snd: Box::new(rewrite_term(snd, perm)),
            creator: creator.as_ref().map(|p| perm.apply(p)),
        },
        RtTerm::Enc { body, key, creator } => RtTerm::Enc {
            body: body.iter().map(|x| rewrite_term(x, perm)).collect(),
            key: Box::new(rewrite_term(key, perm)),
            creator: creator.as_ref().map(|p| perm.apply(p)),
        },
        RtTerm::LocatedLit { addr, inner } => RtTerm::LocatedLit {
            addr: addr.clone(),
            inner: Box::new(rewrite_term(inner, perm)),
        },
    }
}

fn rewrite_chan(ch: &RtChannel, perm: &PathPerm) -> RtChannel {
    RtChannel {
        subject: rewrite_term(&ch.subject, perm),
        index: match &ch.index {
            RtChanIndex::AtAbs(p) => RtChanIndex::AtAbs(perm.apply(p)),
            other => other.clone(),
        },
    }
}

fn rewrite_proc(p: &RtProcess, perm: &PathPerm) -> RtProcess {
    match p {
        RtProcess::Nil => RtProcess::Nil,
        RtProcess::Output(ch, t, cont) => RtProcess::Output(
            rewrite_chan(ch, perm),
            rewrite_term(t, perm),
            Box::new(rewrite_proc(cont, perm)),
        ),
        RtProcess::Input(ch, x, cont) => RtProcess::Input(
            rewrite_chan(ch, perm),
            x.clone(),
            Box::new(rewrite_proc(cont, perm)),
        ),
        RtProcess::Restrict(n, body) => {
            RtProcess::Restrict(n.clone(), Box::new(rewrite_proc(body, perm)))
        }
        RtProcess::Par(l, r) => RtProcess::Par(
            Box::new(rewrite_proc(l, perm)),
            Box::new(rewrite_proc(r, perm)),
        ),
        RtProcess::Match(a, b, cont) => RtProcess::Match(
            rewrite_term(a, perm),
            rewrite_term(b, perm),
            Box::new(rewrite_proc(cont, perm)),
        ),
        RtProcess::AddrMatchT(a, b, cont) => RtProcess::AddrMatchT(
            rewrite_term(a, perm),
            rewrite_term(b, perm),
            Box::new(rewrite_proc(cont, perm)),
        ),
        RtProcess::AddrMatchL(a, l, cont) => RtProcess::AddrMatchL(
            rewrite_term(a, perm),
            l.clone(),
            Box::new(rewrite_proc(cont, perm)),
        ),
        RtProcess::Bang(body) => RtProcess::Bang(Box::new(rewrite_proc(body, perm))),
        RtProcess::Split {
            pair,
            fst,
            snd,
            body,
        } => RtProcess::Split {
            pair: rewrite_term(pair, perm),
            fst: fst.clone(),
            snd: snd.clone(),
            body: Box::new(rewrite_proc(body, perm)),
        },
        RtProcess::Case {
            scrutinee,
            binders,
            key,
            body,
        } => RtProcess::Case {
            scrutinee: rewrite_term(scrutinee, perm),
            binders: binders.clone(),
            key: rewrite_term(key, perm),
            body: Box::new(rewrite_proc(body, perm)),
        },
    }
}

fn rewrite_leaf(leaf: &LeafState, perm: &PathPerm) -> LeafState {
    match leaf {
        LeafState::Dead => LeafState::Dead,
        LeafState::Out {
            chan,
            payload,
            cont,
        } => LeafState::Out {
            chan: rewrite_chan(chan, perm),
            payload: rewrite_term(payload, perm),
            cont: rewrite_proc(cont, perm),
        },
        LeafState::In { chan, var, cont } => LeafState::In {
            chan: rewrite_chan(chan, perm),
            var: var.clone(),
            cont: rewrite_proc(cont, perm),
        },
        LeafState::Bang { body, unfolded } => LeafState::Bang {
            body: rewrite_proc(body, perm),
            unfolded: *unfolded,
        },
    }
}

/// Physically applies a copy permutation: moves the copy subtrees to their
/// destination roots and rewrites every absolute path — localization
/// indexes, composite creator stamps, and the name table's creators —
/// through `perm`.  Returns the configuration unchanged when any subtree
/// lookup fails (a malformed permutation degrades to no quotienting, never
/// to a wrong state).
#[must_use]
pub fn apply_perm(cfg: &Config, perm: &PathPerm) -> Config {
    if perm.is_identity() {
        return cfg.clone();
    }
    let mut moved: Vec<(&Path, ProcTree<LeafState>)> = Vec::with_capacity(perm.pairs().len());
    for (src, dst) in perm.pairs() {
        match cfg.tree().subtree(src) {
            Ok(sub) => moved.push((dst, sub.clone())),
            Err(_) => return cfg.clone(),
        }
    }
    let mut tree: ProcTree<LeafState> = cfg.tree().clone();
    for (dst, sub) in moved {
        if tree.replace(dst, sub).is_err() {
            return cfg.clone();
        }
    }
    let tree = tree.map(|_, leaf| rewrite_leaf(leaf, perm));
    let names = cfg.names().map_creators(|p| perm.apply(p));
    Config {
        tree: Arc::new(tree),
        names: Arc::new(names),
    }
}

/// How many candidate arrangements the quotient will try before giving up
/// on a state (falling back to its unquotiented key).
pub const MAX_CANDIDATES: usize = 256;

/// A permutation-invariant signature of one copy, used to sort a group's
/// copies into a canonical order.
///
/// The copy subtree is serialized with fresh first-occurrence name
/// numbering; every absolute path under the copy's own root is masked to
/// `~suffix`, every path under *any* group's copy root is masked to
/// `?g.suffix` (the group's index, with the copy index erased), and paths
/// outside all copies are serialized verbatim.  Masking makes the
/// signature invariant under joint copy permutations: copies whose
/// signatures tie are genuinely interchangeable as far as sorting can
/// tell, and the quotient enumerates their arrangements explicitly.
fn copy_signature(cfg: &Config, groups: &[SessionGroup], self_root: &Path) -> String {
    let sub = match cfg.tree().subtree(self_root) {
        Ok(s) => s,
        Err(_) => return String::new(),
    };
    let mut ctx = SigCtx {
        names: cfg.names(),
        groups,
        self_root,
        local: HashMap::new(),
    };
    let mut out = String::new();
    ctx.tree(sub, &mut out);
    out
}

struct SigCtx<'a> {
    names: &'a NameTable,
    groups: &'a [SessionGroup],
    self_root: &'a Path,
    /// `NameId` index → local first-occurrence number.
    local: HashMap<usize, usize>,
}

impl SigCtx<'_> {
    fn mask(&self, p: &Path, out: &mut String) {
        if self.self_root.is_prefix_of(p) {
            if let Some(suffix) = p.strip_prefix(self.self_root) {
                out.push('~');
                let _ = suffix.write_bits(out);
                return;
            }
        }
        for (gi, g) in self.groups.iter().enumerate() {
            for r in &g.roots {
                if r.is_prefix_of(p) {
                    if let Some(suffix) = p.strip_prefix(r) {
                        let _ = write!(out, "?{gi}.");
                        let _ = suffix.write_bits(out);
                        return;
                    }
                }
            }
        }
        let _ = p.write_bits(out);
    }

    fn term(&mut self, t: &RtTerm, out: &mut String) {
        match t {
            RtTerm::Var(v) => {
                let _ = write!(out, "v:{v}");
            }
            RtTerm::Sym(n) => {
                let _ = write!(out, "s:{n}");
            }
            RtTerm::Id(id) => {
                let e = self.names.entry(*id);
                if e.restricted {
                    let next = self.local.len();
                    let k = *self.local.entry(id.index()).or_insert(next);
                    let _ = write!(out, "r{k}@");
                    match &e.creator {
                        Some(p) => self.mask(p, out),
                        None => out.push('-'),
                    }
                } else {
                    let _ = write!(out, "f:{}", e.base);
                }
            }
            RtTerm::Pair { fst, snd, creator } => {
                out.push('(');
                self.term(fst, out);
                out.push(',');
                self.term(snd, out);
                out.push(')');
                self.creator(creator, out);
            }
            RtTerm::Enc { body, key, creator } => {
                out.push('{');
                for (i, x) in body.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.term(x, out);
                }
                out.push('}');
                self.term(key, out);
                self.creator(creator, out);
            }
            RtTerm::LocatedLit { addr, inner } => {
                let _ = write!(out, "L[{addr}]");
                self.term(inner, out);
            }
        }
    }

    fn creator(&self, c: &Option<Path>, out: &mut String) {
        out.push('#');
        match c {
            Some(p) => self.mask(p, out),
            None => out.push('-'),
        }
    }

    fn chan(&mut self, ch: &RtChannel, out: &mut String) {
        self.term(&ch.subject, out);
        match &ch.index {
            RtChanIndex::Plain => {}
            RtChanIndex::At(a) => {
                let _ = write!(out, "@?{a}");
            }
            RtChanIndex::AtAbs(p) => {
                out.push('@');
                self.mask(p, out);
            }
            RtChanIndex::Loc(l) => {
                let _ = write!(out, "@^{l}");
            }
        }
    }

    fn proc(&mut self, p: &RtProcess, out: &mut String) {
        match p {
            RtProcess::Nil => out.push('0'),
            RtProcess::Output(ch, t, cont) => {
                out.push('O');
                self.chan(ch, out);
                out.push('<');
                self.term(t, out);
                out.push('>');
                self.proc(cont, out);
            }
            RtProcess::Input(ch, x, cont) => {
                out.push('I');
                self.chan(ch, out);
                let _ = write!(out, "({x})");
                self.proc(cont, out);
            }
            RtProcess::Restrict(n, body) => {
                let _ = write!(out, "N({n})");
                self.proc(body, out);
            }
            RtProcess::Par(l, r) => {
                out.push('[');
                self.proc(l, out);
                out.push('|');
                self.proc(r, out);
                out.push(']');
            }
            RtProcess::Match(a, b, cont) => {
                out.push('M');
                self.term(a, out);
                out.push('=');
                self.term(b, out);
                self.proc(cont, out);
            }
            RtProcess::AddrMatchT(a, b, cont) => {
                out.push('A');
                self.term(a, out);
                out.push('~');
                self.term(b, out);
                self.proc(cont, out);
            }
            RtProcess::AddrMatchL(a, l, cont) => {
                out.push('A');
                self.term(a, out);
                let _ = write!(out, "~@{l}");
                self.proc(cont, out);
            }
            RtProcess::Bang(body) => {
                out.push('!');
                self.proc(body, out);
            }
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => {
                out.push('S');
                self.term(pair, out);
                let _ = write!(out, "({fst},{snd})");
                self.proc(body, out);
            }
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                out.push('C');
                self.term(scrutinee, out);
                out.push('{');
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push('}');
                self.term(key, out);
                out.push(':');
                self.proc(body, out);
            }
        }
    }

    fn leaf(&mut self, leaf: &LeafState, out: &mut String) {
        match leaf {
            LeafState::Dead => out.push('D'),
            LeafState::Out {
                chan,
                payload,
                cont,
            } => {
                out.push('o');
                self.chan(chan, out);
                out.push('<');
                self.term(payload, out);
                out.push('>');
                self.proc(cont, out);
            }
            LeafState::In { chan, var, cont } => {
                out.push('i');
                self.chan(chan, out);
                let _ = write!(out, "({var})");
                self.proc(cont, out);
            }
            LeafState::Bang { body, unfolded } => {
                let _ = write!(out, "b{unfolded}");
                self.proc(body, out);
            }
        }
    }

    fn tree(&mut self, t: &ProcTree<LeafState>, out: &mut String) {
        match t {
            ProcTree::Leaf(l) => self.leaf(l, out),
            ProcTree::Node(l, r) => {
                out.push('(');
                self.tree(l, out);
                out.push(';');
                self.tree(r, out);
                out.push(')');
            }
        }
    }
}

/// Enumerates the permutations of `0..n` into `out` (each as an image
/// vector `perm[i] = j`).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, used: &mut Vec<bool>, n: usize, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == n {
            out.push(prefix.clone());
            return;
        }
        for j in 0..n {
            if !used[j] {
                used[j] = true;
                prefix.push(j);
                go(prefix, used, n, out);
                prefix.pop();
                used[j] = false;
            }
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut vec![false; n], n, &mut out);
    out
}

fn factorial_capped(n: usize, cap: usize) -> usize {
    let mut f = 1usize;
    for i in 2..=n {
        f = f.saturating_mul(i);
        if f > cap {
            return cap + 1;
        }
    }
    f
}

/// The candidate arrangements of a configuration's copies: every joint
/// permutation that sorts each group's copies by signature, with ties
/// broken every possible way.  The canonical key is the minimum key over
/// these candidates; because signatures are permutation-invariant, two
/// permutation-related states enumerate the same candidate orbit and land
/// on the same minimum.
///
/// Returns `None` when the tie classes multiply past `cap` — callers fall
/// back to the unquotiented key (sound, just unmerged).
#[must_use]
pub fn candidate_perms(
    cfg: &Config,
    groups: &[SessionGroup],
    cap: usize,
) -> Option<Vec<PathPerm>> {
    // Per group: sort copies by signature, then split the sorted order
    // into tie classes (runs of equal signatures).  Each class contributes
    // every arrangement of its members over its slot range; the overall
    // candidate set is the cartesian product over all classes.
    //
    // One arrangement is a list of `(original copy, slot)` assignments.
    type Arrangement = Vec<(usize, usize)>;
    let mut all_classes: Vec<(usize, Vec<Arrangement>)> = Vec::new();
    let mut total = 1usize;
    for (gi, g) in groups.iter().enumerate() {
        let sigs: Vec<String> = g
            .roots
            .iter()
            .map(|r| copy_signature(cfg, groups, r))
            .collect();
        let mut order: Vec<usize> = (0..g.roots.len()).collect();
        order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]).then(a.cmp(&b)));
        let mut i = 0;
        while i < order.len() {
            let mut j = i + 1;
            while j < order.len() && sigs[order[j]] == sigs[order[i]] {
                j += 1;
            }
            let members: Vec<usize> = order[i..j].to_vec();
            let slots: Vec<usize> = (i..j).collect();
            total = total.saturating_mul(factorial_capped(members.len(), cap));
            if total > cap {
                return None;
            }
            let arrangements: Vec<Vec<(usize, usize)>> = permutations(members.len())
                .into_iter()
                .map(|perm| {
                    members
                        .iter()
                        .zip(perm.iter())
                        .map(|(&m, &p)| (m, slots[p]))
                        .collect()
                })
                .collect();
            all_classes.push((gi, arrangements));
            i = j;
        }
    }
    let mut candidates: Vec<Vec<(Path, Path)>> = vec![Vec::new()];
    for (gi, arrangements) in &all_classes {
        let g = &groups[*gi];
        let mut next = Vec::with_capacity(candidates.len() * arrangements.len());
        for base in &candidates {
            for arr in arrangements {
                let mut pairs = base.clone();
                for (copy, slot) in arr {
                    pairs.push((g.roots[*copy].clone(), g.roots[*slot].clone()));
                }
                next.push(pairs);
            }
        }
        candidates = next;
        if candidates.len() > cap {
            return None;
        }
    }
    Some(candidates.into_iter().map(PathPerm::from_pairs).collect())
}

/// The sorted multiset of copy signatures per group — what an *erasing*
/// pseudo-quotient would consider the whole identity of a group.  Used by
/// the conformance suite's fault injection (`sym-no-perm`): hashing the
/// erased state plus these signatures is permutation-invariant but
/// conflates states whose copies relate to the rest of the system
/// differently, and the reduce oracle must catch the overmerge.
#[must_use]
pub fn group_signatures(cfg: &Config, groups: &[SessionGroup]) -> Vec<Vec<String>> {
    groups
        .iter()
        .map(|g| {
            let mut sigs: Vec<String> = g
                .roots
                .iter()
                .map(|r| copy_signature(cfg, groups, r))
                .collect();
            sigs.sort();
            sigs
        })
        .collect()
}

/// Erases every copy subtree to a dead leaf and rewrites the remaining
/// paths (creator stamps, localization indexes) through the *erasure map*
/// that sends every copy root of a group to the group's first root.  The
/// second component is that (deliberately non-injective) map.
///
/// This is **not** a sound quotient — it forgets which copy created which
/// name — and exists only so the conformance suite can inject it as a
/// realistic symmetry-canonicalization bug (`sym-no-perm`) and prove the
/// reduce oracle catches the conflation.
#[must_use]
pub fn erase_copies(cfg: &Config, groups: &[SessionGroup]) -> (Config, PathPerm) {
    let erasure = PathPerm::from_pairs(groups.iter().flat_map(|g| {
        g.roots
            .iter()
            .skip(1)
            .map(|r| (r.clone(), g.roots[0].clone()))
    }));
    let mut tree: ProcTree<LeafState> = cfg.tree().clone();
    for g in groups {
        for r in &g.roots {
            if tree.replace(r, ProcTree::Leaf(LeafState::Dead)).is_err() {
                return (cfg.clone(), PathPerm::identity());
            }
        }
    }
    let tree = tree.map(|_, leaf| rewrite_leaf(leaf, &erasure));
    let names = cfg.names().map_creators(|p| erasure.apply(p));
    (
        Config {
            tree: Arc::new(tree),
            names: Arc::new(names),
        },
        erasure,
    )
}

/// Every joint copy permutation of every group (the full orbit), or `None`
/// past `cap`.  This is the brute force the `verify_symmetry` debug mode
/// checks the signature-guided quotient against.
#[must_use]
pub fn all_perms(groups: &[SessionGroup], cap: usize) -> Option<Vec<PathPerm>> {
    let mut total = 1usize;
    for g in groups {
        total = total.saturating_mul(factorial_capped(g.roots.len(), cap));
        if total > cap {
            return None;
        }
    }
    let mut candidates: Vec<Vec<(Path, Path)>> = vec![Vec::new()];
    for g in groups {
        let perms = permutations(g.roots.len());
        let mut next = Vec::with_capacity(candidates.len() * perms.len());
        for base in &candidates {
            for perm in &perms {
                let mut pairs = base.clone();
                for (copy, slot) in perm.iter().enumerate() {
                    pairs.push((g.roots[copy].clone(), g.roots[*slot].clone()));
                }
                next.push(pairs);
            }
        }
        candidates = next;
        if candidates.len() > cap {
            return None;
        }
    }
    Some(candidates.into_iter().map(PathPerm::from_pairs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    /// Unfolds the replication at `path` `n` times, following the spine.
    fn unfold_n(c: &mut Config, path: &str, n: usize) {
        let mut at = p(path);
        for _ in 0..n {
            c.fire(&Action::Unfold { path: at.clone() }).expect("unfolds");
            at.push(Branch::Right);
        }
    }

    #[test]
    fn perm_apply_rewrites_prefixes_only() {
        let perm = PathPerm::from_pairs([(p("00"), p("010")), (p("010"), p("00"))]);
        assert_eq!(perm.apply(&p("001")), p("0101"));
        assert_eq!(perm.apply(&p("0100")), p("000"));
        assert_eq!(perm.apply(&p("1")), p("1"), "outside paths untouched");
        assert_eq!(perm.apply(&p("01")), p("01"), "spine untouched");
    }

    #[test]
    fn perm_invert_and_compose() {
        let swap = PathPerm::from_pairs([(p("00"), p("010")), (p("010"), p("00"))]);
        assert_eq!(swap.invert(), swap, "a swap is its own inverse");
        assert!(swap.then(&swap.invert()).is_identity());
        // A 3-cycle composed with itself is the other 3-cycle.
        let cyc = PathPerm::from_pairs([
            (p("00"), p("010")),
            (p("010"), p("0110")),
            (p("0110"), p("00")),
        ]);
        let twice = cyc.then(&cyc);
        assert_eq!(twice.apply(&p("00")), p("0110"));
        assert_eq!(twice.apply(&p("010")), p("00"));
        assert!(cyc.then(&twice).is_identity());
    }

    #[test]
    fn groups_require_two_copies() {
        let mut c = cfg("!(^m) c<m> | c(x)");
        assert!(session_groups(&c, &[]).is_empty());
        unfold_n(&mut c, "0", 1);
        assert!(session_groups(&c, &[]).is_empty(), "one copy is no group");
        c.fire(&Action::Unfold { path: p("01") }).unwrap();
        let groups = session_groups(&c, &[]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].base, p("0"));
        assert_eq!(groups[0].roots, vec![p("00"), p("010")]);
    }

    #[test]
    fn pinned_positions_inside_a_copy_disable_the_group() {
        let mut c = cfg("!(^m) c<m> | c(x)");
        unfold_n(&mut c, "0", 2);
        assert_eq!(session_groups(&c, &[p("1")]).len(), 1, "outside pin ok");
        assert!(
            session_groups(&c, &[p("001")]).is_empty(),
            "a pin under a copy root freezes the group"
        );
    }

    #[test]
    fn eligibility_rejects_relative_address_constructs() {
        assert!(sym_eligible(&cfg("(^m)(c<m> | c(x).d<x>)")));
        assert!(!sym_eligible(&cfg("c(x).[x ~ @(1.0)] d<x>")));
        // An unresolved relative channel literal (it cannot resolve at its
        // leaf) keeps an `At` index.
        assert!(!sym_eligible(&cfg("c@(11.0)<m>")));
    }

    #[test]
    fn swapping_equal_copies_is_a_key_fixpoint() {
        let mut c = cfg("!(^m) c<m> | c(x)");
        unfold_n(&mut c, "0", 2);
        let groups = session_groups(&c, &[]);
        let swap = PathPerm::from_pairs([
            (groups[0].roots[0].clone(), groups[0].roots[1].clone()),
            (groups[0].roots[1].clone(), groups[0].roots[0].clone()),
        ]);
        let swapped = apply_perm(&c, &swap);
        // Both copies are untouched residuals of the same body, but their
        // restricted names have different creators — swapping the copies
        // swaps the creators back into place, so the key is unchanged.
        assert_eq!(c.canonical_key(), swapped.canonical_key());
    }

    #[test]
    fn quotient_key_collapses_permuted_evolutions() {
        // Two copies of a session; run the communication of copy 1 in one
        // world and of copy 2 in the other.
        let src = "!((^m) c<m> | c(x).d<x>) | d(y)";
        let mut a = cfg(src);
        unfold_n(&mut a, "0", 2);
        let mut b = a.clone();
        // Copy roots: 00 and 010; inside each copy, sender at ·0, receiver at ·1.
        a.fire(&Action::Comm {
            out_path: p("000"),
            in_path: p("001"),
        })
        .unwrap();
        b.fire(&Action::Comm {
            out_path: p("0100"),
            in_path: p("0101"),
        })
        .unwrap();
        assert_ne!(
            a.canonical_key(),
            b.canonical_key(),
            "raw keys see the copy positions"
        );
        let qkey = |c: &Config| {
            let groups = session_groups(c, &[]);
            let perms = candidate_perms(c, &groups, MAX_CANDIDATES).expect("under cap");
            perms
                .iter()
                .map(|perm| apply_perm(c, perm).canonical_key())
                .min()
                .expect("non-empty")
        };
        assert_eq!(qkey(&a), qkey(&b), "quotient keys collapse the orbit");
        // And the quotient agrees with the brute-force orbit minimum.
        let brute = |c: &Config| {
            let groups = session_groups(c, &[]);
            let perms = all_perms(&groups, MAX_CANDIDATES).expect("under cap");
            perms
                .iter()
                .map(|perm| apply_perm(c, perm).canonical_key())
                .min()
                .expect("non-empty")
        };
        assert_eq!(qkey(&a), brute(&a));
        assert_eq!(qkey(&b), brute(&b));
    }

    #[test]
    fn apply_perm_rewrites_table_creators_and_stamps() {
        let src = "!((^m) c<m> | c(x).d<x>) | d(y)";
        let mut c = cfg(src);
        unfold_n(&mut c, "0", 2);
        c.fire(&Action::Comm {
            out_path: p("000"),
            in_path: p("001"),
        })
        .unwrap();
        let swap = PathPerm::from_pairs([(p("00"), p("010")), (p("010"), p("00"))]);
        let sw = apply_perm(&c, &swap);
        // Each name's creator moves with its copy: the m created in copy 1
        // (creator 000) now reads as created in copy 2 (creator 0100) and
        // vice versa, while the identities stay put.
        let creators = |c: &Config| -> Vec<(usize, String)> {
            c.names()
                .iter()
                .filter_map(|(id, e)| e.creator.as_ref().map(|p| (id.index(), p.to_bits())))
                .collect()
        };
        let before = creators(&c);
        let after = creators(&sw);
        assert_eq!(before.len(), after.len());
        for ((id_b, cr_b), (id_a, cr_a)) in before.iter().zip(after.iter()) {
            assert_eq!(id_b, id_a);
            assert_eq!(&swap.apply(&cr_b.parse().expect("path")).to_bits(), cr_a);
        }
        assert_ne!(before, after, "the swap moved at least one creator");
    }

    #[test]
    fn erased_pseudo_quotient_conflates_inequivalent_states() {
        // Three copies, each creating two nonces and receiving two.  In
        // world A copy i receives both nonces of its predecessor; in world
        // B it receives its predecessor's first and its successor's
        // second.  The correlation pattern (c,c) vs (c,c⁻¹) is not fixed
        // by any simultaneous relabeling of the copies, so no copy
        // permutation equates the worlds — but erasing the copies and
        // keeping only the signature multiset cannot see the difference.
        let src = "!((^m)(^n)(c<m>.c<n> | c(x).c(y).d<x>.d<y>)) | d(z)";
        let mut a = cfg(src);
        unfold_n(&mut a, "0", 3);
        let mut b = a.clone();
        let comm = |c: &mut Config, out: &str, inp: &str| {
            c.fire(&Action::Comm {
                out_path: p(out),
                in_path: p(inp),
            })
            .expect("fires");
        };
        // Senders at root·0 (000, 0100, 01100), receivers at root·1.
        // A: both sends of copy i go to copy i+1 (cyclically).
        comm(&mut a, "000", "0101");
        comm(&mut a, "000", "0101");
        comm(&mut a, "0100", "01101");
        comm(&mut a, "0100", "01101");
        comm(&mut a, "01100", "001");
        comm(&mut a, "01100", "001");
        // B: first sends go to copy i+1, second sends to copy i-1.
        comm(&mut b, "000", "0101");
        comm(&mut b, "0100", "01101");
        comm(&mut b, "01100", "001");
        comm(&mut b, "000", "01101");
        comm(&mut b, "0100", "001");
        comm(&mut b, "01100", "0101");
        assert_ne!(a.canonical_key(), b.canonical_key());
        let ga = session_groups(&a, &[]);
        let gb = session_groups(&b, &[]);
        assert_eq!(ga, gb);
        assert_eq!(ga[0].roots.len(), 3);
        // Genuinely inequivalent: no copy permutation maps A onto B.
        for perm in all_perms(&ga, MAX_CANDIDATES).expect("small orbit") {
            assert_ne!(
                apply_perm(&a, &perm).canonical_key(),
                b.canonical_key(),
                "A and B must not be in the same orbit ({perm:?})"
            );
        }
        // ... yet the erasing pseudo-quotient conflates them.
        assert_eq!(group_signatures(&a, &ga), group_signatures(&b, &gb));
        let (ea, pa) = erase_copies(&a, &ga);
        let (eb, pb) = erase_copies(&b, &gb);
        assert_eq!(pa, pb);
        assert!(!pa.is_identity());
        assert_eq!(
            ea.canonical_key(),
            eb.canonical_key(),
            "erasure forgets the copy correlation"
        );
    }

    #[test]
    fn candidate_count_caps_out() {
        let mut c = cfg("!c<m> | c(x)");
        unfold_n(&mut c, "0", 6);
        let groups = session_groups(&c, &[]);
        assert_eq!(groups[0].roots.len(), 6);
        // 6! = 720 identical copies overflow a cap of 256.
        assert!(candidate_perms(&c, &groups, 256).is_none());
        assert!(all_perms(&groups, 256).is_none());
        assert!(candidate_perms(&c, &groups, 1000).is_some());
    }
}
