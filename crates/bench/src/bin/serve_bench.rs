//! Measure warm-vs-cold request latency against an in-process
//! `spi serve` daemon — plus warm throughput and cold tail latency
//! against coordinator-fronted fleets of 1/2/4 workers — and print the
//! complete `BENCH_serve.json` document to stdout.
//!
//! Run with `cargo run --release -p spi-bench --bin serve_bench -- <date> > BENCH_serve.json`
//! from the repository root (the spec paths are relative).
//!
//! Cold samples set `no_cache: true`, so every one pays for a full
//! dual exploration of Pm3 against Pm; warm samples are served from
//! the content-addressed result cache.  The two kinds are interleaved
//! (cold, warm, cold, warm, …) so neither benefits from running last,
//! and the reported figures are medians.
//!
//! The fleet section measures what sharding actually buys on this
//! box: aggregate cache *capacity*, not CPU parallelism.  Every
//! worker's cache budget holds only half of an 8-question working set,
//! and questions are revisited in a seeded pseudo-random order — one
//! node keeps evicting and re-exploring, while four nodes hold the
//! whole set across their consistent-hash shards and answer from
//! cache.  Warm throughput must scale at least 1.5x from 1 to 4
//! workers.

use std::sync::Arc;
use std::time::Instant;

use spi_auth::server::{
    coordinate, serve, Client, CoordinatorOptions, ServerHandle, ServerOptions, VerifierEngine,
};
use spi_auth::verify::jsonlite::Json;

const COLD_RUNS: usize = 5;
const WARM_RUNS: usize = 20;

/// Distinct questions in the fleet working set (pm2 vs pm at varying
/// `visible` bounds: distinct digests, comparable exploration cost).
const FLEET_SET: usize = 8;
/// Cold tail samples per fleet size.
const FLEET_COLD_RUNS: usize = 10;
/// Pseudo-random warm requests per fleet size.
const FLEET_WARM_RUNS: usize = 64;

fn read_spec(path: &str) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("run from the repository root: {path}: {e}"))
}

fn request_line(no_cache: bool) -> String {
    let concrete = read_spec("examples/protocols/pm3.spi");
    let spec = read_spec("examples/protocols/pm.spi");
    Json::Obj(vec![
        ("op".to_string(), Json::str("verify")),
        ("concrete".into(), Json::str(concrete)),
        ("abstract".into(), Json::str(spec)),
        ("sessions".into(), Json::count(2)),
        ("no_cache".into(), Json::Bool(no_cache)),
    ])
    .render_compact()
}

fn sample_ms(client: &mut Client, line: &str) -> (f64, bool) {
    let start = Instant::now();
    let response = client.roundtrip(line).expect("roundtrip succeeds");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let parsed = Json::parse(&response).expect("response is JSON");
    assert_eq!(
        parsed.get("status").and_then(Json::as_str),
        Some("ok"),
        "server answered: {response}"
    );
    let cached = parsed.get("cached").and_then(Json::as_bool) == Some(true);
    (ms, cached)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn percentile(samples: &mut [f64], pct: usize) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = (samples.len() * pct).div_ceil(100).max(1);
    samples[rank.min(samples.len()) - 1]
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fleet working set: distinct digests (the `visible` bound is
/// part of the request canonicalization) with comparable cold cost.
fn fleet_questions() -> Vec<String> {
    let concrete = read_spec("examples/protocols/pm2.spi");
    let spec = read_spec("examples/protocols/pm.spi");
    (0..FLEET_SET)
        .map(|i| {
            Json::Obj(vec![
                ("op".to_string(), Json::str("verify")),
                ("concrete".into(), Json::str(concrete.clone())),
                ("abstract".into(), Json::str(spec.clone())),
                ("sessions".into(), Json::count(2)),
                ("visible".into(), Json::count(3 + i)),
            ])
            .render_compact()
        })
        .collect()
}

/// Connection-count tiers for the concurrency series.
const CONCURRENCY_TIERS: [usize; 4] = [1, 100, 1_000, 10_000];
const CONC_COLD_RUNS: usize = 10;
const CONC_WARM_RUNS: usize = 100;
/// Idle connections held in-process before spilling to helper
/// processes (the in-process client and server ends each cost an fd,
/// and RLIMIT_NOFILE on a stock box is ~20k — the 10 000-connection
/// tier must not eat the whole budget from inside one process).
const IDLE_IN_PROCESS_MAX: usize = 4_000;

struct ConcurrencyRecord {
    connections: usize,
    cold_p50_ms: f64,
    cold_p99_ms: f64,
    warm_p50_ms: f64,
    warm_p99_ms: f64,
}

/// The idle herd for one tier: `n` open-and-silent connections, the
/// first chunk held as in-process sockets, the rest parked in bash
/// helper children (`/dev/tcp`) so the bench process's fd budget
/// covers the server side of all ten thousand.
struct IdleHerd {
    local: Vec<std::net::TcpStream>,
    helpers: Vec<std::process::Child>,
}

impl IdleHerd {
    fn open(n: usize, addr: &str) -> IdleHerd {
        let in_process = n.min(IDLE_IN_PROCESS_MAX);
        let local: Vec<std::net::TcpStream> = (0..in_process)
            .map(|_| std::net::TcpStream::connect(addr).expect("idle connection opens"))
            .collect();
        let mut helpers = Vec::new();
        let mut remaining = n - in_process;
        let (ip, port) = addr.split_once(':').expect("host:port");
        while remaining > 0 {
            let chunk = remaining.min(IDLE_IN_PROCESS_MAX);
            remaining -= chunk;
            let script = format!(
                r#"for i in $(seq 1 {chunk}); do exec {{fd}}<>"/dev/tcp/{ip}/{port}" || exit 1; done; echo up; read -r _"#
            );
            let mut child = std::process::Command::new("bash")
                .args(["-c", &script])
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("bash helper spawns (the 10k tier needs /dev/tcp)");
            // The helper prints one line once every connection is up.
            let mut line = String::new();
            use std::io::BufRead as _;
            std::io::BufReader::new(child.stdout.take().expect("helper stdout"))
                .read_line(&mut line)
                .expect("helper reports readiness");
            assert_eq!(line.trim(), "up", "helper opened its connections");
            helpers.push(child);
        }
        IdleHerd { local, helpers }
    }

    fn close(mut self) {
        self.local.clear();
        for mut h in self.helpers.drain(..) {
            drop(h.stdin.take()); // unblocks the trailing `read`
            let _ = h.wait();
        }
    }
}

/// One tier of the concurrency series: `n` connections total, `n - 1`
/// idle, one doing the talking.
fn concurrency_record(n: usize, cold_line: &str, warm_line: &str) -> ConcurrencyRecord {
    let handle = serve(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            snapshot: None,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();
    let herd = IdleHerd::open(n.saturating_sub(1), &addr);
    let mut client = Client::connect(&addr).expect("client connects");

    let (_, primed) = sample_ms(&mut client, warm_line);
    assert!(!primed, "the priming request must run the engine");
    let mut cold: Vec<f64> = (0..CONC_COLD_RUNS)
        .map(|_| sample_ms(&mut client, cold_line).0)
        .collect();
    let mut warm: Vec<f64> = (0..CONC_WARM_RUNS)
        .map(|_| {
            let (ms, cached) = sample_ms(&mut client, warm_line);
            assert!(cached, "warm samples must be cache hits");
            ms
        })
        .collect();

    herd.close();
    handle.join();
    ConcurrencyRecord {
        connections: n,
        cold_p50_ms: percentile(&mut cold, 50),
        cold_p99_ms: percentile(&mut cold, 99),
        warm_p50_ms: percentile(&mut warm, 50),
        warm_p99_ms: percentile(&mut warm, 99),
    }
}

struct FleetRecord {
    workers: usize,
    cold_p99_ms: f64,
    warm_reqs_per_sec: f64,
}

/// One fleet size: coordinator + `n` workers whose cache budgets hold
/// only half the working set each.
fn fleet_record(n: usize, questions: &[String], cache_bytes: usize) -> FleetRecord {
    let engine = || {
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        })
    };
    let workers: Vec<ServerHandle> = (0..n)
        .map(|_| {
            serve(
                engine(),
                ServerOptions {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    cache_bytes,
                    snapshot: None,
                    ..ServerOptions::default()
                },
            )
            .expect("worker starts")
        })
        .collect();
    let coordinator = coordinate(
        engine(),
        CoordinatorOptions {
            addr: "127.0.0.1:0".into(),
            heartbeat_ms: 100,
            fail_after_ms: 60_000,
            connect_timeout_ms: 1000,
            read_timeout_ms: 120_000,
            hedge_after_ms: 5_000,
            retry_rounds: 2,
            ..CoordinatorOptions::default()
        },
    )
    .expect("coordinator starts");
    let mut client = Client::connect(&coordinator.addr().to_string()).expect("client connects");
    for w in &workers {
        let join = format!(r#"{{"op":"join","addr":"{}"}}"#, w.addr());
        let (_, _) = sample_ms(&mut client, &join);
    }

    // Cold tail: full explorations through the fleet dispatch path.
    let cold_line = format!(
        "{}{}",
        &questions[0][..questions[0].len() - 1],
        r#","no_cache":true}"#
    );
    let mut cold: Vec<f64> = (0..FLEET_COLD_RUNS)
        .map(|_| sample_ms(&mut client, &cold_line).0)
        .collect();

    // Prime every question once, then measure warm throughput over a
    // seeded pseudo-random revisit order.
    for q in questions {
        let _ = sample_ms(&mut client, q);
    }
    let mut rng = 0x5eed_u64 ^ n as u64;
    let started = Instant::now();
    for _ in 0..FLEET_WARM_RUNS {
        let q = &questions[usize::try_from(splitmix(&mut rng)).unwrap_or(0) % questions.len()];
        let _ = sample_ms(&mut client, q);
    }
    let elapsed = started.elapsed().as_secs_f64();

    coordinator.join();
    for w in workers {
        w.join();
    }
    FleetRecord {
        workers: n,
        cold_p99_ms: percentile(&mut cold, 99),
        warm_reqs_per_sec: FLEET_WARM_RUNS as f64 / elapsed,
    }
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unknown".to_string());
    let handle = serve(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            snapshot: None,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&handle.addr().to_string()).expect("client connects");

    let cold_line = request_line(true);
    let warm_line = request_line(false);
    // Prime the cache so every warm sample is a hit.
    let (_, primed_cached) = sample_ms(&mut client, &warm_line);
    assert!(!primed_cached, "the priming request must run the engine");

    let mut cold = Vec::new();
    let mut warm = Vec::new();
    while cold.len() < COLD_RUNS || warm.len() < WARM_RUNS {
        if cold.len() < COLD_RUNS {
            cold.push(sample_ms(&mut client, &cold_line).0);
        }
        if warm.len() < WARM_RUNS {
            let (ms, cached) = sample_ms(&mut client, &warm_line);
            assert!(cached, "warm samples must be cache hits");
            warm.push(ms);
        }
    }
    let cold_ms = median(&mut cold);
    let warm_ms = median(&mut warm);
    let speedup = cold_ms / warm_ms;
    handle.join();

    // The concurrency series: the same question asked while 0/99/999/
    // 9999 other connections sit idle on the epoll front end.  A
    // cheaper instance (pm2 at 2 sessions) keeps the cold tier
    // affordable at every connection count.
    let concrete = read_spec("examples/protocols/pm2.spi");
    let spec = read_spec("examples/protocols/pm.spi");
    let conc_warm_line = Json::Obj(vec![
        ("op".to_string(), Json::str("verify")),
        ("concrete".into(), Json::str(concrete)),
        ("abstract".into(), Json::str(spec)),
        ("sessions".into(), Json::count(2)),
    ])
    .render_compact();
    let conc_cold_line = format!(
        "{}{}",
        &conc_warm_line[..conc_warm_line.len() - 1],
        r#","no_cache":true}"#
    );
    let series: Vec<ConcurrencyRecord> = CONCURRENCY_TIERS
        .iter()
        .map(|&n| concurrency_record(n, &conc_cold_line, &conc_warm_line))
        .collect();
    let series_rows: Vec<String> = series
        .iter()
        .map(|r| {
            format!(
                r#"    {{
      "connections": {},
      "cold_p50_ms": {:.3},
      "cold_p99_ms": {:.3},
      "warm_p50_ms": {:.3},
      "warm_p99_ms": {:.3}
    }}"#,
                r.connections, r.cold_p50_ms, r.cold_p99_ms, r.warm_p50_ms, r.warm_p99_ms
            )
        })
        .collect();

    // Size each fleet node's cache to half the working set: measure a
    // representative entry (digest key + op + body bytes) and budget
    // for FLEET_SET/2 of them, so one node must evict while four hold
    // the whole set across shards.
    let questions = fleet_questions();
    let probe = serve(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            snapshot: None,
            ..ServerOptions::default()
        },
    )
    .expect("probe server starts");
    {
        let mut probe_client =
            Client::connect(&probe.addr().to_string()).expect("probe client connects");
        let _ = sample_ms(&mut probe_client, &questions[0]);
    }
    let entry_bytes: usize = probe
        .cache_entries()
        .iter()
        .map(|(k, op, body)| k.len() + op.len() + body.len())
        .sum();
    probe.join();
    assert!(entry_bytes > 0, "the probe must have cached one entry");
    let cache_bytes = entry_bytes * FLEET_SET / 2 + entry_bytes / 2;

    let fleet: Vec<FleetRecord> = [1usize, 2, 4]
        .iter()
        .map(|&n| fleet_record(n, &questions, cache_bytes))
        .collect();
    let scaling = fleet[2].warm_reqs_per_sec / fleet[0].warm_reqs_per_sec;

    let fleet_records: Vec<String> = fleet
        .iter()
        .map(|r| {
            format!(
                r#"    {{
      "workers": {},
      "cold_p99_ms": {:.3},
      "warm_requests": {FLEET_WARM_RUNS},
      "warm_reqs_per_sec": {:.1}
    }}"#,
                r.workers, r.cold_p99_ms, r.warm_reqs_per_sec
            )
        })
        .collect();

    println!(
        r#"{{
  "benchmark": "serve_latency",
  "date": "{date}",
  "command": "cargo run --release -p spi-bench --bin serve_bench -- <date> > BENCH_serve.json",
  "methodology": "An in-process spi serve daemon (2 request workers, single-threaded explorations, default cache budget) answers verify requests for examples/protocols/pm3.spi against examples/protocols/pm.spi at 2 sessions over loopback TCP. Cold samples set no_cache=true so each pays for the full dual exploration plus trace-preorder comparison; warm samples are served from the content-addressed result cache. Samples are interleaved cold/warm after one priming fill, figures are medians, latency is measured client-side around one request/response line.",
  "records": [
    {{
      "instance": "pm3_vs_pm",
      "sessions": 2,
      "cold_runs": {COLD_RUNS},
      "warm_runs": {WARM_RUNS},
      "cold_median_ms": {cold_ms:.3},
      "warm_median_ms": {warm_ms:.3},
      "speedup": {speedup:.1}
    }}
  ],
  "concurrency_methodology": "One spi serve daemon (4 request workers, epoll reactor front end) answers pm2-vs-pm verify requests at 2 sessions while N-1 other connections sit open and silent (held as plain sockets; beyond 4000 they live in bash /dev/tcp helper children so one process's fd budget covers the server side of the 10000-connection tier). Per tier: one priming fill, then {CONC_COLD_RUNS} no_cache=true cold samples and {CONC_WARM_RUNS} cache-hit warm samples on a single talking connection; p50/p99 are client-side per-line round-trip times. Flat latency across tiers is the claim: idle connections are epoll registrations, not threads, so ten thousand of them must not tax the one doing the work.",
  "concurrency_records": [
{series_rows}
  ],
  "fleet_methodology": "A coordinator (spi fleet) fronts 1/2/4 spi serve workers over loopback; requests shard by content digest on a consistent-hash ring. The working set is {FLEET_SET} distinct pm2-vs-pm verify questions (visible bound 3..{FLEET_SET_END}) and every worker cache budget holds only half of it, so this single-core box measures aggregate cache capacity, not CPU parallelism: one node keeps evicting and re-exploring under a seeded pseudo-random revisit order, four nodes hold the whole set across shards. cold_p99_ms is the p99 of {FLEET_COLD_RUNS} no_cache=true requests through the dispatch path; warm_reqs_per_sec is {FLEET_WARM_RUNS} pseudo-random requests after one priming pass, timed end to end on one client connection. warm_scaling_1_to_4 must be >= 1.5.",
  "fleet_records": [
{fleet_rows}
  ],
  "warm_scaling_1_to_4": {scaling:.2}
}}"#,
        FLEET_SET_END = 3 + FLEET_SET,
        fleet_rows = fleet_records.join(",\n"),
        series_rows = series_rows.join(",\n"),
    );
    assert!(
        speedup >= 10.0,
        "expected >=10x warm-vs-cold, measured {speedup:.1}x"
    );
    assert!(
        scaling >= 1.5,
        "expected >=1.5x warm throughput from 1 to 4 workers, measured {scaling:.2}x"
    );
}
