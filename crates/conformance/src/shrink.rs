//! Greedy 1-minimal shrinking of failing cases.
//!
//! When an oracle fails, the offending process is ddmin-shrunk: every
//! structural reduction (replace a subprocess with `0`, drop a prefix,
//! keep one side of a parallel composition, simplify a payload) is tried
//! in turn, the first one that still fails is kept, and the loop repeats
//! until no single reduction reproduces the failure — so the reproducer
//! written to the corpus is 1-minimal.  Fault schedules shrink alongside
//! the process (drop a clause, lower a repetition bound).

use spi_semantics::FaultSpec;
use spi_syntax::{Process, Term};

use crate::oracle::{check_process, Oracle, OracleEnv, Verdict};

/// The result of shrinking one failure.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The 1-minimal failing process.
    pub process: Process,
    /// The 1-minimal fault schedule, if the failure needs one.
    pub faults: Option<FaultSpec>,
    /// The oracle message on the minimal case.
    pub message: String,
    /// How many accepted reduction steps the loop took.
    pub steps: usize,
}

/// Shrinks `(process, faults)` while `oracle` keeps failing.
///
/// The concrete system is pinned to the spec during shrinking: the
/// differential properties under test are engine-vs-engine, so a
/// self-conformant case fails them iff the engines disagree on it.
#[must_use]
pub fn shrink_failure(
    oracle: &dyn Oracle,
    process: &Process,
    faults: Option<&FaultSpec>,
    channels: &[String],
    env: &OracleEnv,
) -> Shrunk {
    let mut cur = process.clone();
    let mut cur_faults = faults.cloned();
    let mut message = fail_message(oracle, &cur, cur_faults.as_ref(), channels, env)
        .unwrap_or_else(|| "original failure did not reproduce under spec=concrete".to_string());
    let mut steps = 0;
    'outer: loop {
        for cand in process_candidates(&cur) {
            if !cand.free_vars().is_empty() {
                continue;
            }
            if let Some(msg) = fail_message(oracle, &cand, cur_faults.as_ref(), channels, env) {
                cur = cand;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        if let Some(spec) = &cur_faults {
            for cand in fault_candidates(spec) {
                if let Some(msg) = fail_message(oracle, &cur, cand.as_ref(), channels, env) {
                    cur_faults = cand;
                    message = msg;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    Shrunk {
        process: cur,
        faults: cur_faults,
        message,
        steps,
    }
}

fn fail_message(
    oracle: &dyn Oracle,
    p: &Process,
    faults: Option<&FaultSpec>,
    channels: &[String],
    env: &OracleEnv,
) -> Option<String> {
    match check_process(oracle, p, faults.cloned(), channels, env) {
        Verdict::Fail(msg) => Some(msg),
        Verdict::Pass | Verdict::Skip(_) => None,
    }
}

/// Every process obtained from `p` by one structural reduction, smallest
/// jumps first (drop-everything candidates come before local ones so the
/// greedy loop takes big steps early).
fn process_candidates(p: &Process) -> Vec<Process> {
    let mut out = Vec::new();
    reduce_at(p, &mut |q| out.push(q));
    out
}

/// Applies every one-hole reduction of `p`, feeding each result to `emit`.
fn reduce_at(p: &Process, emit: &mut dyn FnMut(Process)) {
    if !p.is_nil() {
        emit(Process::Nil);
    }
    match p {
        Process::Nil => {}
        Process::Output(ch, payload, cont) => {
            emit((**cont).clone());
            if !cont.is_nil() {
                emit(Process::Output(ch.clone(), payload.clone(), Box::new(Process::Nil)));
            }
            for t in term_candidates(payload) {
                emit(Process::Output(ch.clone(), t, cont.clone()));
            }
            reduce_at(cont, &mut |q| {
                emit(Process::Output(ch.clone(), payload.clone(), Box::new(q)));
            });
        }
        Process::Input(ch, v, cont) => {
            // Dropping the prefix may free `v` in the continuation; the
            // caller filters open candidates.
            emit((**cont).clone());
            if !cont.is_nil() {
                emit(Process::Input(ch.clone(), v.clone(), Box::new(Process::Nil)));
            }
            reduce_at(cont, &mut |q| {
                emit(Process::Input(ch.clone(), v.clone(), Box::new(q)));
            });
        }
        Process::Restrict(n, body) => {
            emit((**body).clone());
            reduce_at(body, &mut |q| emit(Process::Restrict(n.clone(), Box::new(q))));
        }
        Process::Par(l, r) => {
            emit((**l).clone());
            emit((**r).clone());
            reduce_at(l, &mut |q| emit(Process::par(q, (**r).clone())));
            reduce_at(r, &mut |q| emit(Process::par((**l).clone(), q)));
        }
        Process::Match(m, n, cont) => {
            emit((**cont).clone());
            reduce_at(cont, &mut |q| {
                emit(Process::Match(m.clone(), n.clone(), Box::new(q)));
            });
        }
        Process::AddrMatch(m, side, cont) => {
            emit((**cont).clone());
            reduce_at(cont, &mut |q| {
                emit(Process::AddrMatch(m.clone(), side.clone(), Box::new(q)));
            });
        }
        Process::Bang(body) => {
            emit((**body).clone());
            reduce_at(body, &mut |q| emit(Process::bang(q)));
        }
        Process::Split { pair, fst, snd, body } => {
            emit((**body).clone());
            reduce_at(body, &mut |q| {
                emit(Process::Split {
                    pair: pair.clone(),
                    fst: fst.clone(),
                    snd: snd.clone(),
                    body: Box::new(q),
                });
            });
        }
        Process::Case { scrutinee, binders, key, body } => {
            emit((**body).clone());
            reduce_at(body, &mut |q| {
                emit(Process::Case {
                    scrutinee: scrutinee.clone(),
                    binders: binders.clone(),
                    key: key.clone(),
                    body: Box::new(q),
                });
            });
        }
    }
}

/// Strictly smaller replacement terms for a payload: its immediate
/// subterms, then a bare name.
fn term_candidates(t: &Term) -> Vec<Term> {
    let mut out = Vec::new();
    match t {
        Term::Name(_) | Term::Var(_) => {}
        Term::Pair(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Term::Enc { body, key } => {
            out.extend(body.iter().cloned());
            out.push((**key).clone());
        }
        Term::Located { inner, .. } => out.push((**inner).clone()),
    }
    if !matches!(t, Term::Name(_)) {
        out.push(Term::name("m"));
    }
    out
}

/// Strictly smaller fault schedules: none at all, one clause dropped, a
/// repetition bound lowered.
fn fault_candidates(spec: &FaultSpec) -> Vec<Option<FaultSpec>> {
    let mut out = vec![None];
    let clauses = &spec.clauses;
    for i in 0..clauses.len() {
        if clauses.len() > 1 {
            let mut rest = clauses.clone();
            rest.remove(i);
            out.push(Some(FaultSpec::new(rest)));
        }
        if clauses[i].max > 1 {
            let mut lowered = clauses.clone();
            lowered[i].max -= 1;
            out.push(Some(FaultSpec::new(lowered)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TestCase;
    use crate::oracle::Verdict;
    use spi_syntax::parse;

    /// Fails whenever the process still contains an output on `c`.
    struct HatesC;

    impl Oracle for HatesC {
        fn name(&self) -> &'static str {
            "hates-c"
        }

        fn check(&self, case: &TestCase, _env: &OracleEnv) -> Verdict {
            fn has_c(p: &Process) -> bool {
                match p {
                    Process::Output(ch, _, cont) => {
                        ch.subject == Term::name("c") || has_c(cont)
                    }
                    Process::Input(_, _, cont)
                    | Process::Restrict(_, cont)
                    | Process::Match(_, _, cont)
                    | Process::AddrMatch(_, _, cont)
                    | Process::Bang(cont)
                    | Process::Split { body: cont, .. }
                    | Process::Case { body: cont, .. } => has_c(cont),
                    Process::Par(l, r) => has_c(l) || has_c(r),
                    Process::Nil => false,
                }
            }
            if has_c(&case.spec) {
                Verdict::Fail("contains an output on c".to_string())
            } else {
                Verdict::Pass
            }
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_prefix() {
        let p = parse("(^s)(d(x1).c<{m, n}k>.d<x1> | d<a>.e(x2).0)").expect("parses");
        let shrunk = shrink_failure(&HatesC, &p, None, &[], &OracleEnv::default());
        assert!(shrunk.steps > 0, "expected at least one reduction");
        assert_eq!(
            shrunk.process.to_string(),
            "c<m>",
            "1-minimal form is a single bare output on c"
        );
    }

    #[test]
    fn candidates_never_grow_and_never_repeat_the_input() {
        // Payload replacements keep the constructor count, so the bound
        // is ≤; identity candidates would loop the greedy search forever.
        let p = parse("(^s)(c<{m}k>.0 | c(x).[x = m]d<x>)").expect("parses");
        for cand in process_candidates(&p) {
            assert!(cand.size() <= p.size(), "candidate {cand} grew");
            assert_ne!(cand, p, "candidate repeats the input");
        }
    }
}
