//! Singleflight: at most one in-flight execution per cache key.
//!
//! When several workers pick up requests with the same digest, one of
//! them becomes the *leader* and runs the exploration; the others park
//! on the condvar and, once the leader finishes (filling the cache),
//! re-check the cache and answer from it.  The worst case — the leader
//! fails without caching — is handled by the wait/retry loop in the
//! worker: a parked follower wakes, finds the key free, and becomes
//! the next leader.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

/// The in-flight key registry.
#[derive(Debug, Default)]
pub struct Singleflight {
    inner: Mutex<HashSet<String>>,
    done: Condvar,
}

impl Singleflight {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Singleflight {
        Singleflight::default()
    }

    /// Tries to become the leader for `key`.  Returns `true` on
    /// success; the caller then *must* call [`Singleflight::finish`].
    pub fn begin(&self, key: &str) -> bool {
        let mut set = self.inner.lock().expect("flight lock");
        if set.contains(key) {
            false
        } else {
            set.insert(key.to_string());
            true
        }
    }

    /// Blocks while `key` is in flight.  Returns immediately if it is
    /// not; after returning, the caller re-checks the cache and may try
    /// [`Singleflight::begin`] again.
    pub fn wait(&self, key: &str) {
        let mut set = self.inner.lock().expect("flight lock");
        while set.contains(key) {
            set = self.done.wait(set).expect("flight lock");
        }
    }

    /// Releases leadership of `key` and wakes every waiter.
    pub fn finish(&self, key: &str) {
        let mut set = self.inner.lock().expect("flight lock");
        set.remove(key);
        self.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn one_leader_per_key() {
        let f = Singleflight::new();
        assert!(f.begin("k"));
        assert!(!f.begin("k"));
        assert!(f.begin("other"));
        f.finish("k");
        assert!(f.begin("k"));
    }

    #[test]
    fn waiters_block_until_finish() {
        let f = Arc::new(Singleflight::new());
        let woke = Arc::new(AtomicUsize::new(0));
        assert!(f.begin("k"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = Arc::clone(&f);
                let woke = Arc::clone(&woke);
                std::thread::spawn(move || {
                    f.wait("k");
                    woke.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(woke.load(Ordering::SeqCst), 0, "waiters stay parked");
        f.finish("k");
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 4);
    }
}
