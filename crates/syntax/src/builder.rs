//! Ergonomic constructors for building processes in Rust.
//!
//! The parser is the most readable way to write a fixed protocol, but
//! generated processes — the protocol compiler, the intruder synthesizer,
//! benchmark workload generators — are easier to build with functions.
//! This module provides short free functions mirroring the calculus:
//!
//! ```
//! use spi_syntax::builder::*;
//!
//! // A2 of the paper: (νM) c̄⟨{M}K_AB⟩.
//! let a2 = new("m", out("c", enc([n("m")], n("kAB")), nil()));
//! assert_eq!(a2.to_string(), "(^m)c<{m}kAB>");
//! ```

use std::fmt;

use spi_addr::RelAddr;

use crate::{Channel, LocVar, Name, Process, Term, Var};

/// The error of [`tuple`]: the calculus has no unit term, so a tuple of
/// no components cannot be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTuple;

impl fmt::Display for EmptyTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tuple of no terms: the calculus has no unit term")
    }
}

impl std::error::Error for EmptyTuple {}

/// A name term.
#[must_use]
pub fn n(name: impl Into<Name>) -> Term {
    Term::Name(name.into())
}

/// A variable term.
#[must_use]
pub fn v(var: impl Into<Var>) -> Term {
    Term::Var(var.into())
}

/// A pair `(a, b)`.
#[must_use]
pub fn pair(a: Term, b: Term) -> Term {
    Term::pair(a, b)
}

/// A right-nested tuple `(a, b, …)`.
///
/// # Errors
///
/// Returns [`EmptyTuple`] when `items` is empty: the calculus has no unit
/// term.
pub fn tuple<I: IntoIterator<Item = Term>>(items: I) -> Result<Term, EmptyTuple> {
    let mut items: Vec<Term> = items.into_iter().collect();
    let Some(mut acc) = items.pop() else {
        return Err(EmptyTuple);
    };
    while let Some(t) = items.pop() {
        acc = Term::pair(t, acc);
    }
    Ok(acc)
}

/// An encryption `{body…}key`.
#[must_use]
pub fn enc<I: IntoIterator<Item = Term>>(body: I, key: Term) -> Term {
    Term::enc(body.into_iter().collect(), key)
}

/// A located term `l M`.
#[must_use]
pub fn located(addr: RelAddr, inner: Term) -> Term {
    Term::located(addr, inner)
}

/// A plain channel named by a free name.
#[must_use]
pub fn ch(name: impl Into<Name>) -> Channel {
    Channel::plain(Term::Name(name.into()))
}

/// A channel localized at a location variable: `c_λ`.
#[must_use]
pub fn ch_loc(name: impl Into<Name>, lam: impl Into<LocVar>) -> Channel {
    Channel::loc(Term::Name(name.into()), lam)
}

/// A channel localized at a fixed relative address: `c_l`.
#[must_use]
pub fn ch_at(name: impl Into<Name>, addr: RelAddr) -> Channel {
    Channel::at(Term::Name(name.into()), addr)
}

/// The inert process `0`.
#[must_use]
pub fn nil() -> Process {
    Process::Nil
}

/// An output `ch⟨payload⟩.cont`.  The channel may be given as a
/// [`Channel`], a [`Term`] or anything else convertible.
#[must_use]
pub fn out(chan: impl IntoChannel, payload: Term, cont: Process) -> Process {
    Process::Output(chan.into_channel(), payload, Box::new(cont))
}

/// An input `ch(x).cont`.
#[must_use]
pub fn inp(chan: impl IntoChannel, x: impl Into<Var>, cont: Process) -> Process {
    Process::Input(chan.into_channel(), x.into(), Box::new(cont))
}

/// A restriction `(νm)body`.
#[must_use]
pub fn new(name: impl Into<Name>, body: Process) -> Process {
    Process::restrict(name, body)
}

/// A parallel composition `l | r`.
#[must_use]
pub fn par(l: Process, r: Process) -> Process {
    Process::par(l, r)
}

/// A left-associated parallel composition of several processes.
///
/// The composition of no processes is the inert `0` — the unit of `|`.
#[must_use]
pub fn par_all<I: IntoIterator<Item = Process>>(items: I) -> Process {
    let mut it = items.into_iter();
    match it.next() {
        Some(first) => it.fold(first, Process::par),
        None => Process::Nil,
    }
}

/// A matching `[a = b]cont`.
#[must_use]
pub fn mat(a: Term, b: Term, cont: Process) -> Process {
    Process::matching(a, b, cont)
}

/// An address matching `[a ≗ b]cont` against another term's tag.
#[must_use]
pub fn addr_mat(a: Term, b: Term, cont: Process) -> Process {
    Process::addr_match(a, b, cont)
}

/// An address matching `[a ≗ l]cont` against a literal address.
#[must_use]
pub fn addr_mat_lit(a: Term, l: RelAddr, cont: Process) -> Process {
    Process::addr_match_lit(a, l, cont)
}

/// A replication `!body`.
#[must_use]
pub fn bang(body: Process) -> Process {
    Process::bang(body)
}

/// A decryption `case scrutinee of {binders…}key in body`.
#[must_use]
pub fn case<I>(scrutinee: Term, binders: I, key: Term, body: Process) -> Process
where
    I: IntoIterator,
    I::Item: Into<Var>,
{
    Process::case(scrutinee, binders, key, body)
}

/// Things usable as the channel of [`out`] and [`inp`].
pub trait IntoChannel {
    /// Converts into a [`Channel`].
    fn into_channel(self) -> Channel;
}

impl IntoChannel for Channel {
    fn into_channel(self) -> Channel {
        self
    }
}

impl IntoChannel for Term {
    fn into_channel(self) -> Channel {
        Channel::plain(self)
    }
}

impl IntoChannel for &str {
    fn into_channel(self) -> Channel {
        ch(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn builders_match_parser() {
        let built = new("m", out("c", enc([n("m")], n("kAB")), nil()));
        assert_eq!(built, parse("(^m) c<{m}kAB>").unwrap());

        let built = inp(
            "c",
            "z",
            case(v("z"), ["w"], n("kAB"), out("observe", v("w"), nil())),
        );
        assert_eq!(built, parse("c(z).case z of {w}kAB in observe<w>").unwrap());
    }

    #[test]
    fn par_all_left_associates() {
        let built = par_all([nil(), nil(), nil()]);
        assert_eq!(built, parse("0 | 0 | 0").unwrap());
    }

    #[test]
    fn tuple_right_nests() {
        assert_eq!(
            tuple([n("a"), n("b"), n("c")]),
            Ok(pair(n("a"), pair(n("b"), n("c"))))
        );
        assert_eq!(tuple([n("a")]), Ok(n("a")));
    }

    #[test]
    fn localized_channel_builders() {
        let built = inp(
            ch_loc("c", "lam"),
            "x",
            out(ch_loc("c", "lam"), v("x"), nil()),
        );
        assert_eq!(built, parse("c@lam(x).c@lam<x>").unwrap());
        let addr: RelAddr = "01.110".parse().unwrap();
        let built = out(ch_at("c", addr), n("m"), nil());
        assert_eq!(built, parse("c@(01.110)<m>").unwrap());
    }

    #[test]
    fn empty_tuple_is_a_typed_error() {
        assert_eq!(tuple([]), Err(EmptyTuple));
        assert_eq!(par_all([]), Process::Nil);
    }
}
