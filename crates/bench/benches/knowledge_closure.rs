//! S2 — Dolev–Yao knowledge scaling: analysis-closure and derivability
//! cost versus the number and depth of learnt messages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spi_bench::{random_messages, rng};
use spi_semantics::NameTable;
use spi_verify::Knowledge;

fn bench_learn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_learn");
    for count in [8usize, 32, 128] {
        let mut r = rng(11);
        let mut names = NameTable::new();
        let msgs = random_messages(&mut r, &mut names, 6, count, 3);
        group.bench_with_input(BenchmarkId::from_parameter(count), &msgs, |b, msgs| {
            b.iter(|| {
                let mut kn = Knowledge::new();
                for m in msgs {
                    kn.learn(m.clone());
                }
                kn.len()
            });
        });
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_depth");
    for depth in [2usize, 4, 6] {
        let mut r = rng(13);
        let mut names = NameTable::new();
        let msgs = random_messages(&mut r, &mut names, 6, 32, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &msgs, |b, msgs| {
            b.iter(|| {
                let mut kn = Knowledge::new();
                for m in msgs {
                    kn.learn(m.clone());
                }
                kn.len()
            });
        });
    }
    group.finish();
}

fn bench_derive(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_derive");
    for count in [8usize, 32, 128] {
        let mut r = rng(17);
        let mut names = NameTable::new();
        let msgs = random_messages(&mut r, &mut names, 6, count, 3);
        let mut kn = Knowledge::new();
        for m in &msgs {
            kn.learn(m.clone());
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(count),
            &(kn, msgs),
            |b, (kn, msgs)| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for m in msgs {
                        if kn.can_derive(m) {
                            hits += 1;
                        }
                    }
                    hits
                });
            },
        );
    }
    group.finish();
}

criterion_group!(knowledge, bench_learn, bench_depth, bench_derive);
criterion_main!(knowledge);
