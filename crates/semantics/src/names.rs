//! The machine's name table: identity and provenance of names.

use std::fmt;

use spi_addr::Path;
use spi_syntax::Name;

/// The identity of a name at run time.
///
/// Two machine names are the same name if and only if their `NameId`s are
/// equal; the display base (`m`, `kAB`, …) is kept in the
/// [`NameTable`] for rendering only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub(crate) u32);

impl NameId {
    /// The raw index into the name table.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What the machine knows about one name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameEntry {
    /// The source spelling, for display.
    pub base: Name,
    /// `true` when the name was created by executing a restriction `(νm)`;
    /// `false` for the free names of the loaded system.
    pub restricted: bool,
    /// The tree position of the sequential process that executed the
    /// restriction — the *creator* the message-authentication primitive
    /// tracks.  `None` for free names, which belong to the environment.
    pub creator: Option<Path>,
}

/// The table of all names a configuration has ever created.
///
/// Free names are interned when a process is loaded; restricted names are
/// allocated each time a `(νm)` prefix executes, so two copies of a
/// replicated `(νm)P` hold *different* names — exactly the freshness the
/// paper's Proposition 3 relies on.
///
/// # Example
///
/// ```
/// use spi_semantics::NameTable;
/// use spi_addr::Path;
/// use spi_syntax::Name;
///
/// let mut names = NameTable::new();
/// let c = names.intern_free(&Name::new("c"));
/// assert_eq!(names.intern_free(&Name::new("c")), c); // stable identity
/// let m = names.alloc_restricted(&Name::new("m"), "00".parse::<Path>()?);
/// assert!(names.entry(m).restricted);
/// assert_eq!(names.entry(m).creator.as_ref().unwrap().to_bits(), "00");
/// # Ok::<(), spi_addr::AddrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameTable {
    entries: Vec<NameEntry>,
}

impl NameTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// The number of names in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no names have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not come from this table.
    #[must_use]
    pub fn entry(&self, id: NameId) -> &NameEntry {
        &self.entries[id.index()]
    }

    /// Interns a free name: returns the existing id when a free name with
    /// the same spelling exists, otherwise creates one.
    pub fn intern_free(&mut self, base: &Name) -> NameId {
        for (i, e) in self.entries.iter().enumerate() {
            if !e.restricted && &e.base == base {
                return NameId(i as u32);
            }
        }
        self.push(NameEntry {
            base: base.clone(),
            restricted: false,
            creator: None,
        })
    }

    /// Allocates a fresh restricted name created by the sequential process
    /// at `creator`.  Every call returns a new identity.
    pub fn alloc_restricted(&mut self, base: &Name, creator: Path) -> NameId {
        self.push(NameEntry {
            base: base.clone(),
            restricted: true,
            creator: Some(creator),
        })
    }

    /// The creator position of `id`, when it is a restricted name.
    #[must_use]
    pub fn creator(&self, id: NameId) -> Option<&Path> {
        self.entry(id).creator.as_ref()
    }

    /// Returns `true` when `id` is a free name of the loaded system.
    #[must_use]
    pub fn is_free(&self, id: NameId) -> bool {
        !self.entry(id).restricted
    }

    /// A human-readable rendering of `id`: the base spelling, with a
    /// disambiguating suffix for restricted names (`m'3`).
    #[must_use]
    pub fn display(&self, id: NameId) -> String {
        let e = self.entry(id);
        if e.restricted {
            format!("{}'{}", e.base, id.0)
        } else {
            e.base.to_string()
        }
    }

    /// A copy of the table with every creator position rewritten through
    /// `f`.  Identities, spellings, and restriction flags are untouched —
    /// this is the name-table half of a copy permutation (see the
    /// `symmetry` module).
    #[must_use]
    pub fn map_creators<F: FnMut(&Path) -> Path>(&self, mut f: F) -> NameTable {
        NameTable {
            entries: self
                .entries
                .iter()
                .map(|e| NameEntry {
                    base: e.base.clone(),
                    restricted: e.restricted,
                    creator: e.creator.as_ref().map(&mut f),
                })
                .collect(),
        }
    }

    /// Iterates over `(id, entry)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (NameId, &NameEntry)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (NameId(i as u32), e))
    }

    fn push(&mut self, e: NameEntry) -> NameId {
        let id = NameId(self.entries.len() as u32);
        self.entries.push(e);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = NameTable::new();
        let a = t.intern_free(&Name::new("a"));
        let b = t.intern_free(&Name::new("b"));
        assert_ne!(a, b);
        assert_eq!(t.intern_free(&Name::new("a")), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn restricted_names_are_always_fresh() {
        let mut t = NameTable::new();
        let m1 = t.alloc_restricted(&Name::new("m"), p("00"));
        let m2 = t.alloc_restricted(&Name::new("m"), p("00"));
        assert_ne!(m1, m2, "each restriction execution creates a new name");
        assert_eq!(t.entry(m1).base, t.entry(m2).base);
    }

    #[test]
    fn restricted_names_do_not_alias_free_ones() {
        let mut t = NameTable::new();
        let free = t.intern_free(&Name::new("m"));
        let bound = t.alloc_restricted(&Name::new("m"), p("0"));
        assert_ne!(free, bound);
        // Interning again still finds the free one.
        assert_eq!(t.intern_free(&Name::new("m")), free);
    }

    #[test]
    fn creator_is_recorded() {
        let mut t = NameTable::new();
        let m = t.alloc_restricted(&Name::new("m"), p("010"));
        assert_eq!(t.creator(m), Some(&p("010")));
        let c = t.intern_free(&Name::new("c"));
        assert_eq!(t.creator(c), None);
        assert!(t.is_free(c));
        assert!(!t.is_free(m));
    }

    #[test]
    fn display_disambiguates_restricted() {
        let mut t = NameTable::new();
        let c = t.intern_free(&Name::new("c"));
        let m = t.alloc_restricted(&Name::new("m"), p("0"));
        assert_eq!(t.display(c), "c");
        assert_eq!(t.display(m), format!("m'{}", m.index()));
    }

    #[test]
    fn iter_in_allocation_order() {
        let mut t = NameTable::new();
        t.intern_free(&Name::new("a"));
        t.alloc_restricted(&Name::new("m"), p("0"));
        let bases: Vec<String> = t.iter().map(|(_, e)| e.base.to_string()).collect();
        assert_eq!(bases, vec!["a", "m"]);
    }
}
