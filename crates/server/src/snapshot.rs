//! Cache snapshots: atomic persistence with an identity digest.
//!
//! A snapshot is a pretty-printed JSON file holding every cache entry
//! in least-recently-used order plus a digest over the entries.  The
//! writer goes through write-then-rename (the checkpoint discipline —
//! a crash mid-write never corrupts a loadable snapshot), and the
//! loader recomputes the digest and refuses a file whose contents do
//! not match its identity, so a truncated, hand-edited, or mixed-up
//! snapshot loads as a clean error and the server simply starts cold.

use std::path::Path;

use spi_verify::jsonlite::Json;

use crate::digest::digest;

/// Snapshot entries: `(key, op, body)` triples, LRU-first.
pub type Entries = Vec<(String, String, String)>;

/// The digest binding a snapshot to its exact contents.
#[must_use]
pub fn snapshot_identity(entries: &[(String, String, String)]) -> String {
    use std::fmt::Write as _;
    let mut desc = String::from("snapshot-v1");
    for (key, op, body) in entries {
        let _ = write!(desc, "|{key}|{op}|{body}");
    }
    digest(&desc)
}

/// Writes a snapshot atomically (write-then-rename).
///
/// # Errors
///
/// Returns a description of the I/O failure.
pub fn write_snapshot(path: &Path, entries: &[(String, String, String)]) -> Result<(), String> {
    let json = Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("identity".into(), Json::str(snapshot_identity(entries))),
        (
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|(key, op, body)| {
                        Json::Obj(vec![
                            ("key".into(), Json::str(key.clone())),
                            ("op".into(), Json::str(op.clone())),
                            ("body".into(), Json::str(body.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, json.render())
        .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot move snapshot into {}: {e}", path.display()))
}

/// Loads a snapshot, verifying its identity digest.
///
/// # Errors
///
/// Fails on I/O trouble, malformed JSON, an unsupported version, or an
/// identity mismatch (forged or corrupted contents).
pub fn load_snapshot(path: &Path) -> Result<Entries, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match json.get("version").and_then(Json::as_int) {
        Some(1) => {}
        other => return Err(format!("unsupported snapshot version {other:?}")),
    }
    let mut entries = Entries::new();
    for item in json.get("entries").and_then(Json::as_arr).unwrap_or_default() {
        let field = |k: &str| {
            item.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("a snapshot entry lacks its {k:?}"))
        };
        entries.push((field("key")?, field("op")?, field("body")?));
    }
    let stored = json.get("identity").and_then(Json::as_str).unwrap_or("");
    let computed = snapshot_identity(&entries);
    if stored != computed {
        return Err(format!(
            "snapshot identity mismatch (file says {stored}, contents hash to {computed}); \
             refusing to load"
        ));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spi-snap-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.json")
    }

    fn sample() -> Entries {
        vec![
            ("fnv:aaaa".into(), "verify".into(), r#"{"verdict":"securely-implements"}"#.into()),
            ("fnv:bbbb".into(), "campaign".into(), r#"{"enumerated":3}"#.into()),
        ]
    }

    #[test]
    fn round_trips_entries_in_order() {
        let path = tmp("roundtrip");
        write_snapshot(&path, &sample()).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), sample());
    }

    #[test]
    fn empty_snapshots_round_trip() {
        let path = tmp("empty");
        write_snapshot(&path, &[]).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), Entries::new());
    }

    #[test]
    fn forged_identity_is_refused() {
        let path = tmp("forged");
        write_snapshot(&path, &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Tamper with a body without updating the identity.
        let forged = text.replace("securely-implements", "attack");
        assert_ne!(text, forged, "the tamper target must exist");
        std::fs::write(&path, forged).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.contains("identity mismatch"), "{err}");
    }

    #[test]
    fn tampered_identity_field_is_refused() {
        let path = tmp("badid");
        write_snapshot(&path, &sample()).unwrap();
        let mut forged = std::fs::read_to_string(&path).unwrap();
        let id_start = forged.find("fnv:").unwrap();
        forged.replace_range(id_start + 4..id_start + 8, "dead");
        std::fs::write(&path, &forged).unwrap();
        assert!(load_snapshot(&path).is_err());
    }

    #[test]
    fn missing_and_malformed_files_error_cleanly() {
        assert!(load_snapshot(Path::new("/nonexistent/snap.json")).is_err());
        let path = tmp("malformed");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(load_snapshot(&path).is_err());
        std::fs::write(&path, r#"{"version":9,"identity":"x","entries":[]}"#).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }
}
