//! Compiling narrations to spi processes.
//!
//! Two backends realize the paper's methodology:
//!
//! * [`compile_concrete`] — the *cryptographic* implementation: each role
//!   becomes a sequential process that sends what it can build and
//!   destructures what it receives (decrypting under known keys, checking
//!   the atoms it already knows, binding the rest), with fresh atoms
//!   restricted at the role and shared atoms restricted around the whole
//!   system;
//! * [`compile_abstract`] — the *secure-by-construction* specification:
//!   following the paper's observation that the abstract protocol is
//!   unique, a two-party narration with an authentication claim compiles
//!   to the canonical localized transfer (`startup` + `c_λ`), single- or
//!   multi-session.
//!
//! A concrete compilation is *correct* when it securely implements the
//! abstract one — exactly the check `spi-auth` performs.

use std::collections::BTreeMap;

use spi_syntax::builder::{ch, nil, out, par_all};
use spi_syntax::{Name, Process, Term, Var};

use crate::narration::{Claim, Decl, Narration, Step};
use crate::{m_startup, startup, ProtocolError, StartupIndex};

/// Options shared by both backends.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// The channel every message travels on (the paper uses a single
    /// public channel).  This is the channel set `C` of Definition 4.
    pub chan: String,
    /// The continuation channel claims report on.
    pub observe: String,
    /// Replicate every role (multisession).
    pub replicate: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            chan: "c".into(),
            observe: "observe".into(),
            replicate: false,
        }
    }
}

/// Compiles the concrete (cryptographic) system.
///
/// Roles are composed left-associatively in declaration order, so the
/// role at index `i` sits at tree position `‖0…‖0‖1…` as usual; shared
/// atoms are restricted around the composition.
///
/// # Errors
///
/// Returns [`ProtocolError::Unbuildable`] when a role must send a term it
/// cannot construct or receive under a key it cannot derive, and
/// propagates narration validation errors.
///
/// # Example
///
/// ```
/// use spi_protocols::compile::{compile_concrete, CompileOptions};
/// use spi_protocols::narration::Narration;
///
/// let n = Narration::parse(
///     "protocol p\nroles A, B\nshare A B : kab\nfresh A : m\n\
///      1. A -> B : {m}kab\nclaim B authenticates m from A\n",
/// )?;
/// let p = compile_concrete(&n, &CompileOptions::default())?;
/// assert!(p.is_closed());
/// # Ok::<(), spi_protocols::ProtocolError>(())
/// ```
pub fn compile_concrete(n: &Narration, opts: &CompileOptions) -> Result<Process, ProtocolError> {
    let mut role_procs = Vec::with_capacity(n.roles.len());
    for role in &n.roles {
        role_procs.push(compile_role(n, role, opts)?);
    }
    let mut system = par_all(role_procs);
    if opts.replicate {
        // Replication is per role, so sessions interleave freely.
        system = match system_into_bangs(system) {
            Some(s) => s,
            None => unreachable!("par_all returns a parallel or a single role"),
        };
    }
    // Shared atoms are long-term secrets of the whole system.
    let shared: Vec<Name> = n
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Share { atom, .. } => Some(Name::new(atom.as_str())),
            _ => None,
        })
        .collect();
    Ok(Process::restrict_all(shared, system))
}

/// Wraps every component of a (left-associated) parallel in `!`.
fn system_into_bangs(p: Process) -> Option<Process> {
    match p {
        Process::Par(l, r) => {
            let l = system_into_bangs(*l)?;
            Some(Process::par(l, Process::bang(*r)))
        }
        other => Some(Process::bang(other)),
    }
}

/// Compiles the abstract specification: the canonical localized transfer
/// of the claimed atom.
///
/// # Errors
///
/// Returns [`ProtocolError::AbstractArity`] unless the narration has
/// exactly two roles, and [`ProtocolError::Unbuildable`] unless there is
/// exactly one claim whose atom is fresh at the claimed originator.
pub fn compile_abstract(n: &Narration, opts: &CompileOptions) -> Result<Process, ProtocolError> {
    if n.roles.len() != 2 {
        return Err(ProtocolError::AbstractArity {
            roles: n.roles.len(),
        });
    }
    let [claim]: [&Claim; 1] = n
        .claims
        .iter()
        .collect::<Vec<_>>()
        .try_into()
        .map_err(|_| ProtocolError::Unbuildable {
            role: "-".into(),
            what: format!("exactly one claim (found {})", n.claims.len()),
        })?;
    match n.decl_of(&claim.atom) {
        Some(Decl::Fresh { role, .. }) if role == &claim.from => {}
        _ => {
            return Err(ProtocolError::Unbuildable {
                role: claim.role.clone(),
                what: format!(
                    "claimed atom {} must be fresh at {}",
                    claim.atom, claim.from
                ),
            })
        }
    }
    // Sender first: keep the (sender | receiver) shape of the paper.
    let sender = Process::restrict(
        claim.atom.as_str(),
        out(
            ch(opts.chan.as_str()),
            Term::name(claim.atom.as_str()),
            nil(),
        ),
    );
    let receiver = Process::input(
        spi_syntax::Channel::loc(Term::name(opts.chan.as_str()), "lamB"),
        "z",
        out(ch(opts.observe.as_str()), Term::var("z"), nil()),
    );
    if opts.replicate {
        m_startup(StartupIndex::Star, sender, "lamB".into(), receiver)
    } else {
        startup(StartupIndex::Star, sender, "lamB".into(), receiver)
    }
}

/// The compilation state of one role.
struct RoleCtx<'n> {
    narration: &'n Narration,
    role: &'n str,
    /// atom spelling → how this role currently refers to it.
    knowledge: BTreeMap<String, Term>,
    /// Whole message patterns received under keys this role cannot open,
    /// bound opaquely (e.g. the ticket `{K_ab, a}K_bs` that `A` forwards
    /// blindly in Needham–Schroeder) → how the role refers to the blob.
    opaque: BTreeMap<Term, Term>,
    /// Counter for input and decryption binders.
    counter: usize,
    chan: Name,
    observe: Name,
}

fn compile_role(
    n: &Narration,
    role: &str,
    opts: &CompileOptions,
) -> Result<Process, ProtocolError> {
    let mut knowledge = BTreeMap::new();
    for atom in n.initial_knowledge(role) {
        knowledge.insert(atom.clone(), Term::name(atom.as_str()));
    }
    let mut ctx = RoleCtx {
        narration: n,
        role,
        knowledge,
        opaque: BTreeMap::new(),
        counter: 0,
        chan: Name::new(opts.chan.as_str()),
        observe: Name::new(opts.observe.as_str()),
    };
    let body = build_steps(&mut ctx, 0)?;
    // Fresh atoms are created by the role itself, innermost-last so each
    // session of a replicated role gets new ones.
    let fresh: Vec<Name> = n
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Fresh { role: r, atom } if r == role => Some(Name::new(atom.as_str())),
            _ => None,
        })
        .collect();
    Ok(Process::restrict_all(fresh, body))
}

fn build_steps(ctx: &mut RoleCtx<'_>, idx: usize) -> Result<Process, ProtocolError> {
    let Some(step) = ctx.narration.steps.get(idx) else {
        return Ok(build_claims(ctx));
    };
    if step.from == ctx.role {
        let msg = build_term(ctx, &step.message, step)?;
        let cont = build_steps(ctx, idx + 1)?;
        Ok(out(ch(ctx.chan.as_str()), msg, cont))
    } else if step.to == ctx.role {
        ctx.counter += 1;
        let x = Var::new(format!("x{}", ctx.counter));
        let mut wraps = Vec::new();
        destructure(ctx, &step.message, Term::Var(x.clone()), step, &mut wraps)?;
        let mut cont = build_steps(ctx, idx + 1)?;
        for w in wraps.into_iter().rev() {
            cont = w.wrap(cont);
        }
        Ok(Process::input(ch(ctx.chan.as_str()), x, cont))
    } else {
        build_steps(ctx, idx + 1)
    }
}

fn build_claims(ctx: &RoleCtx<'_>) -> Process {
    let mut p = nil();
    for claim in ctx.narration.claims.iter().rev() {
        if claim.role != ctx.role {
            continue;
        }
        if let Some(value) = ctx.knowledge.get(&claim.atom) {
            p = out(ch(ctx.observe.as_str()), value.clone(), p);
        }
    }
    p
}

/// Builds a message from the role's knowledge.
fn build_term(ctx: &RoleCtx<'_>, pattern: &Term, step: &Step) -> Result<Term, ProtocolError> {
    // A blob received under an unopenable key is forwarded as-is.
    if let Some(blob) = ctx.opaque.get(pattern) {
        return Ok(blob.clone());
    }
    match pattern {
        Term::Name(a) => {
            ctx.knowledge
                .get(a.as_str())
                .cloned()
                .ok_or_else(|| ProtocolError::Unbuildable {
                    role: ctx.role.to_owned(),
                    what: format!("atom {a} in message {}", step.number),
                })
        }
        Term::Var(a) => {
            ctx.knowledge
                .get(a.as_str())
                .cloned()
                .ok_or_else(|| ProtocolError::Unbuildable {
                    role: ctx.role.to_owned(),
                    what: format!("atom {a} in message {}", step.number),
                })
        }
        Term::Pair(a, b) => Ok(Term::pair(
            build_term(ctx, a, step)?,
            build_term(ctx, b, step)?,
        )),
        Term::Enc { body, key } => {
            let body = body
                .iter()
                .map(|t| build_term(ctx, t, step))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Term::enc(body, build_term(ctx, key, step)?))
        }
        Term::Located { .. } => Err(ProtocolError::Unbuildable {
            role: ctx.role.to_owned(),
            what: "located literals do not occur in narrations".into(),
        }),
    }
}

/// A deferred wrapper produced while destructuring a received message.
enum Wrap {
    Match(Term, Term),
    Case {
        scrutinee: Term,
        binders: Vec<Var>,
        key: Term,
    },
    Split {
        pair: Term,
        fst: Var,
        snd: Var,
    },
}

impl Wrap {
    fn wrap(self, cont: Process) -> Process {
        match self {
            Wrap::Match(a, b) => Process::matching(a, b, cont),
            Wrap::Case {
                scrutinee,
                binders,
                key,
            } => Process::case(scrutinee, binders, key, cont),
            Wrap::Split { pair, fst, snd } => Process::split(pair, fst, snd, cont),
        }
    }
}

/// Destructures a received `value` against `pattern`, updating the role's
/// knowledge and queueing the checks/decryptions to wrap around the
/// continuation.
fn destructure(
    ctx: &mut RoleCtx<'_>,
    pattern: &Term,
    value: Term,
    step: &Step,
    wraps: &mut Vec<Wrap>,
) -> Result<(), ProtocolError> {
    match pattern {
        Term::Name(a) => {
            let atom = a.as_str();
            if let Some(known) = ctx.knowledge.get(atom) {
                // The role can check this component (e.g. a nonce echo).
                wraps.push(Wrap::Match(value, known.clone()));
            } else {
                ctx.knowledge.insert(atom.to_owned(), value);
            }
            Ok(())
        }
        Term::Var(a) => {
            // Narration terms parse unbound identifiers as names, but be
            // liberal: treat variables the same way.
            let atom = a.as_str();
            if let Some(known) = ctx.knowledge.get(atom) {
                wraps.push(Wrap::Match(value, known.clone()));
            } else {
                ctx.knowledge.insert(atom.to_owned(), value);
            }
            Ok(())
        }
        Term::Enc { body, key } => {
            let Ok(key_term) = build_term(ctx, key, step) else {
                // The role cannot open this ciphertext: bind it opaquely
                // so it can still forward the blob verbatim later.
                ctx.opaque.insert(pattern.clone(), value);
                return Ok(());
            };
            let binders: Vec<Var> = body
                .iter()
                .map(|_| {
                    ctx.counter += 1;
                    Var::new(format!("y{}", ctx.counter))
                })
                .collect();
            wraps.push(Wrap::Case {
                scrutinee: value,
                binders: binders.clone(),
                key: key_term,
            });
            for (component, binder) in body.iter().zip(binders) {
                destructure(ctx, component, Term::Var(binder), step, wraps)?;
            }
            Ok(())
        }
        Term::Pair(a, b) => {
            // Plaintext pairs destructure with the full-calculus
            // projection `let (y, z) = value in …`.
            ctx.counter += 1;
            let fst = Var::new(format!("y{}", ctx.counter));
            ctx.counter += 1;
            let snd = Var::new(format!("y{}", ctx.counter));
            wraps.push(Wrap::Split {
                pair: value,
                fst: fst.clone(),
                snd: snd.clone(),
            });
            destructure(ctx, a, Term::Var(fst), step, wraps)?;
            destructure(ctx, b, Term::Var(snd), step, wraps)
        }
        Term::Located { .. } => Err(ProtocolError::Unbuildable {
            role: ctx.role.to_owned(),
            what: "located literals do not occur in narrations".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{multi, single};

    const SINGLE: &str = "\
protocol paper-single
roles A, B
share A B : kab
fresh A : m
1. A -> B : {m}kab
claim B authenticates m from A
";

    const CHALLENGE: &str = "\
protocol paper-cr
roles A, B
share A B : kab
fresh A : m
fresh B : nb
1. B -> A : nb
2. A -> B : {m, nb}kab
claim B authenticates m from A
";

    fn opts() -> CompileOptions {
        CompileOptions::default()
    }

    #[test]
    fn concrete_single_is_the_paper_p2() {
        let n = Narration::parse(SINGLE).unwrap();
        let compiled = compile_concrete(&n, &opts()).unwrap();
        let p2 = single::shared_key("c", "observe");
        assert!(
            compiled.alpha_eq(&p2),
            "compiled:\n{compiled}\npaper:\n{p2}"
        );
    }

    #[test]
    fn concrete_challenge_response_is_the_paper_pm3_body() {
        let n = Narration::parse(CHALLENGE).unwrap();
        let compiled = compile_concrete(
            &n,
            &CompileOptions {
                replicate: true,
                ..opts()
            },
        )
        .unwrap();
        let pm3 = multi::challenge_response("c", "observe");
        assert!(
            compiled.alpha_eq(&pm3),
            "compiled:\n{compiled}\npaper:\n{pm3}"
        );
    }

    #[test]
    fn abstract_backend_is_the_canonical_protocol() {
        let n = Narration::parse(SINGLE).unwrap();
        let compiled = compile_abstract(&n, &opts()).unwrap();
        let p = single::abstract_protocol("c", "observe").unwrap();
        assert!(compiled.alpha_eq(&p));
        // Multisession too — and notably the SAME abstract protocol
        // serves the challenge-response narration: the spec is unique.
        let ncr = Narration::parse(CHALLENGE).unwrap();
        let compiled = compile_abstract(
            &ncr,
            &CompileOptions {
                replicate: true,
                ..opts()
            },
        )
        .unwrap();
        let pm = multi::abstract_protocol("c", "observe").unwrap();
        assert!(compiled.alpha_eq(&pm));
    }

    #[test]
    fn nonce_echoes_become_matchings() {
        let n = Narration::parse(CHALLENGE).unwrap();
        let compiled = compile_concrete(&n, &opts()).unwrap();
        let shown = compiled.to_string();
        assert!(shown.contains("["), "B checks its nonce: {shown}");
    }

    #[test]
    fn unbuildable_sends_are_rejected() {
        // A sends an atom only B knows.
        let n =
            Narration::parse("protocol bad\nroles A, B\nfresh B : secret\n1. A -> B : secret\n")
                .unwrap();
        let err = compile_concrete(&n, &opts()).unwrap_err();
        assert!(matches!(err, ProtocolError::Unbuildable { .. }));
    }

    #[test]
    fn unopenable_ciphertexts_bind_opaquely_and_forward() {
        // B cannot open {m}k, but can relay the blob to C verbatim — the
        // Needham–Schroeder "ticket" pattern.
        let n = Narration::parse(
            "protocol relay\nroles A, B, C\nshare A C : k\nfresh A : m\n             1. A -> B : {m}k\n2. B -> C : {m}k\nclaim C authenticates m from A\n",
        )
        .unwrap();
        let compiled = compile_concrete(&n, &opts()).unwrap();
        assert!(compiled.is_closed());
        let shown = compiled.to_string();
        // B's process inputs and re-outputs the same bound variable.
        assert!(shown.contains("c(x1).c<x1>"), "{shown}");
    }

    #[test]
    fn plaintext_pairs_destructure_with_split() {
        let n = Narration::parse(
            "protocol pairy\nroles A, B\nfresh A : m\nfresh A : n\n1. A -> B : (m, n)\n",
        )
        .unwrap();
        let compiled = compile_concrete(&n, &opts()).unwrap();
        let shown = compiled.to_string();
        assert!(shown.contains("let ("), "the projection appears: {shown}");
        assert!(compiled.is_closed());
    }

    #[test]
    fn abstract_backend_requires_two_roles_and_one_claim() {
        let three = Narration::parse(
            "protocol t\nroles A, B, S\nfresh A : m\n1. A -> B : m\nclaim B authenticates m from A\n",
        )
        .unwrap();
        assert!(matches!(
            compile_abstract(&three, &opts()),
            Err(ProtocolError::AbstractArity { roles: 3 })
        ));
        let no_claim =
            Narration::parse("protocol t\nroles A, B\nfresh A : m\n1. A -> B : m\n").unwrap();
        assert!(compile_abstract(&no_claim, &opts()).is_err());
    }
}
