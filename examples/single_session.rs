//! Section 5.1 of the paper, end to end: the abstract protocol `P`, the
//! broken plaintext `P1` and the correct shared-key `P2`, with the
//! paper's tester-based testing scenario run explicitly.
//!
//! ```sh
//! cargo run --example single_session
//! ```

use spi_auth::protocols::single;
use spi_auth::semantics::Barb;
use spi_auth::syntax::{parse, Name, Process};
use spi_auth::verify::{passes_test, ExploreOptions};
use spi_auth::{propositions, Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let abstract_p = single::abstract_protocol("c", "observe")?;
    let p1 = single::plaintext("c", "observe");
    let p2 = single::shared_key("c", "observe");
    println!("P  (abstract)  = {abstract_p}");
    println!("P1 (plaintext) = {p1}");
    println!("P2 (crypto)    = {p2}\n");

    // ---- Proposition 1: the startup localizes correctly ---------------
    let audit = propositions::proposition_1()?;
    println!(
        "Proposition 1: {} observations under the most-general intruder, all from A: {}\n",
        audit.observations, audit.all_from_a
    );

    // ---- The paper's explicit testing scenario ------------------------
    // (νc)(P1 | E) | T with E = (νmE) c̄⟨mE⟩ and the tester checking the
    // origin of what B accepted: T detects E.
    //
    // Positions inside ((P1 | E) | T): B1 is at ‖0‖0‖1, E at ‖0‖1, T at
    // ‖1; the tester's literal 1.01 points from T to E.
    let e = parse("(^mE) c<mE>")?;
    let tester = parse("observe(z).[z ~ @(1.01)] beta<z>")?;
    let beta = Barb {
        chan: Name::new("beta"),
        output: true,
    };
    let system_p1 = Process::restrict("c", Process::par(p1.clone(), e.clone()));
    let witness = passes_test(&system_p1, &tester, &beta, &ExploreOptions::default())?;
    println!(
        "(νc)(P1 | E) passes the E-origin test: {}",
        witness.is_some()
    );
    if let Some(w) = &witness {
        for s in &w.steps {
            println!("   {s}");
        }
    }
    // The abstract protocol never passes that test: B only listens to A.
    let system_p = Process::restrict("c", Process::par(abstract_p.clone(), e));
    let witness = passes_test(&system_p, &tester, &beta, &ExploreOptions::default())?;
    println!(
        "(νc)(P  | E) passes the E-origin test: {}\n",
        witness.is_some()
    );

    // ---- The full Definition-4 check ----------------------------------
    let verifier = Verifier::new(["c"]);
    match verifier.check(&p1, &abstract_p)?.verdict {
        Verdict::Attack(attack) => {
            println!("P1 ⋢ P — the verifier reconstructs the paper's attack:");
            for line in &attack.narration {
                println!("   {line}");
            }
            println!("   distinguishing trace: {:?}\n", attack.trace);
        }
        other => println!("unexpected: P1 passed? ({other:?})\n"),
    }

    let report = propositions::proposition_2()?;
    println!("Proposition 2: P2 {}", propositions::verdict_line(&report));
    Ok(())
}
