//! Fault-injection schedules for robustness sweeps.
//!
//! The fault model itself lives in `spi-semantics` ([`FaultSpec`]); this
//! module enumerates *schedules* — families of specs a verifier sweeps to
//! make claims like "the property survives every single network fault".
//! Schedules are deterministic and ordered, so sweeps are replayable.

use std::collections::HashSet;

use spi_semantics::{FaultClause, FaultKind, FaultSpec};
use spi_syntax::Name;

/// The pure duplication network: at most `max` duplicate deliveries on
/// `chan`, nothing else.  This is the weakest fault model that exhibits a
/// message replay — the counterexample of the paper's Section 4 needs no
/// hand-written intruder under it.
#[must_use]
pub fn duplicate_only(chan: impl Into<Name>, max: u32) -> FaultSpec {
    FaultSpec::single(FaultKind::Duplicate, chan, max)
}

/// Every single-fault schedule over `chans`: one spec per (kind, channel)
/// pair, each allowing that one fault to fire at most `max` times and no
/// other fault at all.  A property that stays verified under all of them
/// tolerates any single kind of network misbehaviour on any one channel.
#[must_use]
pub fn single_fault_schedules<I, N>(chans: I, max: u32) -> Vec<FaultSpec>
where
    I: IntoIterator<Item = N>,
    N: Into<Name>,
{
    let chans: Vec<Name> = chans.into_iter().map(Into::into).collect();
    let mut out = Vec::with_capacity(chans.len() * FaultKind::ALL.len());
    for chan in &chans {
        for kind in FaultKind::ALL {
            out.push(FaultSpec::single(kind, chan.clone(), max));
        }
    }
    out
}

/// Every multi-fault schedule of between 1 and `depth` *unit firings*
/// drawn from the universe `kinds × chans`: the systematic search space
/// of a fault campaign.
///
/// A schedule is a canonical [`FaultSpec`] — clauses sorted, repeats of
/// the same `(kind, chan)` merged into one clause with a larger cap — so
/// `drop:c + replay:c` (one drop *and* one replay along the same run) and
/// `replay:c + replay:c` (`replay:c:2`) each appear exactly once, no
/// matter in which order the units were picked.  Enumeration is
/// deterministic: by total firings, then by the first point the unit
/// choices diverge (units ordered as `kinds` × `chans`); duplicates are
/// pruned by [`FaultSpec::canonical_key`].
#[must_use]
pub fn multi_fault_schedules<I, N>(chans: I, kinds: &[FaultKind], depth: usize) -> Vec<FaultSpec>
where
    I: IntoIterator<Item = N>,
    N: Into<Name>,
{
    let units: Vec<FaultClause> = chans
        .into_iter()
        .map(Into::into)
        .flat_map(|chan| {
            kinds.iter().map(move |&kind| FaultClause {
                kind,
                chan: chan.clone(),
                max: 1,
            })
        })
        .collect();
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    // Combinations with repetition in nondecreasing unit order: each
    // multiset of units is generated once, already in canonical order.
    let mut picked: Vec<usize> = Vec::new();
    for size in 1..=depth {
        combinations(&units, size, 0, &mut picked, &mut |clauses| {
            let spec = FaultSpec::new(clauses.iter().cloned()).canonical();
            if seen.insert(spec.canonical_key()) {
                out.push(spec);
            }
        });
    }
    out
}

/// Walks every nondecreasing index multiset of `size` units, calling
/// `emit` with the picked clauses.
fn combinations(
    units: &[FaultClause],
    size: usize,
    from: usize,
    picked: &mut Vec<usize>,
    emit: &mut impl FnMut(Vec<FaultClause>),
) {
    if picked.len() == size {
        emit(picked.iter().map(|&i| units[i].clone()).collect());
        return;
    }
    for i in from..units.len() {
        picked.push(i);
        combinations(units, size, i, picked, emit);
        picked.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_cover_every_kind_once_per_channel() {
        let scheds = single_fault_schedules(["c", "d"], 1);
        assert_eq!(scheds.len(), 8);
        for s in &scheds {
            assert_eq!(s.clauses.len(), 1, "single-fault means one clause");
            assert_eq!(s.clauses[0].max, 1);
        }
        // Deterministic order: all kinds for c, then all kinds for d.
        assert_eq!(scheds[0].clauses[0].kind, FaultKind::Drop);
        assert_eq!(scheds[0].clauses[0].chan, Name::new("c"));
        assert_eq!(scheds[4].clauses[0].chan, Name::new("d"));
    }

    #[test]
    fn duplicate_only_is_a_single_duplicate_clause() {
        let s = duplicate_only("c", 2);
        assert_eq!(s.clauses.len(), 1);
        assert_eq!(s.clauses[0].kind, FaultKind::Duplicate);
        assert_eq!(s.clauses[0].max, 2);
    }

    #[test]
    fn depth_one_multi_schedules_are_the_single_fault_sweep() {
        let multi = multi_fault_schedules(["c"], &FaultKind::ALL, 1);
        assert_eq!(multi.len(), 4);
        for (m, s) in multi.iter().zip(single_fault_schedules(["c"], 1)) {
            assert_eq!(m.canonical_key(), s.canonical_key());
        }
    }

    #[test]
    fn depth_two_counts_multisets_not_sequences() {
        // 4 units over one channel: 4 singletons + C(4+1, 2) = 10 pairs.
        let scheds = multi_fault_schedules(["c"], &FaultKind::ALL, 2);
        assert_eq!(scheds.len(), 14);
        let keys: HashSet<String> = scheds.iter().map(FaultSpec::canonical_key).collect();
        assert_eq!(keys.len(), 14, "every schedule key is distinct");
        // A doubled unit merged into one clause with cap 2.
        assert!(keys.contains("replay:c:2@1"), "{keys:?}");
        // A genuine two-kind combination.
        assert!(keys.contains("drop:c:1+replay:c:1@1"), "{keys:?}");
        // Total firings never exceed the depth.
        assert!(scheds.iter().all(|s| s.total_firings() <= 2));
    }

    #[test]
    fn enumeration_is_deterministic_and_sized_first() {
        let a = multi_fault_schedules(["c", "d"], &FaultKind::ALL, 2);
        let b = multi_fault_schedules(["c", "d"], &FaultKind::ALL, 2);
        assert_eq!(a, b);
        let sizes: Vec<u32> = a.iter().map(FaultSpec::total_firings).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "singletons come before pairs");
    }
}
