//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy drawing uniformly from a fixed set of values.
#[derive(Clone, Debug)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len())].clone()
    }
}

/// Selects uniformly from `items`; must be non-empty.
pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
    let items = items.into();
    assert!(!items.is_empty(), "select over an empty set");
    Select(items)
}
