//! End-to-end tests of the daemon over real sockets: singleflight,
//! cache-byte bounds, admission rejection, snapshot restarts, timeout
//! degradation, and the real verifier engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spi_server::client::Client;
use spi_server::protocol::JobRequest;
use spi_server::service::{serve, Engine, EngineOutcome, RunControl, ServerHandle, ServerOptions};
use spi_verify::jsonlite::Json;

const P2: &str = "(^kAB)((^m) c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)";
const P1: &str = "(^m) c<m> | c(z).observe<z>";
const P_ABS: &str = "(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)";

/// A stub engine: sleeps, then answers a constant body.  `runs` counts
/// real executions so tests can assert dedup independently of the
/// server's own probe counter.
struct SlowEngine {
    delay: Duration,
    runs: AtomicU64,
    body_padding: usize,
}

impl SlowEngine {
    fn new(delay_ms: u64) -> SlowEngine {
        SlowEngine {
            delay: Duration::from_millis(delay_ms),
            runs: AtomicU64::new(0),
            body_padding: 0,
        }
    }
}

impl Engine for SlowEngine {
    fn run(&self, job: &JobRequest, _ctl: &RunControl) -> EngineOutcome {
        self.runs.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.delay);
        EngineOutcome {
            body: Ok(Json::Obj(vec![
                ("answer".into(), Json::Int(42)),
                ("echo_sessions".into(), Json::count(job.sessions as usize)),
                ("padding".into(), Json::str("p".repeat(self.body_padding))),
            ])),
            cacheable: true,
        }
    }
}

fn opts(addr_port0: bool) -> ServerOptions {
    ServerOptions {
        addr: if addr_port0 {
            "127.0.0.1:0".into()
        } else {
            ServerOptions::default().addr
        },
        ..ServerOptions::default()
    }
}

fn start(engine: Arc<dyn Engine>, configure: impl FnOnce(&mut ServerOptions)) -> ServerHandle {
    let mut o = opts(true);
    configure(&mut o);
    serve(engine, o).expect("server starts")
}

fn verify_line(concrete: &str, sessions: u32) -> String {
    format!(
        r#"{{"op":"verify","concrete":"{}","abstract":"{}","sessions":{sessions}}}"#,
        concrete.replace('\\', "\\\\"),
        P_ABS.replace('\\', "\\\\"),
    )
}

fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
    resp.get(key)
        .unwrap_or_else(|| panic!("response lacks {key:?}: {resp:?}"))
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

#[test]
fn ping_stats_and_errors_speak_the_protocol() {
    let handle = start(Arc::new(SlowEngine::new(0)), |_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let pong = parsed(&client.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(field(&pong, "status").as_str(), Some("ok"));

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = field(&stats, "body");
    for key in [
        "hits",
        "misses",
        "evictions",
        "inflight",
        "queue_depth",
        "executions",
        "rejected",
        "entries",
        "cache_bytes",
        "cache_bytes_max",
    ] {
        assert!(body.get(key).is_some(), "stats lacks {key:?}: {body:?}");
    }

    let err = parsed(&client.roundtrip("this is not json").unwrap());
    assert_eq!(field(&err, "status").as_str(), Some("error"));

    let err = parsed(
        &client
            .roundtrip(r#"{"op":"verify","concrete":"(((","abstract":"0"}"#)
            .unwrap(),
    );
    assert_eq!(field(&err, "status").as_str(), Some("error"));

    handle.join();
}

#[test]
fn repeat_requests_hit_the_cache_with_identical_bodies() {
    let engine = Arc::new(SlowEngine::new(0));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let line = verify_line(P2, 1);
    let first = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&first, "status").as_str(), Some("ok"));
    assert_eq!(field(&first, "cached").as_bool(), Some(false));
    let second = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&second, "cached").as_bool(), Some(true));
    assert_eq!(field(&first, "body"), field(&second, "body"));
    assert_eq!(
        field(&first, "spec_digest").as_str(),
        field(&second, "spec_digest").as_str()
    );
    assert_eq!(engine.runs.load(Ordering::SeqCst), 1);

    // A different question is a different digest and a fresh run.
    let other = parsed(&client.roundtrip(&verify_line(P1, 1)).unwrap());
    assert_eq!(field(&other, "cached").as_bool(), Some(false));
    assert_ne!(
        field(&first, "spec_digest").as_str(),
        field(&other, "spec_digest").as_str()
    );
    assert_eq!(engine.runs.load(Ordering::SeqCst), 2);

    // no_cache bypasses the cache entirely.
    let bypass = verify_line(P2, 1).replace(
        "\"op\":\"verify\"",
        "\"op\":\"verify\",\"no_cache\":true",
    );
    let resp = parsed(&client.roundtrip(&bypass).unwrap());
    assert_eq!(field(&resp, "cached").as_bool(), Some(false));
    assert_eq!(engine.runs.load(Ordering::SeqCst), 3);

    handle.join();
}

#[test]
fn singleflight_runs_concurrent_identical_requests_once() {
    let engine = Arc::new(SlowEngine::new(150));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
        o.workers = 4;
        o.queue_cap = 64;
    });
    let addr = handle.addr().to_string();

    let line = verify_line(P2, 1);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let line = line.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.roundtrip(&line).unwrap()
            })
        })
        .collect();
    let responses: Vec<Json> = threads
        .into_iter()
        .map(|t| parsed(&t.join().unwrap()))
        .collect();

    for resp in &responses {
        assert_eq!(field(resp, "status").as_str(), Some("ok"));
        assert_eq!(field(resp, "body"), field(&responses[0], "body"));
    }
    assert_eq!(
        engine.runs.load(Ordering::SeqCst),
        1,
        "eight identical concurrent requests must fund exactly one exploration"
    );
    assert_eq!(handle.executions(), 1);
    let served_cached = responses
        .iter()
        .filter(|r| field(r, "cached").as_bool() == Some(true))
        .count();
    assert_eq!(served_cached, 7, "everyone but the leader rides the cache");

    handle.join();
}

#[test]
fn cache_stays_under_its_byte_budget_and_reports_evictions() {
    let engine = Arc::new(SlowEngine {
        delay: Duration::from_millis(0),
        runs: AtomicU64::new(0),
        body_padding: 160,
    });
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
        // Room for roughly two padded bodies.
        o.cache_bytes = 700;
    });
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    for sessions in 1..=8 {
        let resp = parsed(&client.roundtrip(&verify_line(P2, sessions)).unwrap());
        assert_eq!(field(&resp, "status").as_str(), Some("ok"));
        let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
        let body = field(&stats, "body");
        let used = field(body, "cache_bytes").as_int().unwrap();
        let max = field(body, "cache_bytes_max").as_int().unwrap();
        assert!(used <= max, "cache exceeded its budget: {used} > {max}");
    }
    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let evictions = field(field(&stats, "body"), "evictions").as_int().unwrap();
    assert!(evictions > 0, "eight distinct results must not all fit");

    handle.join();
}

#[test]
fn full_queue_degrades_to_rejected_responses() {
    let engine = Arc::new(SlowEngine::new(400));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
        o.workers = 1;
        o.queue_cap = 1;
    });
    let addr = handle.addr().to_string();

    // Distinct digests so singleflight cannot merge them.
    let threads: Vec<_> = (1..=6)
        .map(|sessions| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.roundtrip(&verify_line(P2, sessions)).unwrap()
            })
        })
        .collect();
    let statuses: Vec<String> = threads
        .into_iter()
        .map(|t| {
            let resp = parsed(&t.join().unwrap());
            field(&resp, "status").as_str().unwrap().to_string()
        })
        .collect();
    assert!(
        statuses.iter().any(|s| s == "rejected"),
        "a 1-worker/1-slot server under 6 concurrent jobs must shed load: {statuses:?}"
    );
    assert!(
        statuses.iter().any(|s| s == "ok"),
        "admitted jobs still complete: {statuses:?}"
    );

    handle.join();
}

#[test]
fn snapshot_survives_a_restart_and_serves_the_first_repeat_from_cache() {
    let dir = std::env::temp_dir().join(format!("spi-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("cache.json");
    let _ = std::fs::remove_file(&snap);
    let line = verify_line(P2, 1);

    let first_body;
    {
        let engine = Arc::new(SlowEngine::new(0));
        let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
            o.snapshot = Some(snap.clone());
        });
        let mut client = Client::connect(&handle.addr().to_string()).unwrap();
        let resp = parsed(&client.roundtrip(&line).unwrap());
        assert_eq!(field(&resp, "cached").as_bool(), Some(false));
        first_body = field(&resp, "body").clone();
        handle.join();
    }
    assert!(snap.exists(), "drain must flush the snapshot");

    // Restart on the snapshot: the very first repeat is already a hit,
    // and the engine is never consulted.
    let engine = Arc::new(SlowEngine::new(0));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
        o.snapshot = Some(snap.clone());
    });
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let resp = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&resp, "cached").as_bool(), Some(true));
    assert_eq!(field(&resp, "body"), &first_body);
    assert_eq!(engine.runs.load(Ordering::SeqCst), 0);
    handle.join();

    // A forged snapshot is refused and the server starts cold.
    let text = std::fs::read_to_string(&snap).unwrap();
    std::fs::write(&snap, text.replace("42", "41")).unwrap();
    let engine = Arc::new(SlowEngine::new(0));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |o| {
        o.snapshot = Some(snap.clone());
    });
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    let resp = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(
        field(&resp, "cached").as_bool(),
        Some(false),
        "a tampered snapshot must not serve forged results"
    );
    assert_eq!(engine.runs.load(Ordering::SeqCst), 1);
    handle.join();
}

#[test]
fn draining_server_rejects_new_jobs_but_still_answers_from_cache() {
    let engine = Arc::new(SlowEngine::new(0));
    let handle = start(Arc::clone(&engine) as Arc<dyn Engine>, |_| {});
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let line = verify_line(P2, 1);
    let _ = client.roundtrip(&line).unwrap();
    let shut = parsed(&client.roundtrip(r#"{"op":"shutdown"}"#).unwrap());
    assert_eq!(field(&shut, "status").as_str(), Some("ok"));

    // The open connection keeps serving: cache hits succeed, fresh
    // work is shed.
    let hit = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&hit, "cached").as_bool(), Some(true));
    let fresh = parsed(&client.roundtrip(&verify_line(P2, 7)).unwrap());
    assert_eq!(field(&fresh, "status").as_str(), Some("rejected"));

    handle.join();
}

#[test]
fn the_real_engine_verifies_and_caches_real_verdicts() {
    use spi_server::service::VerifierEngine;

    let handle = start(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        |_| {},
    );
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // P2 securely implements the abstract single-session protocol…
    let good = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
    assert_eq!(field(&good, "status").as_str(), Some("ok"));
    let body = field(&good, "body");
    assert_eq!(
        field(body, "verdict").as_str(),
        Some("securely-implements"),
        "{body:?}"
    );
    assert!(field(body, "traces_checked").as_int().unwrap() > 0);

    // …the plaintext protocol does not, and the attack carries its
    // narration.
    let bad = parsed(&client.roundtrip(&verify_line(P1, 1)).unwrap());
    let body = field(&bad, "body");
    assert_eq!(field(body, "verdict").as_str(), Some("attack"));
    assert!(!field(field(body, "attack"), "narration")
        .as_arr()
        .unwrap()
        .is_empty());

    // The repeat is a cache hit with the identical verdict and stats.
    let again = parsed(&client.roundtrip(&verify_line(P2, 1)).unwrap());
    assert_eq!(field(&again, "cached").as_bool(), Some(true));
    assert_eq!(field(&again, "body"), field(&good, "body"));

    // A zero-second timeout degrades to inconclusive (wall-clock) and
    // is NOT cached: the next identical request runs fresh.
    let timed = verify_line(P2, 2).replace(
        "\"op\":\"verify\"",
        "\"op\":\"verify\",\"timeout_secs\":0",
    );
    let t1 = parsed(&client.roundtrip(&timed).unwrap());
    let body = field(&t1, "body");
    assert_eq!(field(body, "verdict").as_str(), Some("inconclusive"));
    assert_eq!(field(body, "exhausted").as_str(), Some("wall-clock"));
    let executions_before = handle.executions();
    let t2 = parsed(&client.roundtrip(&timed).unwrap());
    assert_eq!(field(&t2, "cached").as_bool(), Some(false));
    assert!(handle.executions() > executions_before);

    handle.join();
}

#[test]
fn the_real_engine_runs_campaigns() {
    use spi_server::service::VerifierEngine;

    let handle = start(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        |_| {},
    );
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    const PM2: &str =
        "(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)";
    const PM_ABS: &str = "(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)";
    let line = format!(
        r#"{{"op":"campaign","concrete":"{PM2}","abstract":"{PM_ABS}","sessions":2,"intruder":false,"faults_depth":2}}"#
    );
    let resp = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&resp, "status").as_str(), Some("ok"));
    let body = field(&resp, "body");
    assert_eq!(field(body, "enumerated").as_int(), Some(14));
    assert!(field(body, "attacks").as_int().unwrap() > 0);
    assert_eq!(field(body, "interrupted").as_bool(), Some(false));
    assert!(!field(body, "results").as_arr().unwrap().is_empty());

    // Campaigns ride the same cache.
    let again = parsed(&client.roundtrip(&line).unwrap());
    assert_eq!(field(&again, "cached").as_bool(), Some(true));
    assert_eq!(field(&again, "body"), body);

    handle.join();
}
