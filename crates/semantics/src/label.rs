//! Proved transition labels — the enhanced-semantics view.
//!
//! The paper's semantics is *proved* (its references [12, 13]): transition
//! labels encode the part of the deduction tree that locates the acting
//! components, written as strings of `‖0`/`‖1` tags prefixed to the
//! action, e.g.
//!
//! ```text
//! ⟨‖0‖1 c̄⟨M⟩, ‖1‖1‖0 c(x)⟩
//! ```
//!
//! for a communication whose output was deduced through the left-then-
//! right branches and whose input through right-right-left.  The machine
//! stores exactly this information in [`StepInfo`] (the absolute paths of
//! the participants); this module renders it in the paper's notation.

use std::fmt;

use crate::{Config, StepInfo};

/// A proved label: the enhanced-semantics rendering of one machine step.
///
/// # Example
///
/// ```
/// use spi_semantics::{Action, Config, ProvedLabel};
/// use spi_syntax::parse;
///
/// let mut cfg = Config::from_process(&parse("(^m)(c<m> | c(x))")?)?;
/// let step = cfg.fire(&Action::Comm {
///     out_path: "0".parse()?,
///     in_path: "1".parse()?,
/// })?;
/// let label = ProvedLabel::new(&step, &cfg);
/// assert_eq!(label.to_string(), "⟨‖0 c̄⟨m'1⟩, ‖1 c(·)⟩");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvedLabel {
    rendered: String,
}

impl ProvedLabel {
    /// Renders the proved label of `step`, using `cfg`'s name table for
    /// display (the configuration *after* the step works: tables grow
    /// monotonically).
    #[must_use]
    pub fn new(step: &StepInfo, cfg: &Config) -> ProvedLabel {
        let rendered = match step {
            StepInfo::Comm(ci) => {
                format!(
                    "⟨{} c̄⟨{}⟩, {} c(·)⟩",
                    tags(&ci.sender),
                    ci.payload.display(cfg.names()),
                    tags(&ci.receiver),
                )
            }
            StepInfo::Unfold { path } => format!("{} !", tags(path)),
        };
        ProvedLabel { rendered }
    }
}

/// Renders a path in the paper's arc-tag notation, with `ε` at the root.
fn tags(p: &spi_addr::Path) -> String {
    p.to_string()
}

impl fmt::Display for ProvedLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;
    use spi_syntax::parse;

    #[test]
    fn communication_labels_show_both_proof_parts() {
        let mut cfg = Config::from_process(&parse("(c<m> | 0) | (0 | c(x))").unwrap()).unwrap();
        let step = cfg
            .fire(&Action::Comm {
                out_path: "00".parse().unwrap(),
                in_path: "11".parse().unwrap(),
            })
            .unwrap();
        let label = ProvedLabel::new(&step, &cfg);
        assert_eq!(label.to_string(), "⟨‖0‖0 c̄⟨m⟩, ‖1‖1 c(·)⟩");
    }

    #[test]
    fn unfold_labels_locate_the_replication() {
        let mut cfg = Config::from_process(&parse("!c<m> | c(x)").unwrap()).unwrap();
        let step = cfg
            .fire(&Action::Unfold {
                path: "0".parse().unwrap(),
            })
            .unwrap();
        let label = ProvedLabel::new(&step, &cfg);
        assert_eq!(label.to_string(), "‖0 !");
    }
}
