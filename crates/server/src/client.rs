//! A minimal line-protocol client (the back-end of `spi client`, the
//! conformance oracle, and the CI smoke tests).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent connection to a running server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7970`).
    ///
    /// # Errors
    ///
    /// Fails when the address does not resolve or the connection is
    /// refused.
    pub fn connect(addr: &str) -> Result<Client, String> {
        Client::connect_with(addr, None)
    }

    /// Connects with an optional connect timeout.  Without one, a
    /// black-holed address (a partitioned coordinator whose SYNs
    /// vanish) hangs until the OS gives up — minutes; with one, the
    /// caller's retry/fallback logic gets control back promptly.
    ///
    /// # Errors
    ///
    /// Fails when the address does not resolve, the connection is
    /// refused, or the timeout elapses.
    pub fn connect_with(addr: &str, connect_timeout: Option<Duration>) -> Result<Client, String> {
        let stream = match connect_timeout {
            None => TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?,
            Some(limit) => {
                let resolved = addr
                    .to_socket_addrs()
                    .map_err(|e| format!("cannot resolve {addr}: {e}"))?
                    .collect::<Vec<_>>();
                let mut last = format!("cannot resolve {addr}: no addresses");
                let mut connected = None;
                for sock in resolved {
                    match TcpStream::connect_timeout(&sock, limit) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = format!("cannot connect to {addr}: {e}"),
                    }
                }
                connected.ok_or(last)?
            }
        };
        // One-line request/response turns: Nagle + delayed ACK would
        // add ~40ms stalls per turn.
        let _ = stream.set_nodelay(true);
        let reader = stream
            .try_clone()
            .map_err(|e| format!("cannot clone the connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(reader),
            writer: stream,
        })
    }

    /// Sets the read timeout for responses (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), String> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| format!("cannot set read timeout: {e}"))
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Fails on I/O trouble or a server that closed the connection.
    pub fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if n == 0 {
            return Err("the server closed the connection".into());
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and reads until the *final* response
    /// line, handing every `{"status":"progress",…}` heartbeat to
    /// `on_progress` along the way.
    ///
    /// The socket read timeout (see [`Client::read_timeout`]) applies
    /// per line, so a server streaming heartbeats keeps a short
    /// timeout alive for as long as it keeps making progress — the
    /// point of heartbeats: *working* and *dead* become
    /// distinguishable without an hours-long timeout.
    ///
    /// # Errors
    ///
    /// Fails on I/O trouble or a server that closed the connection.
    pub fn roundtrip_streaming(
        &mut self,
        line: &str,
        mut on_progress: impl FnMut(&str),
    ) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("cannot send request: {e}"))?;
        loop {
            let mut response = String::new();
            let n = self
                .reader
                .read_line(&mut response)
                .map_err(|e| format!("cannot read response: {e}"))?;
            if n == 0 {
                return Err("the server closed the connection".into());
            }
            let response = response.trim_end().to_string();
            // The server's own renderer puts `status` first, so the
            // prefix check is exact — no need to parse megabyte-sized
            // final bodies just to classify them.
            if response.starts_with("{\"status\":\"progress\"") {
                on_progress(&response);
                continue;
            }
            return Ok(response);
        }
    }
}

/// One-shot convenience: connect, send a line, read the response.
///
/// # Errors
///
/// Propagates connection and I/O failures.
pub fn oneshot(addr: &str, line: &str) -> Result<String, String> {
    Client::connect(addr)?.roundtrip(line)
}
