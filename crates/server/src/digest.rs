//! Content digests for cache keys and snapshot identities.
//!
//! The build is offline (no hashing crates), so digests are 64-bit
//! FNV-1a rendered in the same `fnv:{:016x}` spelling the campaign
//! checkpoint identity uses.  These digests guard caches against
//! *accidental* mismatch (a different question, a corrupted snapshot),
//! not against an adversary with write access to the snapshot file.

/// 64-bit FNV-1a.
#[must_use]
pub fn fnv64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The canonical digest spelling: `fnv:` plus 16 hex digits.
#[must_use]
pub fn digest(text: &str) -> String {
    format!("fnv:{:016x}", fnv64(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(digest(""), "fnv:cbf29ce484222325");
        assert_eq!(digest("a"), digest("a"));
        assert_ne!(digest("a"), digest("b"));
        assert!(digest("x").starts_with("fnv:"));
        assert_eq!(digest("x").len(), 4 + 16);
    }
}
