//! Test configuration, case errors, and the deterministic RNG.

/// Per-test configuration (a subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A small deterministic generator (splitmix64 seeding, xorshift64*
/// stream).  Seeded from the test name and case index so every run of
/// the suite explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG with an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // splitmix64 step so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0x9e37_79b9 } else { z },
        }
    }

    /// The RNG for a given test name and case number.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ (u64::from(case).wrapping_mul(0x2545_f491_4f6c_dd1d)))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
