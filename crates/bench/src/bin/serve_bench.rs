//! Measure warm-vs-cold request latency against an in-process
//! `spi serve` daemon and print the complete `BENCH_serve.json`
//! document to stdout.
//!
//! Run with `cargo run --release -p spi-bench --bin serve_bench -- <date> > BENCH_serve.json`
//! from the repository root (the spec paths are relative).
//!
//! Cold samples set `no_cache: true`, so every one pays for a full
//! dual exploration of Pm3 against Pm; warm samples are served from
//! the content-addressed result cache.  The two kinds are interleaved
//! (cold, warm, cold, warm, …) so neither benefits from running last,
//! and the reported figures are medians.

use std::time::Instant;

use spi_auth::server::{serve, Client, ServerOptions, VerifierEngine};
use spi_auth::verify::jsonlite::Json;

const COLD_RUNS: usize = 5;
const WARM_RUNS: usize = 20;

fn request_line(no_cache: bool) -> String {
    let concrete = std::fs::read_to_string("examples/protocols/pm3.spi")
        .expect("run from the repository root: examples/protocols/pm3.spi");
    let spec = std::fs::read_to_string("examples/protocols/pm.spi")
        .expect("run from the repository root: examples/protocols/pm.spi");
    Json::Obj(vec![
        ("op".to_string(), Json::str("verify")),
        ("concrete".into(), Json::str(concrete)),
        ("abstract".into(), Json::str(spec)),
        ("sessions".into(), Json::count(2)),
        ("no_cache".into(), Json::Bool(no_cache)),
    ])
    .render_compact()
}

fn sample_ms(client: &mut Client, line: &str) -> (f64, bool) {
    let start = Instant::now();
    let response = client.roundtrip(line).expect("roundtrip succeeds");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let parsed = Json::parse(&response).expect("response is JSON");
    assert_eq!(
        parsed.get("status").and_then(Json::as_str),
        Some("ok"),
        "server answered: {response}"
    );
    let cached = parsed.get("cached").and_then(Json::as_bool) == Some(true);
    (ms, cached)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let date = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "unknown".to_string());
    let handle = serve(
        std::sync::Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            snapshot: None,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&handle.addr().to_string()).expect("client connects");

    let cold_line = request_line(true);
    let warm_line = request_line(false);
    // Prime the cache so every warm sample is a hit.
    let (_, primed_cached) = sample_ms(&mut client, &warm_line);
    assert!(!primed_cached, "the priming request must run the engine");

    let mut cold = Vec::new();
    let mut warm = Vec::new();
    while cold.len() < COLD_RUNS || warm.len() < WARM_RUNS {
        if cold.len() < COLD_RUNS {
            cold.push(sample_ms(&mut client, &cold_line).0);
        }
        if warm.len() < WARM_RUNS {
            let (ms, cached) = sample_ms(&mut client, &warm_line);
            assert!(cached, "warm samples must be cache hits");
            warm.push(ms);
        }
    }
    let cold_ms = median(&mut cold);
    let warm_ms = median(&mut warm);
    let speedup = cold_ms / warm_ms;
    handle.join();

    println!(
        r#"{{
  "benchmark": "serve_latency",
  "date": "{date}",
  "command": "cargo run --release -p spi-bench --bin serve_bench -- <date> > BENCH_serve.json",
  "methodology": "An in-process spi serve daemon (2 request workers, single-threaded explorations, default cache budget) answers verify requests for examples/protocols/pm3.spi against examples/protocols/pm.spi at 2 sessions over loopback TCP. Cold samples set no_cache=true so each pays for the full dual exploration plus trace-preorder comparison; warm samples are served from the content-addressed result cache. Samples are interleaved cold/warm after one priming fill, figures are medians, latency is measured client-side around one request/response line.",
  "records": [
    {{
      "instance": "pm3_vs_pm",
      "sessions": 2,
      "cold_runs": {COLD_RUNS},
      "warm_runs": {WARM_RUNS},
      "cold_median_ms": {cold_ms:.3},
      "warm_median_ms": {warm_ms:.3},
      "speedup": {speedup:.1}
    }}
  ]
}}"#
    );
    assert!(
        speedup >= 10.0,
        "expected >=10x warm-vs-cold, measured {speedup:.1}x"
    );
}
