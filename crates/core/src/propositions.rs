//! Mechanical re-derivations of the paper's formal results.
//!
//! Each function reconstructs one result of Section 5 with the bounded
//! machinery of this workspace and returns a structured report, so the
//! examples, the integration tests and `EXPERIMENTS.md` all draw from the
//! same source:
//!
//! | Paper artefact | Function |
//! |----------------|----------|
//! | Proposition 1 (startup binds locations correctly)   | [`proposition_1`] |
//! | §5.1 counterexample (`P1` does not implement `P`)   | [`counterexample_p1`] |
//! | Proposition 2 (`P2` securely implements `P`)        | [`proposition_2`] |
//! | Proposition 3 (multisession hooking and freshness)  | [`proposition_3`] |
//! | §5.2 counterexample (replay on `Pm2`)               | [`counterexample_pm2`] |
//! | Proposition 4 (`Pm3` securely implements `Pm`)      | [`proposition_4`] |

use std::collections::BTreeSet;

use spi_addr::Path;
use spi_protocols::{multi, single};
use spi_verify::{weak_traces, ExploreStats, Label, ObsTerm, VerifyError};

use crate::{Attack, Verdict, VerificationReport, Verifier};

/// The report of an origin-audit run ([`proposition_1`] and
/// [`proposition_3`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OriginAudit {
    /// How many visible observations the bounded exploration offers.
    pub observations: usize,
    /// Did every observation originate from an instance of `A`?
    pub all_from_a: bool,
    /// Did any complete trace deliver the same message twice (a replay)?
    pub replay_found: bool,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

/// The standard channel/continuation names used throughout.
const CHAN: &str = "c";
const OBSERVE: &str = "observe";

/// The position, inside `(νc)(P | X)`, of the `A` side of the paper's
/// protocols (the left component of the startup).
fn a_side() -> Path {
    "00".parse().expect("static path")
}

fn audit(protocol: &spi_syntax::Process, verifier: &Verifier) -> Result<OriginAudit, VerifyError> {
    let lts = verifier.explore(protocol)?;
    let mut observations = 0usize;
    let mut all_from_a = true;
    for state in &lts.states {
        for (label, _) in &state.edges {
            if let Label::Obs(ev, _) = label {
                observations += 1;
                let from_a = match &ev.payload {
                    ObsTerm::Fresh { creator, .. } => {
                        // Created at or below the A side: the startup
                        // sender or one of its session instances.
                        a_side().is_prefix_of(creator)
                    }
                    _ => false,
                };
                all_from_a &= from_a;
            }
        }
    }
    // Freshness: no trace repeats an event (delivering the same located
    // message twice).
    let mut replay_found = false;
    for trace in weak_traces(&lts, 4) {
        let set: BTreeSet<&String> = trace.iter().collect();
        if set.len() != trace.len() {
            replay_found = true;
        }
    }
    Ok(OriginAudit {
        observations,
        all_from_a,
        replay_found,
        stats: lts.stats,
    })
}

/// **Proposition 1.** In `startup(⋆, A, λ_B, B)` composed with *any*
/// environment, `λ_B` can only be bound to the relative address of `A` —
/// operationally: under the most-general intruder, every message the
/// continuation of `B` reveals originates from `A`.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn proposition_1() -> Result<OriginAudit, VerifyError> {
    let p = single::abstract_protocol(CHAN, OBSERVE).expect("builds");
    let verifier = Verifier::new([CHAN]);
    let report = audit(&p, &verifier)?;
    Ok(report)
}

/// **Section 5.1 counterexample.** The plaintext `P1` does not securely
/// implement the abstract `P`: the attacker `E = (νM_E) c̄⟨M_E⟩` makes
/// `B` accept a message that did not originate from `A`
/// (`Message 1  E(A) → B : M_E`).
///
/// # Errors
///
/// Propagates exploration failures.  Returns the attack; `None` would
/// mean the reproduction failed.
pub fn counterexample_p1() -> Result<Option<Attack>, VerifyError> {
    let verifier = Verifier::new([CHAN]);
    verifier.find_attack(
        &single::plaintext(CHAN, OBSERVE),
        &single::abstract_protocol(CHAN, OBSERVE).expect("builds"),
    )
}

/// **Proposition 2.** `P2` (one session of `A → B : {M}K_AB`) securely
/// implements the abstract protocol `P`.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn proposition_2() -> Result<VerificationReport, VerifyError> {
    let verifier = Verifier::new([CHAN]);
    verifier.check(
        &single::shared_key(CHAN, OBSERVE),
        &single::abstract_protocol(CHAN, OBSERVE).expect("builds"),
    )
}

/// **Proposition 3.** In the multisession startup, instances pair off:
/// every revealed message still originates from an instance of `A`, and
/// no run delivers the same message twice — freshness by construction.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn proposition_3(sessions: u32) -> Result<OriginAudit, VerifyError> {
    let pm = multi::abstract_protocol(CHAN, OBSERVE).expect("builds");
    let verifier = Verifier::new([CHAN]).sessions(sessions);
    audit(&pm, &verifier)
}

/// **Section 5.2 counterexample.** `Pm2` (naively replicated `{M}K_AB`)
/// does not implement `Pm`: the intruder intercepts `{M}K_AB` and replays
/// it, making two instances of `B` accept the same message.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn counterexample_pm2(sessions: u32) -> Result<Option<Attack>, VerifyError> {
    let verifier = Verifier::new([CHAN]).sessions(sessions);
    verifier.find_attack(
        &multi::shared_key(CHAN, OBSERVE),
        &multi::abstract_protocol(CHAN, OBSERVE).expect("builds"),
    )
}

/// **Proposition 4.** The challenge-response `Pm3` securely implements
/// the multisession abstract protocol `Pm`.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn proposition_4(sessions: u32) -> Result<VerificationReport, VerifyError> {
    let verifier = Verifier::new([CHAN]).sessions(sessions);
    verifier.check(
        &multi::challenge_response(CHAN, OBSERVE),
        &multi::abstract_protocol(CHAN, OBSERVE).expect("builds"),
    )
}

/// **Section 5.2 counterexample, network edition.** The replay attack on
/// `Pm2` needs no intruder at all: a network that may *duplicate* a
/// single message in transit — keeping the original creator stamps, since
/// duplication is not re-creation — already makes two instances of `B`
/// accept the same located message, which the abstract `Pm` can never
/// show.  The localized channels of `Pm` refuse the faulty network
/// outright, so the same fault model leaves the specification untouched.
///
/// # Errors
///
/// Propagates exploration failures.
pub fn counterexample_pm2_faulty_network(sessions: u32) -> Result<Option<Attack>, VerifyError> {
    let verifier = Verifier::new([CHAN])
        .sessions(sessions)
        .no_intruder()
        .faults(spi_verify::faultsim::duplicate_only(CHAN, 1));
    verifier.find_attack(
        &multi::shared_key(CHAN, OBSERVE),
        &multi::abstract_protocol(CHAN, OBSERVE).expect("builds"),
    )
}

/// **Proposition 4, fault-tolerance edition.** `Pm3` (challenge-response)
/// stays a secure implementation of `Pm` under *every* single-fault
/// network schedule on the protocol channel: one drop, one duplication,
/// one reordering, or one replay-from-log.  Returns the per-schedule
/// verdicts (the schedule's display form first).
///
/// # Errors
///
/// Propagates exploration failures.
pub fn proposition_4_fault_tolerance(sessions: u32) -> Result<Vec<(String, Verdict)>, VerifyError> {
    let pm3 = multi::challenge_response(CHAN, OBSERVE);
    let pm = multi::abstract_protocol(CHAN, OBSERVE).expect("builds");
    let mut out = Vec::new();
    for schedule in spi_verify::faultsim::single_fault_schedules([CHAN], 1) {
        let label = schedule.to_string();
        let verifier = Verifier::new([CHAN])
            .sessions(sessions)
            .no_intruder()
            .faults(schedule);
        let report = verifier.check(&pm3, &pm)?;
        out.push((label, report.verdict));
    }
    Ok(out)
}

/// Convenience summary of a report's verdict for displays.
#[must_use]
pub fn verdict_line(report: &VerificationReport) -> String {
    match &report.verdict {
        Verdict::SecurelyImplements => format!(
            "securely implements the specification ({} concrete / {} abstract states, {} traces checked)",
            report.concrete_stats.states, report.abstract_stats.states, report.traces_checked
        ),
        Verdict::Attack(a) => format!(
            "ATTACK: distinguishing trace of length {} found",
            a.trace.len()
        ),
        Verdict::Inconclusive {
            exhausted,
            coverage,
        } => format!("INCONCLUSIVE: {exhausted} budget exhausted after {coverage}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposition_1_holds() {
        let audit = proposition_1().unwrap();
        assert!(audit.observations > 0, "B's continuation does run");
        assert!(audit.all_from_a, "every accepted message is A's");
        assert!(!audit.replay_found);
    }

    #[test]
    fn counterexample_p1_finds_the_paper_attack() {
        let attack = counterexample_p1().unwrap().expect("P1 is attackable");
        let text = attack.narration.join("\n");
        assert!(
            text.contains("E(A) → B") || text.contains("E( A"),
            "the injection is narrated: {text}"
        );
    }

    #[test]
    fn proposition_2_holds() {
        let report = proposition_2().unwrap();
        assert!(
            matches!(report.verdict, Verdict::SecurelyImplements),
            "{report:?}"
        );
    }

    #[test]
    fn duplicate_fault_alone_rediscovers_the_replay() {
        let attack = counterexample_pm2_faulty_network(2)
            .unwrap()
            .expect("a duplicating network suffices for the replay");
        let text = attack.narration.join("\n");
        assert!(
            text.contains("duplicate"),
            "the duplication appears in the narration: {text}"
        );
    }

    #[test]
    fn challenge_response_survives_every_single_fault() {
        for (schedule, verdict) in proposition_4_fault_tolerance(2).unwrap() {
            assert!(
                matches!(verdict, Verdict::SecurelyImplements),
                "Pm3 must stay verified under {schedule}: {verdict:?}"
            );
        }
    }
}
