//! Canonical state keys: configuration identity up to renaming of
//! machine-generated names.
//!
//! Two interleavings that allocate the same restricted names in different
//! orders produce configurations that differ only in [`NameId`] numbering.
//! The canonical key renumbers ids by first occurrence in a deterministic
//! left-to-right traversal, so explorers can deduplicate such states.
//! Free names are serialized by spelling (their identity), restricted
//! names by their creator position (which is part of the semantics — it
//! is what the authentication primitives observe).

use std::fmt::Write;

use spi_addr::{Path, ProcTree};

use crate::{Config, LeafState, NameId, NameTable, RtChanIndex, RtChannel, RtProcess, RtTerm};

/// Serializes a composite node's creator stamp.
fn write_creator<S: Write>(creator: &Option<Path>, out: &mut S) {
    match creator {
        Some(p) => {
            let _ = out.write_char('#');
            let _ = p.write_bits(out);
        }
        None => { let _ = out.write_str("#-"); }
    }
}

/// Writes a decimal number without going through `fmt::Arguments` —
/// canonical ids appear once per name occurrence, making this one of
/// the hottest writes in state serialization.
fn write_decimal<S: Write>(mut n: usize, out: &mut S) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if let Ok(digits) = std::str::from_utf8(&buf[i..]) {
        let _ = out.write_str(digits);
    }
}

/// Renumbers [`NameId`]s by first occurrence while serializing terms.
///
/// Explorers that carry extra state (e.g. intruder knowledge) extend the
/// configuration key by serializing their terms through the same
/// canonicalizer.
#[derive(Debug, Clone, Default)]
pub struct Canonicalizer {
    /// `NameId` index → canonical number + 1 (`0` = not yet assigned).
    /// A flat vector: ids are dense table indices, and this map is
    /// consulted once per name occurrence.
    map: Vec<u32>,
    /// Assignment journal: `order[k]` is the id numbered `k`.  Lets
    /// [`Canonicalizer::probe_term`] roll back precisely the
    /// assignments a probe introduced.
    order: Vec<NameId>,
}

impl Canonicalizer {
    /// A fresh canonicalizer.
    #[must_use]
    pub fn new() -> Canonicalizer {
        Canonicalizer::default()
    }

    fn canon_id<S: Write>(&mut self, id: NameId, names: &NameTable, out: &mut S) {
        let e = names.entry(id);
        if e.restricted {
            let slot = id.index();
            if slot >= self.map.len() {
                self.map.resize(slot + 1, 0);
            }
            let k = if self.map[slot] == 0 {
                self.order.push(id);
                self.map[slot] = u32::try_from(self.order.len()).unwrap_or(u32::MAX);
                self.order.len() - 1
            } else {
                (self.map[slot] - 1) as usize
            };
            let _ = out.write_char('r');
            write_decimal(k, out);
            let _ = out.write_char('@');
            match &e.creator {
                Some(p) => {
                    let _ = p.write_bits(out);
                }
                None => {
                    let _ = out.write_char('-');
                }
            }
        } else {
            let _ = out.write_str("f:");
            let _ = out.write_str(e.base.as_str());
        }
    }

    /// The assignment journal: `journal()[k]` is the [`NameId`] that was
    /// numbered `k` during serialization.  Two states with equal canonical
    /// strings have journals of equal length, and zipping them yields the
    /// name bijection witnessing the isomorphism — the symmetry quotient
    /// stores this to rename observations when a merged state's traces are
    /// extracted through its representative.
    #[must_use]
    pub fn journal(&self) -> &[NameId] {
        &self.order
    }

    /// Renders `t` as a canonical *probe*: ids already numbered keep
    /// their numbers, ids first seen during this rendering are numbered
    /// as usual but **forgotten afterwards**, leaving the canonicalizer
    /// exactly as it was.  Probes give order keys for sets of terms
    /// whose serialization order must not depend on the set's internal
    /// ([`NameId`]-based, allocation-history-dependent) order.
    #[must_use]
    pub fn probe_term(&mut self, t: &RtTerm, names: &NameTable) -> String {
        let saved = self.order.len();
        let mut out = String::new();
        self.write_term(t, names, &mut out);
        for id in self.order.drain(saved..) {
            self.map[id.index()] = 0;
        }
        out
    }

    /// Serializes a term into `out` with canonical name numbering.
    pub fn write_term<S: Write>(&mut self, t: &RtTerm, names: &NameTable, out: &mut S) {
        match t {
            RtTerm::Var(v) => {
                let _ = out.write_str("v:");
                let _ = out.write_str(v.as_str());
            }
            RtTerm::Sym(n) => {
                let _ = out.write_str("s:");
                let _ = out.write_str(n.as_str());
            }
            RtTerm::Id(id) => self.canon_id(*id, names, out),
            RtTerm::Pair { fst, snd, creator } => {
                let _ = out.write_char('(');
                self.write_term(fst, names, out);
                let _ = out.write_char(',');
                self.write_term(snd, names, out);
                let _ = out.write_char(')');
                write_creator(creator, out);
            }
            RtTerm::Enc { body, key, creator } => {
                let _ = out.write_char('{');
                for (i, x) in body.iter().enumerate() {
                    if i > 0 {
                        let _ = out.write_char(',');
                    }
                    self.write_term(x, names, out);
                }
                let _ = out.write_char('}');
                self.write_term(key, names, out);
                write_creator(creator, out);
            }
            RtTerm::LocatedLit { addr, inner } => {
                let _ = out.write_str("L[");
                let _ = addr.observer().write_bits(out);
                let _ = out.write_char('.');
                let _ = addr.target().write_bits(out);
                let _ = out.write_char(']');
                self.write_term(inner, names, out);
            }
        }
    }

    fn write_channel<S: Write>(&mut self, ch: &RtChannel, names: &NameTable, out: &mut S) {
        self.write_term(&ch.subject, names, out);
        match &ch.index {
            RtChanIndex::Plain => {}
            RtChanIndex::At(a) => {
                let _ = out.write_str("@?");
                let _ = a.observer().write_bits(out);
                let _ = out.write_char('.');
                let _ = a.target().write_bits(out);
            }
            RtChanIndex::AtAbs(p) => {
                let _ = out.write_char('@');
                let _ = p.write_bits(out);
            }
            RtChanIndex::Loc(l) => {
                let _ = write!(out, "@^{l}");
            }
        }
    }

    /// Serializes a residual process into `out`.
    pub fn write_process<S: Write>(&mut self, p: &RtProcess, names: &NameTable, out: &mut S) {
        match p {
            RtProcess::Nil => { let _ = out.write_char('0'); }
            RtProcess::Output(ch, t, cont) => {
                let _ = out.write_char('O');
                self.write_channel(ch, names, out);
                let _ = out.write_char('<');
                self.write_term(t, names, out);
                let _ = out.write_char('>');
                self.write_process(cont, names, out);
            }
            RtProcess::Input(ch, x, cont) => {
                let _ = out.write_char('I');
                self.write_channel(ch, names, out);
                let _ = out.write_char('(');
                let _ = out.write_str(x.as_str());
                let _ = out.write_char(')');
                self.write_process(cont, names, out);
            }
            RtProcess::Restrict(n, body) => {
                let _ = out.write_str("N(");
                let _ = out.write_str(n.as_str());
                let _ = out.write_char(')');
                self.write_process(body, names, out);
            }
            RtProcess::Par(l, r) => {
                let _ = out.write_char('[');
                self.write_process(l, names, out);
                let _ = out.write_char('|');
                self.write_process(r, names, out);
                let _ = out.write_char(']');
            }
            RtProcess::Match(a, b, cont) => {
                let _ = out.write_char('M');
                self.write_term(a, names, out);
                let _ = out.write_char('=');
                self.write_term(b, names, out);
                self.write_process(cont, names, out);
            }
            RtProcess::AddrMatchT(a, b, cont) => {
                let _ = out.write_char('A');
                self.write_term(a, names, out);
                let _ = out.write_char('~');
                self.write_term(b, names, out);
                self.write_process(cont, names, out);
            }
            RtProcess::AddrMatchL(a, l, cont) => {
                let _ = out.write_char('A');
                self.write_term(a, names, out);
                let _ = out.write_str("~@");
                let _ = l.observer().write_bits(out);
                let _ = out.write_char('.');
                let _ = l.target().write_bits(out);
                self.write_process(cont, names, out);
            }
            RtProcess::Bang(body) => {
                let _ = out.write_char('!');
                self.write_process(body, names, out);
            }
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => {
                let _ = out.write_char('S');
                self.write_term(pair, names, out);
                let _ = out.write_char('(');
                let _ = out.write_str(fst.as_str());
                let _ = out.write_char(',');
                let _ = out.write_str(snd.as_str());
                let _ = out.write_char(')');
                self.write_process(body, names, out);
            }
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                let _ = out.write_char('C');
                self.write_term(scrutinee, names, out);
                let _ = out.write_char('{');
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        let _ = out.write_char(',');
                    }
                    let _ = out.write_str(b.as_str());
                }
                let _ = out.write_char('}');
                self.write_term(key, names, out);
                let _ = out.write_char(':');
                self.write_process(body, names, out);
            }
        }
    }

    fn write_leaf<S: Write>(&mut self, leaf: &LeafState, names: &NameTable, out: &mut S) {
        match leaf {
            LeafState::Dead => { let _ = out.write_char('D'); }
            LeafState::Out {
                chan,
                payload,
                cont,
            } => {
                let _ = out.write_char('o');
                self.write_channel(chan, names, out);
                let _ = out.write_char('<');
                self.write_term(payload, names, out);
                let _ = out.write_char('>');
                self.write_process(cont, names, out);
            }
            LeafState::In { chan, var, cont } => {
                let _ = out.write_char('i');
                self.write_channel(chan, names, out);
                let _ = out.write_char('(');
                let _ = out.write_str(var.as_str());
                let _ = out.write_char(')');
                self.write_process(cont, names, out);
            }
            LeafState::Bang { body, unfolded } => {
                let _ = out.write_char('b');
                write_decimal(*unfolded as usize, out);
                self.write_process(body, names, out);
            }
        }
    }

    fn write_tree<S: Write>(&mut self, tree: &ProcTree<LeafState>, names: &NameTable, out: &mut S) {
        match tree {
            ProcTree::Leaf(l) => self.write_leaf(l, names, out),
            ProcTree::Node(l, r) => {
                let _ = out.write_char('(');
                self.write_tree(l, names, out);
                let _ = out.write_char(';');
                self.write_tree(r, names, out);
                let _ = out.write_char(')');
            }
        }
    }
}

impl Config {
    /// Serializes the configuration into `out` through `canon`, renaming
    /// machine names canonically.  Explorers append their own state (e.g.
    /// intruder knowledge) with the same canonicalizer to form a full
    /// state key.
    pub fn write_canonical<S: Write>(&self, canon: &mut Canonicalizer, out: &mut S) {
        canon.write_tree(&self.tree, &self.names, out);
    }

    /// The canonical key of this configuration alone.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let mut canon = Canonicalizer::new();
        let mut out = String::new();
        self.write_canonical(&mut canon, &mut out);
        out
    }

    /// The 128-bit canonical fingerprint of this configuration alone:
    /// the [`canonical_key`](Config::canonical_key) stream folded through
    /// a [`CanonHasher`] without materialising the string.
    #[must_use]
    pub fn canonical_hash(&self) -> u128 {
        let mut canon = Canonicalizer::new();
        let mut h = CanonHasher::new();
        self.write_canonical(&mut canon, &mut h);
        h.finish()
    }
}

/// An incremental 128-bit hasher that consumes the canonical
/// serialization stream through [`std::fmt::Write`], so every
/// `write_*` method of [`Canonicalizer`] can feed it directly instead
/// of a heap [`String`].
///
/// Hashing the *stream* (rather than a finished string) keeps state
/// interning allocation-free; the string path stays available for
/// debugging and for differential verification that the hash never
/// conflates distinct keys in practice.
///
/// The mixer is FNV-style (xor then multiply by the 128-bit FNV prime)
/// but absorbs 16-byte blocks per multiplication instead of single
/// bytes — state keys run to kilobytes, and one `u128` multiply per
/// byte dominated interning cost.  A rotation after each block keeps
/// high-order bits flowing back into the low half, and `finish` folds
/// the total length in and applies two finalization rounds so short
/// zero-padded tails cannot alias.
#[derive(Debug, Clone)]
pub struct CanonHasher {
    state: u128,
    /// Bytes not yet absorbed (a partial block).
    buf: [u8; 16],
    /// How many of `buf`'s bytes are pending.
    pending: usize,
    /// Total bytes written, folded in at `finish`.
    len: u64,
}

impl CanonHasher {
    /// FNV-1a 128-bit offset basis.
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    /// FNV-1a 128-bit prime.
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> CanonHasher {
        CanonHasher {
            state: Self::OFFSET,
            buf: [0; 16],
            pending: 0,
            len: 0,
        }
    }

    #[inline]
    fn absorb(&mut self, block: u128) {
        self.state = (self.state ^ block).wrapping_mul(Self::PRIME).rotate_left(29);
    }

    /// The 128-bit digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u128 {
        let mut h = self.clone();
        if h.pending > 0 {
            h.buf[h.pending..].fill(0);
            let tail = u128::from_le_bytes(h.buf);
            h.absorb(tail);
        }
        h.absorb(u128::from(h.len));
        let mut s = h.state;
        s ^= s >> 64;
        s = s.wrapping_mul(Self::PRIME);
        s ^= s >> 61;
        s
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        self.len += bytes.len() as u64;
        let mut rest = bytes;
        if self.pending > 0 {
            let take = rest.len().min(16 - self.pending);
            self.buf[self.pending..self.pending + take].copy_from_slice(&rest[..take]);
            self.pending += take;
            rest = &rest[take..];
            if self.pending < 16 {
                return;
            }
            let block = u128::from_le_bytes(self.buf);
            self.absorb(block);
            self.pending = 0;
        }
        let mut chunks = rest.chunks_exact(16);
        for chunk in &mut chunks {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.absorb(u128::from_le_bytes(block));
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.pending = tail.len();
    }
}

impl Default for CanonHasher {
    fn default() -> CanonHasher {
        CanonHasher::new()
    }
}

impl Write for CanonHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn keys_are_stable_for_equal_configs() {
        let a = cfg("(^m) c<m> | d(x)");
        let b = cfg("(^m) c<m> | d(x)");
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn keys_distinguish_different_configs() {
        assert_ne!(
            cfg("(^m) c<m>").canonical_key(),
            cfg("(^m) d<m>").canonical_key()
        );
        assert_ne!(
            cfg("c<m> | d(x)").canonical_key(),
            cfg("d(x) | c<m>").canonical_key(),
            "tree shape is semantically relevant (addresses)"
        );
    }

    #[test]
    fn keys_identify_interleavings_with_permuted_allocation() {
        // Two independent pairs; allocate in either order.
        let src = "((^m) c<m> | c(x)) | ((^n) d<n> | d(y))";
        let mut left_first = cfg(src);
        let mut right_first = cfg(src);
        let comm_left = Action::Comm {
            out_path: p("00"),
            in_path: p("01"),
        };
        let comm_right = Action::Comm {
            out_path: p("10"),
            in_path: p("11"),
        };
        left_first.fire(&comm_left).unwrap();
        left_first.fire(&comm_right).unwrap();
        right_first.fire(&comm_right).unwrap();
        right_first.fire(&comm_left).unwrap();
        // The raw configurations differ in NameId numbering...
        // ...but the canonical keys agree.
        assert_eq!(left_first.canonical_key(), right_first.canonical_key());
    }

    #[test]
    fn free_names_serialize_by_spelling() {
        let key = cfg("c<m>").canonical_key();
        assert!(key.contains("f:c"));
        assert!(key.contains("f:m"));
    }

    #[test]
    fn restricted_names_serialize_with_creator() {
        let key = cfg("(^m) c<m>").canonical_key();
        assert!(key.contains("r0@e"), "creator position recorded: {key}");
    }
}
