//! Bounded state-space exploration with the most-general intruder.

use std::collections::{BTreeSet, HashMap, VecDeque};

use spi_addr::Path;
use spi_semantics::{
    Barb, Canonicalizer, Config, LeafState, NameTable, RtChanIndex, RtProcess, RtTerm, StepInfo,
};
use spi_syntax::{Name, Process};

use crate::{Knowledge, ObsEvent, ObsTerm, VerifyError};

/// The most-general bounded intruder of the paper's attacker class `E_C`.
///
/// The intruder occupies a fixed position of the process tree (usually
/// the right sibling of the protocol in `(νC)(P | X)`), communicates only
/// over the channels whose base spelling is listed in `channels` — the
/// set `C` of Definition 4 — and may invent up to `fresh_budget` fresh
/// names of its own (the `(νM_E)` of the paper's attack on `P1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntruderSpec {
    /// The intruder's tree position.
    pub position: Path,
    /// The base spellings of the protocol channels `C`.
    pub channels: BTreeSet<Name>,
    /// How many fresh names the intruder may create.
    pub fresh_budget: u32,
    /// Cap on freshly synthesized ciphertext candidates per injection.
    pub synth_cap: usize,
}

impl IntruderSpec {
    /// An intruder at `position` talking over `channels`, with one fresh
    /// name and a small synthesis cap.
    #[must_use]
    pub fn new<I, N>(position: Path, channels: I) -> IntruderSpec
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        IntruderSpec {
            position,
            channels: channels.into_iter().map(Into::into).collect(),
            fresh_budget: 1,
            synth_cap: 16,
        }
    }
}

/// Bounds and switches for exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Hard cap on distinct states; exceeding it raises
    /// [`VerifyError::StateBudgetExceeded`].
    pub max_states: usize,
    /// How many copies each replication may spawn.
    pub unfold_bound: u32,
    /// The intruder, if any.
    pub intruder: Option<IntruderSpec>,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            max_states: 50_000,
            unfold_bound: 2,
            intruder: None,
        }
    }
}

/// What a silent edge did — kept for narration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepDesc {
    /// An internal machine step (communication or unfolding).
    Internal(StepInfo),
    /// The intruder intercepted an output.
    Intercept {
        /// The sender's position.
        from: Path,
        /// The channel subject.
        subject: RtTerm,
        /// The intercepted message.
        payload: RtTerm,
    },
    /// The intruder injected a message into an input.
    Inject {
        /// The receiver's position.
        to: Path,
        /// The channel subject.
        subject: RtTerm,
        /// The injected message.
        payload: RtTerm,
    },
    /// A continuation output was consumed by the (notional) tester.
    Observe {
        /// The sender's position.
        from: Path,
        /// The free channel.
        chan: Name,
        /// The observed message.
        payload: RtTerm,
    },
}

impl StepDesc {
    /// Renders the step for diagnostics, using `names` for display.
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        match self {
            StepDesc::Internal(StepInfo::Comm(ci)) => format!(
                "comm {} → {} : {} on {}",
                ci.sender.to_bits(),
                ci.receiver.to_bits(),
                ci.payload.display(names),
                ci.subject.display(names)
            ),
            StepDesc::Internal(StepInfo::Unfold { path }) => {
                format!("unfold at {}", path.to_bits())
            }
            StepDesc::Intercept {
                from,
                subject,
                payload,
            } => format!(
                "intercept {} : {} on {}",
                from.to_bits(),
                payload.display(names),
                subject.display(names)
            ),
            StepDesc::Inject {
                to,
                subject,
                payload,
            } => format!(
                "inject → {} : {} on {}",
                to.to_bits(),
                payload.display(names),
                subject.display(names)
            ),
            StepDesc::Observe {
                from,
                chan,
                payload,
            } => format!(
                "observe {} : {} on {}",
                from.to_bits(),
                payload.display(names),
                chan
            ),
        }
    }
}

/// An edge label: silent or visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// A silent step (internal, or an intruder move — the paper's testing
    /// scenario makes the attacker's activity unobservable).
    Tau(StepDesc),
    /// A visible observation by the tester.
    Obs(ObsEvent, StepDesc),
}

impl Label {
    /// The observation, for visible edges.
    #[must_use]
    pub fn obs(&self) -> Option<&ObsEvent> {
        match self {
            Label::Obs(ev, _) => Some(ev),
            Label::Tau(_) => None,
        }
    }

    /// The step description.
    #[must_use]
    pub fn desc(&self) -> &StepDesc {
        match self {
            Label::Tau(d) | Label::Obs(_, d) => d,
        }
    }
}

/// One explored state.
#[derive(Debug, Clone)]
pub struct LtsState {
    /// Canonical identity.
    pub key: String,
    /// The barbs exhibited here.
    pub barbs: BTreeSet<Barb>,
    /// Outgoing edges.
    pub edges: Vec<(Label, usize)>,
    /// The configuration (for narration and diagnostics).
    pub config: Config,
    /// The intruder knowledge at this state.
    pub knowledge: Knowledge,
}

/// Exploration statistics, reported with every verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of distinct states.
    pub states: usize,
    /// Number of edges.
    pub edges: usize,
}

/// The labelled transition system produced by an [`Explorer`].
#[derive(Debug, Clone)]
pub struct Lts {
    /// All states; index 0 is the initial one.
    pub states: Vec<LtsState>,
    /// Statistics.
    pub stats: ExploreStats,
}

impl Lts {
    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> &LtsState {
        &self.states[0]
    }

    /// All states reachable from `from` by silent steps (including
    /// `from`).
    #[must_use]
    pub fn tau_closure(&self, from: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([from]);
        let mut work = vec![from];
        while let Some(s) = work.pop() {
            for (label, tgt) in &self.states[s].edges {
                if matches!(label, Label::Tau(_)) && seen.insert(*tgt) {
                    work.push(*tgt);
                }
            }
        }
        seen
    }

    /// The indices of *stuck* states: no outgoing edge, yet some live
    /// component remains (an I/O prefix waiting forever, or a replication
    /// at its unfold bound).  Fully exhausted terminal states are not
    /// reported — graceful termination is not a deadlock.
    #[must_use]
    pub fn deadlocks(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.edges.is_empty() && !s.config.is_exhausted())
            .map(|(i, _)| i)
            .collect()
    }

    /// The barbs weakly reachable from the initial state:
    /// `P ⇓ β` for every reported barb.
    #[must_use]
    pub fn weak_barbs(&self) -> BTreeSet<Barb> {
        let mut out = BTreeSet::new();
        let mut seen = vec![false; self.states.len()];
        let mut work = vec![0usize];
        seen[0] = true;
        while let Some(s) = work.pop() {
            out.extend(self.states[s].barbs.iter().cloned());
            for (_, tgt) in &self.states[s].edges {
                if !seen[*tgt] {
                    seen[*tgt] = true;
                    work.push(*tgt);
                }
            }
        }
        out
    }
}

/// Explores the bounded state space of a closed process, optionally under
/// attack by the most-general intruder.
///
/// # Example
///
/// ```
/// use spi_verify::{Explorer, ExploreOptions};
/// use spi_syntax::parse;
///
/// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
/// let lts = Explorer::new(ExploreOptions::default()).explore(&p)?;
/// assert!(lts.stats.states >= 2);
/// assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    opts: ExploreOptions,
}

#[derive(Debug, Clone)]
struct StateData {
    cfg: Config,
    knowledge: Knowledge,
    fresh_made: u32,
}

impl StateData {
    fn key(&self) -> String {
        let mut canon = Canonicalizer::new();
        let mut out = String::new();
        self.cfg.write_canonical(&mut canon, &mut out);
        out.push('|');
        for t in self.knowledge.iter() {
            canon.write_term(t, self.cfg.names(), &mut out);
            out.push(',');
        }
        out.push('|');
        out.push_str(&self.fresh_made.to_string());
        out
    }
}

impl Explorer {
    /// An explorer with the given options.
    #[must_use]
    pub fn new(opts: ExploreOptions) -> Explorer {
        Explorer { opts }
    }

    /// Explores the state space of `process`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::StateBudgetExceeded`] when the bounded state
    /// space does not fit in [`ExploreOptions::max_states`], and machine
    /// errors on malformed processes.
    pub fn explore(&self, process: &Process) -> Result<Lts, VerifyError> {
        let cfg = Config::from_process(process)?;
        let mut knowledge = Knowledge::new();
        if let Some(spec) = &self.opts.intruder {
            // Initial knowledge: every free name, plus the restricted
            // channel set C allocated at load.
            for (id, e) in cfg.names().iter() {
                if !e.restricted || spec.channels.contains(&e.base) {
                    knowledge.learn(RtTerm::Id(id));
                }
            }
        }
        let initial = StateData {
            cfg,
            knowledge,
            fresh_made: 0,
        };

        let mut states: Vec<LtsState> = Vec::new();
        let mut data: Vec<StateData> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let intern = |sd: StateData,
                      states: &mut Vec<LtsState>,
                      data: &mut Vec<StateData>,
                      index: &mut HashMap<String, usize>,
                      queue: &mut VecDeque<usize>|
         -> Result<usize, VerifyError> {
            let key = sd.key();
            if let Some(&i) = index.get(&key) {
                return Ok(i);
            }
            if states.len() >= self.opts.max_states {
                return Err(VerifyError::StateBudgetExceeded {
                    max_states: self.opts.max_states,
                });
            }
            let i = states.len();
            states.push(LtsState {
                key: key.clone(),
                barbs: sd.cfg.barbs(),
                edges: Vec::new(),
                config: sd.cfg.clone(),
                knowledge: sd.knowledge.clone(),
            });
            data.push(sd);
            index.insert(key, i);
            queue.push_back(i);
            Ok(i)
        };

        intern(initial, &mut states, &mut data, &mut index, &mut queue)?;

        let mut edges_total = 0usize;
        while let Some(cur) = queue.pop_front() {
            let sd = data[cur].clone();
            for (label, next) in self.successors(&sd)? {
                let tgt = intern(next, &mut states, &mut data, &mut index, &mut queue)?;
                states[cur].edges.push((label, tgt));
                edges_total += 1;
            }
        }

        let stats = ExploreStats {
            states: states.len(),
            edges: edges_total,
        };
        Ok(Lts { states, stats })
    }

    /// All successor states of `sd` with their labels.
    fn successors(&self, sd: &StateData) -> Result<Vec<(Label, StateData)>, VerifyError> {
        let mut out = Vec::new();

        // Internal machine actions.
        for action in sd.cfg.enabled(self.opts.unfold_bound) {
            let mut next = sd.clone();
            let info = next.cfg.fire(&action)?;
            out.push((Label::Tau(StepDesc::Internal(info)), next));
        }

        // Visible outputs: continuation outputs on free, unlocalized
        // channels, consumed by the notional tester.
        for (path, leaf) in sd.cfg.tree().leaves() {
            let LeafState::Out { chan, .. } = leaf else {
                continue;
            };
            let RtTerm::Id(id) = &chan.subject else {
                continue;
            };
            if !sd.cfg.names().is_free(*id) || chan.index != RtChanIndex::Plain {
                continue;
            }
            let chan_base = sd.cfg.names().entry(*id).base.clone();
            if let Some(spec) = &self.opts.intruder {
                // Channels in C are never tester-visible (Definition 4
                // restricts them); if the user left them free, keep them
                // intruder-only.
                if spec.channels.contains(&chan_base) {
                    continue;
                }
            }
            let mut next = sd.clone();
            let (payload, _) = next.cfg.take_output(&path, &path)?;
            let ev = ObsEvent {
                chan: chan_base.clone(),
                payload: ObsTerm::from_rt(&payload, next.cfg.names()),
            };
            let desc = StepDesc::Observe {
                from: path.clone(),
                chan: chan_base,
                payload,
            };
            out.push((Label::Obs(ev, desc), next));
        }

        // Intruder moves.
        if let Some(spec) = &self.opts.intruder {
            self.intruder_moves(sd, spec, &mut out)?;
        }

        Ok(out)
    }

    fn intruder_moves(
        &self,
        sd: &StateData,
        spec: &IntruderSpec,
        out: &mut Vec<(Label, StateData)>,
    ) -> Result<(), VerifyError> {
        let on_c = |subject: &RtTerm, names: &NameTable| -> bool {
            match subject {
                RtTerm::Id(id) => spec.channels.contains(&names.entry(*id).base),
                _ => false,
            }
        };

        for (path, leaf) in sd.cfg.tree().leaves() {
            match leaf {
                LeafState::Out { chan, .. } if on_c(&chan.subject, sd.cfg.names()) => {
                    // Intercept, if the localization lets the intruder in.
                    let mut next = sd.clone();
                    // A failed take_output means the localization refused
                    // the intruder — simply no intercept move.
                    if let Ok((payload, _)) = next.cfg.take_output(&path, &spec.position) {
                        next.knowledge.learn(payload.clone());
                        out.push((
                            Label::Tau(StepDesc::Intercept {
                                from: path.clone(),
                                subject: chan.subject.clone(),
                                payload,
                            }),
                            next,
                        ));
                    }
                }
                LeafState::In { chan, var, cont } if on_c(&chan.subject, sd.cfg.names()) => {
                    for candidate in self.injection_candidates(sd, spec, var, cont) {
                        let mut next = sd.clone();
                        let payload = match candidate {
                            Candidate::Known(t) => t,
                            Candidate::Fresh => {
                                let id = next
                                    .cfg
                                    .alloc_env_name(&Name::new("mE"), spec.position.clone());
                                next.fresh_made += 1;
                                next.knowledge.learn(RtTerm::Id(id));
                                RtTerm::Id(id)
                            }
                        };
                        // As above: a refusal just means no inject move.
                        if next
                            .cfg
                            .deliver(&path, payload.clone(), spec.position.clone())
                            .is_ok()
                        {
                            out.push((
                                Label::Tau(StepDesc::Inject {
                                    to: path.clone(),
                                    subject: chan.subject.clone(),
                                    payload,
                                }),
                                next,
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Candidate payloads for injecting into an input: everything
    /// analyzed, one fresh name (budget permitting), and — when the
    /// receiver's continuation immediately decrypts under a known shape —
    /// ciphertexts of that shape.
    fn injection_candidates(
        &self,
        sd: &StateData,
        spec: &IntruderSpec,
        var: &spi_syntax::Var,
        cont: &RtProcess,
    ) -> Vec<Candidate> {
        let mut cands: Vec<Candidate> =
            sd.knowledge.iter().cloned().map(Candidate::Known).collect();
        if sd.fresh_made < spec.fresh_budget {
            cands.push(Candidate::Fresh);
        }
        match expected_shape(var, cont) {
            Some(Shape::Cipher { key, arity }) => {
                for t in sd
                    .knowledge
                    .ciphertext_candidates(&key, arity, spec.synth_cap)
                {
                    let c = Candidate::Known(t);
                    if !cands.contains(&c) {
                        cands.push(c);
                    }
                }
            }
            Some(Shape::Pair) => {
                // Synthesize pairs of analyzed messages, capped.
                let atoms: Vec<RtTerm> = sd.knowledge.iter().cloned().collect();
                'outer: for a in &atoms {
                    for b in &atoms {
                        let c = Candidate::Known(RtTerm::Pair {
                            fst: Box::new(a.clone()),
                            snd: Box::new(b.clone()),
                            creator: None,
                        });
                        if !cands.contains(&c) {
                            cands.push(c);
                        }
                        if cands.len() > spec.synth_cap + sd.knowledge.len() + 1 {
                            break 'outer;
                        }
                    }
                }
            }
            None => {}
        }
        cands
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Candidate {
    Known(RtTerm),
    Fresh,
}

/// The message shape the receiver's continuation expects of its input.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    /// The input is immediately decrypted: `case x of {…}key`.
    Cipher { key: RtTerm, arity: usize },
    /// The input is immediately projected: `let (y, z) = x in …`.
    Pair,
}

/// When the continuation of an input binding `var` immediately destructs
/// `var` (possibly under restrictions and matchings), the expected shape
/// guides injection synthesis.
fn expected_shape(var: &spi_syntax::Var, cont: &RtProcess) -> Option<Shape> {
    let mut cur = cont;
    loop {
        match cur {
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                ..
            } if scrutinee == &RtTerm::Var(var.clone()) && key.is_message() => {
                return Some(Shape::Cipher {
                    key: key.clone(),
                    arity: binders.len(),
                });
            }
            RtProcess::Split { pair, .. } if pair == &RtTerm::Var(var.clone()) => {
                return Some(Shape::Pair);
            }
            RtProcess::Restrict(_, body) => cur = body,
            RtProcess::Match(_, _, c)
            | RtProcess::AddrMatchT(_, _, c)
            | RtProcess::AddrMatchL(_, _, c) => cur = c,
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn explore(src: &str, opts: ExploreOptions) -> Lts {
        Explorer::new(opts)
            .explore(&parse(src).expect("parses"))
            .expect("explores")
    }

    #[test]
    fn tiny_system_explores_fully() {
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        // τ comm, then an observation.
        assert!(lts.stats.states >= 3);
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn deterministic_exploration_dedupes_interleavings() {
        let lts = explore(
            "(^c, d)(((^m) c<m> | c(x)) | ((^n) d<n> | d(y)))",
            ExploreOptions::default(),
        );
        // Four states: nothing fired, left fired, right fired, both — the
        // two interleavings of "both" merge canonically.
        assert_eq!(lts.stats.states, 4);
    }

    #[test]
    fn state_budget_is_enforced() {
        let err = Explorer::new(ExploreOptions {
            max_states: 2,
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .unwrap_err();
        assert!(matches!(err, VerifyError::StateBudgetExceeded { .. }));
    }

    #[test]
    fn intruder_intercepts_unlocalized_outputs() {
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)(((^m) c<m> | c(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        // Some edge is an intercept.
        let has_intercept = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Intercept { .. }))
        });
        assert!(has_intercept);
    }

    #[test]
    fn intruder_injects_fresh_names() {
        // B accepts anything on c and reveals it.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)((c(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let has_inject = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Inject { .. }))
        });
        assert!(has_inject, "the intruder can invent and inject a name");
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn intruder_respects_partner_authentication() {
        // The input is localized at the honest sender's position ‖0‖0:
        // the intruder (at ‖1) cannot inject.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)(((^m) c<m> | c@(1.0)(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let has_inject = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Inject { .. }))
        });
        assert!(!has_inject, "localized input refuses the intruder");
        // The honest communication still happens.
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn intruder_cannot_touch_unknown_channels() {
        // The protocol talks on a restricted s ∉ C.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^s)((s<m> | s(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let touched = lts.states.iter().any(|s| {
            s.edges.iter().any(|(l, _)| {
                matches!(
                    l.desc(),
                    StepDesc::Intercept { .. } | StepDesc::Inject { .. }
                )
            })
        });
        assert!(!touched);
    }

    #[test]
    fn observations_record_origin() {
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        let mut found = false;
        for s in &lts.states {
            for (l, _) in &s.edges {
                if let Some(ev) = l.obs() {
                    if let ObsTerm::Fresh { creator, .. } = &ev.payload {
                        assert_eq!(creator.to_bits(), "e");
                        found = true;
                    }
                }
            }
        }
        assert!(found, "the observation carries the creator position");
    }

    #[test]
    fn deadlocks_report_stuck_states_only() {
        // A receiver that can never be served: stuck, not exhausted.
        let lts = explore("(^c) c(x).observe<x>", ExploreOptions::default());
        assert_eq!(lts.deadlocks(), vec![0]);
        // A system that runs to completion (the protocol channel is
        // restricted so the observer cannot steal the message): the
        // terminal state is exhausted — no deadlock.
        let lts = explore("(^c, m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        assert!(lts.deadlocks().is_empty(), "completion is not a deadlock");
        // With the channel free, the observer may eat the message and
        // starve the receiver: that IS a deadlock.
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        assert!(!lts.deadlocks().is_empty(), "a starved receiver is stuck");
    }

    #[test]
    fn replication_explores_up_to_the_unfold_bound() {
        let lts1 = explore(
            "!(^m) c<m> | c(x).observe<x>",
            ExploreOptions {
                unfold_bound: 1,
                ..ExploreOptions::default()
            },
        );
        let lts2 = explore(
            "!(^m) c<m> | c(x).observe<x>",
            ExploreOptions {
                unfold_bound: 2,
                ..ExploreOptions::default()
            },
        );
        assert!(lts2.stats.states > lts1.stats.states);
    }
}
