//! A small deep-clone reference stepper for differential testing.
//!
//! The production explorer in `spi-verify` leans on two optimizations:
//! copy-on-write configurations (`Arc`-shared process trees and name
//! tables, copied lazily at first mutation) and 128-bit hashed canonical
//! state keys.  This module is the *independent oracle* those
//! optimizations are checked against: it re-enumerates the same
//! successor relation with the plainest possible machinery — full
//! structural deep clones and full canonical-string state identities —
//! and reports the set of reachable states.  It shares only the
//! single-step machine ([`Config::enabled`] / [`Config::fire`] /
//! [`Config::take_output`]) with the optimized path, so a copy-on-write
//! aliasing bug, a stale-`Arc` mutation leaking into a sibling state, or
//! a canonical-key collision all show up as a reachable-set mismatch.
//!
//! The successor relation mirrors the explorer's *intruder-free,
//! fault-free* moves exactly: every enabled internal action, plus one
//! tester observation per continuation output on a free, unlocalized
//! channel (the explorer's `Observe` edges, fired through
//! [`Config::take_output`] with the sender's own position as receiver).

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use spi_addr::ProcTree;
use spi_syntax::Process;

use crate::{Config, LeafState, MachineError, RtChanIndex, RtTerm};

/// How the reference stepper copies a configuration before mutating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloneMode {
    /// The production discipline: [`Clone`] on [`Config`] bumps the
    /// shared `Arc`s; copy-on-write kicks in at the first mutation.
    Cow,
    /// The reference discipline: [`Config::deep_clone`] structurally
    /// copies every tree node, leaf, and the name table, so successor
    /// states share no storage whatsoever.
    Deep,
}

impl Config {
    /// A structural deep copy sharing no storage with `self`: every
    /// [`ProcTree`] node is rebuilt (no `Arc` is reused) and the name
    /// table is copied wholesale.  Differential tests step a deep clone
    /// and a [`Clone`] copy side by side — if copy-on-write ever leaked a
    /// mutation between siblings, the two would diverge.
    #[must_use]
    pub fn deep_clone(&self) -> Config {
        fn deep(t: &ProcTree<LeafState>) -> ProcTree<LeafState> {
            match t {
                ProcTree::Leaf(v) => ProcTree::Leaf(v.clone()),
                ProcTree::Node(l, r) => ProcTree::node(deep(l), deep(r)),
            }
        }
        Config {
            tree: Arc::new(deep(&self.tree)),
            names: Arc::new((*self.names).clone()),
        }
    }
}

/// The bounded reachable state set computed by [`reachable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reachable {
    /// The canonical keys ([`Config::canonical_key`]) of every reached
    /// configuration, the initial one included.
    pub keys: BTreeSet<String>,
    /// `false` when the `max_states` cap cut the search short — a
    /// truncated set must not be compared against a complete one.
    pub complete: bool,
}

/// Copies `cfg` under `mode`.
fn dup(cfg: &Config, mode: CloneMode) -> Config {
    match mode {
        CloneMode::Cow => cfg.clone(),
        CloneMode::Deep => cfg.deep_clone(),
    }
}

/// Every successor configuration of `cfg` under the intruder-free,
/// fault-free move relation: enabled internal actions plus tester
/// observations of outputs on free, unlocalized channels.
///
/// # Errors
///
/// Propagates machine errors from firing — which would indicate a bug,
/// since only enabled moves are fired.
pub fn successors(
    cfg: &Config,
    unfold_bound: u32,
    mode: CloneMode,
) -> Result<Vec<Config>, MachineError> {
    let mut out = Vec::new();
    for action in cfg.enabled(unfold_bound) {
        let mut next = dup(cfg, mode);
        next.fire(&action)?;
        out.push(next);
    }
    for (path, leaf) in cfg.tree().leaves() {
        let LeafState::Out { chan, .. } = leaf else {
            continue;
        };
        let RtTerm::Id(id) = &chan.subject else {
            continue;
        };
        if !cfg.names().is_free(*id) || chan.index != RtChanIndex::Plain {
            continue;
        }
        let mut next = dup(cfg, mode);
        next.take_output(&path, &path)?;
        out.push(next);
    }
    Ok(out)
}

/// Breadth-first reachable set of `process` under the reference move
/// relation, deduplicated on full canonical-key strings.  At most
/// `max_states` distinct states are collected; hitting the cap clears
/// [`Reachable::complete`].
///
/// # Errors
///
/// Returns [`MachineError`] when the process fails to load (open
/// process, located-literal payload) or a fired move misbehaves.
pub fn reachable(
    process: &Process,
    unfold_bound: u32,
    max_states: usize,
    mode: CloneMode,
) -> Result<Reachable, MachineError> {
    let cfg = Config::from_process(process)?;
    let mut keys = BTreeSet::new();
    keys.insert(cfg.canonical_key());
    let mut queue = VecDeque::from([cfg]);
    let mut complete = true;
    while let Some(cur) = queue.pop_front() {
        if !complete {
            break;
        }
        for next in successors(&cur, unfold_bound, mode)? {
            let key = next.canonical_key();
            if keys.contains(&key) {
                continue;
            }
            if keys.len() >= max_states {
                complete = false;
                continue;
            }
            keys.insert(key);
            queue.push_back(next);
        }
    }
    Ok(Reachable { keys, complete })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn reach(src: &str, mode: CloneMode) -> Reachable {
        reachable(&parse(src).expect("parses"), 2, 10_000, mode).expect("steps")
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let cfg = Config::from_process(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap()).unwrap();
        let deep = cfg.deep_clone();
        assert_eq!(cfg, deep);
        assert!(!Arc::ptr_eq(&cfg.names, &deep.names));
        if let (ProcTree::Node(a, _), ProcTree::Node(b, _)) = (&*cfg.tree, &*deep.tree) {
            assert!(!Arc::ptr_eq(a, b), "children are rebuilt, not re-shared");
        } else {
            panic!("expected a parallel node");
        }
    }

    #[test]
    fn cow_and_deep_agree_on_examples() {
        for src in [
            "(^m)(c<m> | c(x).observe<x>)",
            "(^c, d)(((^m) c<m> | c(x)) | ((^n) d<n> | d(y)))",
            "!(^m) c<m> | c(x).observe<x>",
            "(^k)((^m) c<{m}k> | c(z).case z of {w}k in observe<w>)",
        ] {
            let cow = reach(src, CloneMode::Cow);
            let deep = reach(src, CloneMode::Deep);
            assert!(cow.complete && deep.complete);
            assert_eq!(cow, deep, "{src}");
        }
    }

    #[test]
    fn truncation_is_reported() {
        let r = reachable(
            &parse("(^m)(c<m> | c(x).observe<x>)").unwrap(),
            2,
            1,
            CloneMode::Deep,
        )
        .expect("steps");
        assert!(!r.complete);
        assert_eq!(r.keys.len(), 1);
    }
}
