//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::strategy::{AnyBool, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}
