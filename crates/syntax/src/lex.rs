//! Lexer for the concrete syntax.

use std::fmt;

use crate::{Span, SyntaxError};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier: a letter or `_` followed by letters, digits, `_` or
    /// `'`.  Keywords (`case`, `of`, `in`) are reported as identifiers and
    /// recognized by the parser.
    Ident(String),
    /// A run of decimal digits, used for the nil process `0` and for the
    /// bit strings of address literals.
    Number(String),
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `~`
    Tilde,
    /// `@`
    At,
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(s) => format!("number `{s}`"),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Tilde => "`~`".into(),
            TokenKind::At => "`@`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

/// A lexer over a source string.
///
/// Whitespace separates tokens; line comments start with `--` or `//` and
/// run to the end of the line.
///
/// # Example
///
/// ```
/// use spi_syntax::{Lexer, TokenKind};
///
/// let tokens = Lexer::new("c<m>.0 -- send m").tokenize()?;
/// assert_eq!(tokens.len(), 7); // c < m > . 0 EOF
/// assert_eq!(tokens[0].kind, TokenKind::Ident("c".into()));
/// assert_eq!(tokens[5].kind, TokenKind::Number("0".into()));
/// assert_eq!(tokens[6].kind, TokenKind::Eof);
/// # Ok::<(), spi_syntax::SyntaxError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> Lexer<'s> {
    /// Builds a lexer over `src`.
    #[must_use]
    pub fn new(src: &'s str) -> Lexer<'s> {
        Lexer { src, pos: 0 }
    }

    /// Lexes the whole input, ending with a [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a [`SyntaxError`] at the first character that cannot start
    /// a token.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.src[self.pos..].starts_with("--") => self.skip_line(),
                Some('/') if self.src[self.pos..].starts_with("//") => self.skip_line(),
                _ => return,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.peek_char() {
            self.bump();
            if c == '\n' {
                return;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SyntaxError> {
        self.skip_trivia();
        let start = self.pos;
        let Some(c) = self.peek_char() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::point(start),
            });
        };
        let kind = match c {
            '<' => self.single(TokenKind::Lt),
            '>' => self.single(TokenKind::Gt),
            '(' => self.single(TokenKind::LParen),
            ')' => self.single(TokenKind::RParen),
            '{' => self.single(TokenKind::LBrace),
            '}' => self.single(TokenKind::RBrace),
            '[' => self.single(TokenKind::LBracket),
            ']' => self.single(TokenKind::RBracket),
            '.' => self.single(TokenKind::Dot),
            ',' => self.single(TokenKind::Comma),
            '|' => self.single(TokenKind::Pipe),
            '!' => self.single(TokenKind::Bang),
            '=' => self.single(TokenKind::Eq),
            '~' => self.single(TokenKind::Tilde),
            '@' => self.single(TokenKind::At),
            '^' => self.single(TokenKind::Caret),
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(d) = self.peek_char() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Number(text)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(d) = self.peek_char() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        text.push(d);
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(text)
            }
            other => {
                return Err(SyntaxError::new(
                    format!("unexpected character {other:?}"),
                    Span::new(start, start + other.len_utf8()),
                ))
            }
        };
        Ok(Token {
            kind,
            span: Span::new(start, self.pos),
        })
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lexes")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_process() {
        assert_eq!(
            kinds("c<m>.0"),
            vec![
                TokenKind::Ident("c".into()),
                TokenKind::Lt,
                TokenKind::Ident("m".into()),
                TokenKind::Gt,
                TokenKind::Dot,
                TokenKind::Number("0".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_address_literal_tokens() {
        assert_eq!(
            kinds("@(01.110)"),
            vec![
                TokenKind::At,
                TokenKind::LParen,
                TokenKind::Number("01".into()),
                TokenKind::Dot,
                TokenKind::Number("110".into()),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        assert_eq!(
            kinds("c -- comment\n  <m> // more\n"),
            vec![
                TokenKind::Ident("c".into()),
                TokenKind::Lt,
                TokenKind::Ident("m".into()),
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers_allow_primes_and_underscores() {
        assert_eq!(
            kinds("B' k_AB"),
            vec![
                TokenKind::Ident("B'".into()),
                TokenKind::Ident("k_AB".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        let err = Lexer::new("c $ d").tokenize().unwrap_err();
        assert!(err.message().contains("unexpected character"));
        assert_eq!(err.span().start, 2);
    }

    #[test]
    fn spans_point_into_source() {
        let toks = Lexer::new("ab cd").tokenize().unwrap();
        assert_eq!(toks[1].span.slice("ab cd"), "cd");
    }
}
