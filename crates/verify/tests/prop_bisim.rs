//! Property-based tests of the second decision procedure: the hedged
//! bisimulation engine agrees with the trace engine on arbitrary
//! systems (at every reduction setting and worker count), the hedge's
//! analysis closure is idempotent and saturated, and every
//! counterexample the bisimulation checker extracts replays as a real
//! distinguishing trace.

use proptest::prelude::*;
use spi_addr::Path;
use spi_syntax::{Name, Process, Term, Var};
use spi_verify::{
    bisim_preorder_sound, trace_preorder_sound, weak_traces, Budget, ExploreOptions, Explorer,
    Hedge, Lts, ObsTerm, ReduceOptions, TraceVerdict,
};

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("c")),
        Just(Name::new("d")),
        Just(Name::new("m")),
    ]
}

/// A payload that sometimes hides the session nonce under encryption —
/// the shape that exercises the hedge's ciphertext analysis rule.
fn arb_payload() -> impl Strategy<Value = Term> {
    (arb_name(), AnyBool).prop_map(|(m, encrypt)| {
        if encrypt {
            Term::enc(vec![Term::Name(m)], Term::name("k"))
        } else {
            Term::Name(m)
        }
    })
}

/// A small closed process over the public channels `c`/`d`, the free
/// key `k`, and the session-local nonce `m`.
fn arb_body(depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            (arb_name(), arb_payload())
                .prop_map(|(c, m)| Process::output(Term::Name(c), m, Process::Nil)),
        ]
        .boxed();
    }
    prop_oneof![
        Just(Process::Nil),
        (arb_name(), arb_payload(), arb_body(depth - 1))
            .prop_map(|(c, m, p)| Process::output(Term::Name(c), m, p)),
        (arb_name(), arb_body(depth - 1)).prop_map(|(c, p)| Process::input(
            Term::Name(c),
            Var::new("x"),
            p
        )),
        (arb_body(depth - 1), arb_body(depth - 1)).prop_map(|(l, r)| Process::par(l, r)),
    ]
    .boxed()
}

/// A session system: the body restricts its own nonce `m`, so fresh
/// names flow through payloads (sometimes under encryption) and the two
/// engines must agree on how the environment links them.
fn arb_system() -> impl Strategy<Value = Process> {
    (arb_body(2), arb_body(1)).prop_map(|(body, observer)| {
        Process::par(Process::restrict(Name::new("m"), body), observer)
    })
}

fn opts(reduce: ReduceOptions, workers: usize) -> ExploreOptions {
    ExploreOptions {
        unfold_bound: 2,
        budget: Budget::unlimited().states(3_000),
        reduce,
        workers,
        ..ExploreOptions::default()
    }
}

/// Explores and returns the LTS only when the budget did not truncate
/// it (half-explored systems make both engines inconclusive).
fn explored(sys: &Process, o: ExploreOptions) -> Option<Lts> {
    Explorer::new(o).explore(sys).ok().filter(Lts::complete)
}

/// Observation-term strategy mirroring what the explorer emits: free
/// names, creator-stamped fresh names, pairs, and ciphertexts.
fn arb_obsterm(depth: u32) -> BoxedStrategy<ObsTerm> {
    let creator = || "00".parse::<Path>().expect("valid path");
    let leaf = prop_oneof![
        (0u32..6).prop_map(move |nonce| ObsTerm::Fresh {
            nonce,
            creator: "00".parse().expect("valid path"),
        }),
        prop_oneof![Just("a"), Just("k")].prop_map(|n| ObsTerm::Free(Name::new(n))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        (arb_obsterm(depth - 1), arb_obsterm(depth - 1))
            .prop_map(|(a, b)| ObsTerm::Pair(Box::new(a), Box::new(b), None)),
        (
            prop::collection::vec(arb_obsterm(depth - 1), 1..3),
            arb_obsterm(depth - 1)
        )
            .prop_map(move |(body, key)| ObsTerm::Enc(body, Box::new(key), Some(creator()))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The two decision procedures reach the same verdict on every
    /// generated implementation/specification pair, at every reduction
    /// setting and worker count.  (Witness traces may differ in the
    /// Fails case — both are minimal, not unique — so the comparison is
    /// on the verdict discriminant, same as `--engine both`.)
    #[test]
    fn the_engines_agree_on_arbitrary_systems(
        implementation in arb_system(),
        specification in arb_system(),
    ) {
        for reduce in [ReduceOptions::none(), ReduceOptions::full()] {
            for workers in [1usize, 2, 8] {
                let o = opts(reduce, workers);
                let Some(il) = explored(&implementation, o.clone()) else { return Ok(()); };
                let Some(sl) = explored(&specification, o) else { return Ok(()); };
                let t = trace_preorder_sound(&il, &sl, 4);
                let b = bisim_preorder_sound(&il, &sl, 4);
                prop_assert_eq!(
                    std::mem::discriminant(&t),
                    std::mem::discriminant(&b),
                    "engines disagree at reduce={:?} workers={}: trace={:?} bisim={:?}",
                    reduce, workers, t, b
                );
            }
        }
    }

    /// Identity pairs never distinguish: extending an empty hedge with
    /// `(t, t)` keeps it consistent and the pair synthesizable.
    #[test]
    fn identity_pairs_keep_the_hedge_consistent(t in arb_obsterm(3)) {
        let mut h = Hedge::new();
        prop_assert!(h.extend(t.clone(), t.clone()), "identity pair clashed");
        prop_assert!(h.consistent(), "identity pair broke consistency");
        prop_assert!(h.synthesizes(&t, &t), "identity pair not synthesizable");
    }

    /// The analysis closure is idempotent and saturated: re-extending a
    /// hedge with pairs it already analyzed changes nothing, and no held
    /// ciphertext pair has a synthesizable key pair (it would have been
    /// decomposed).
    #[test]
    fn hedge_analysis_is_idempotent_and_saturated(
        pairs in prop::collection::vec((arb_obsterm(2), arb_obsterm(2)), 1..4),
    ) {
        let mut h = Hedge::new();
        for (l, r) in &pairs {
            let _ = h.extend(l.clone(), r.clone());
        }
        let mut again = h.clone();
        for (l, r) in &pairs {
            let _ = again.extend(l.clone(), r.clone());
        }
        prop_assert_eq!(&again, &h, "re-analysis of known pairs changed the hedge");
        for (l, r) in h.iter() {
            prop_assert!(
                h.synthesizes(l, r),
                "irreducible pair not synthesizable: {:?} / {:?}", l, r
            );
            if let (ObsTerm::Enc(_, k1, _), ObsTerm::Enc(_, k2, _)) = (l, r) {
                prop_assert!(
                    !h.synthesizes(k1, k2),
                    "held ciphertext pair is analyzable — the hedge under-closed"
                );
            }
        }
    }

    /// Counterexamples replay: every distinguishing trace the
    /// bisimulation engine extracts is a weak trace of the
    /// implementation and not of the specification.
    #[test]
    fn bisim_counterexamples_replay_as_distinguishing_traces(
        implementation in arb_system(),
        specification in arb_system(),
    ) {
        let o = opts(ReduceOptions::none(), 1);
        let Some(il) = explored(&implementation, o.clone()) else { return Ok(()); };
        let Some(sl) = explored(&specification, o) else { return Ok(()); };
        if let TraceVerdict::Fails { witness } = bisim_preorder_sound(&il, &sl, 4) {
            prop_assert!(!witness.is_empty(), "empty witness distinguishes nothing");
            prop_assert!(
                weak_traces(&il, 4).contains(&witness),
                "witness is not a trace of the implementation: {:?}", witness
            );
            prop_assert!(
                !weak_traces(&sl, 4).contains(&witness),
                "witness is a trace of the specification too: {:?}", witness
            );
        }
    }
}
