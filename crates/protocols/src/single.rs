//! The single-session protocols of Section 5.1.
//!
//! All three share the shape "A sends a freshly generated message `M` to
//! B; B requires message authentication":
//!
//! ```text
//! (A freshly generates M)
//! Message 1   A --auth--> B : M
//! ```
//!
//! * [`abstract_protocol`] — the paper's `P`: secure by construction via
//!   partner authentication (`B` receives on a channel localized at `A`);
//! * [`plaintext`] — `P1`: `M` travels in clear on an open channel, and
//!   does **not** implement `P` (man-in-the-middle);
//! * [`shared_key`] — `P2 = (νK_AB)(A2 | B2)`: `M` travels encrypted
//!   under a shared key, and securely implements `P` for one session.
//!
//! Every builder takes the protocol channel and the continuation channel,
//! and models the continuation `B'(z)` as `observe⟨z⟩` — the paper's own
//! choice when it runs the testing scenario.

use spi_syntax::builder::{case, ch, ch_loc, enc, inp, n, new, nil, out, par, v};
use spi_syntax::Process;

use crate::{startup, ProtocolError, StartupIndex};

/// The abstract protocol `P` (Section 5.1):
///
/// ```text
/// P = startup(⋆, A, λ_B, B)
/// A = (νM) c̄⟨M⟩
/// B = c_{λB}(z).B'(z)        with B'(z) = observe⟨z⟩
/// ```
///
/// After startup, `λ_B` is bound to `A`'s relative address, so `B` can
/// only receive `z` from `A`: authentication holds by construction
/// (Proposition 1 plus the localization discipline).
///
/// # Errors
///
/// Propagates [`ProtocolError::StartupNameClash`] when `chan` or
/// `observe` is the reserved startup name `s`.
pub fn abstract_protocol(chan: &str, observe: &str) -> Result<Process, ProtocolError> {
    let a = new("m", out(ch(chan), n("m"), nil()));
    let b = inp(ch_loc(chan, "lamB"), "z", out(ch(observe), v("z"), nil()));
    startup(StartupIndex::Star, a, "lamB".into(), b)
}

/// The insecure plaintext protocol `P1`:
///
/// ```text
/// P1 = A1 | B1
/// A1 = (νM) c̄⟨M⟩
/// B1 = c(z).B'(z)
/// ```
///
/// Anyone can send on `c`, so an attacker `E = (νM_E) c̄⟨M_E⟩` makes `B1`
/// accept a faked message: `P1` does not securely implement
/// [`abstract_protocol`].
#[must_use]
pub fn plaintext(chan: &str, observe: &str) -> Process {
    let a1 = new("m", out(ch(chan), n("m"), nil()));
    let b1 = inp(ch(chan), "z", out(ch(observe), v("z"), nil()));
    par(a1, b1)
}

/// The shared-key protocol `P2` (`Message 1  A → B : {M}K_AB`):
///
/// ```text
/// P2 = (νK_AB)(A2 | B2)
/// A2 = (νM) c̄⟨{M}K_AB⟩
/// B2 = c(z). case z of {w}K_AB in B'(w)
/// ```
///
/// Proposition 2: `P2` securely implements the abstract protocol in a
/// single session — the encryption plays the role of the localized
/// channel.
#[must_use]
pub fn shared_key(chan: &str, observe: &str) -> Process {
    let a2 = new("m", out(ch(chan), enc([n("m")], n("kAB")), nil()));
    let b2 = inp(
        ch(chan),
        "z",
        case(v("z"), ["w"], n("kAB"), out(ch(observe), v("w"), nil())),
    );
    new("kAB", par(a2, b2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    #[test]
    fn abstract_protocol_matches_the_paper() {
        let p = abstract_protocol("c", "observe").unwrap();
        let expected = parse("(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)").unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn plaintext_matches_the_paper() {
        let p = plaintext("c", "observe");
        assert_eq!(p, parse("(^m)c<m> | c(z).observe<z>").unwrap());
    }

    #[test]
    fn shared_key_matches_the_paper() {
        let p = shared_key("c", "observe");
        assert_eq!(
            p,
            parse("(^kAB)((^m)c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)").unwrap()
        );
    }

    #[test]
    fn all_protocols_are_closed() {
        assert!(abstract_protocol("c", "observe").unwrap().is_closed());
        assert!(plaintext("c", "observe").is_closed());
        assert!(shared_key("c", "observe").is_closed());
    }

    #[test]
    fn channel_names_are_parameters() {
        let p = plaintext("net", "done");
        let free = p.free_names();
        assert!(free.contains("net"));
        assert!(free.contains("done"));
    }
}
