//! Classic protocols beyond the paper's running examples.
//!
//! These exercise the narration compiler and the verification pipeline on
//! protocols with three roles and key transport — the workloads the
//! paper's introduction motivates ("specifications for message exchange
//! … defined on the basis of cryptographic algorithms").

use spi_syntax::Process;

use crate::compile::{compile_concrete, CompileOptions};
use crate::narration::Narration;
use crate::ProtocolError;

/// The wide-mouthed-frog key-transport protocol, as a narration:
///
/// ```text
/// 1. A → S : {b, K_ab}K_as
/// 2. S → B : {a, K_ab}K_bs
/// 3. A → B : {M}K_ab
/// ```
///
/// `S` relays a session key from `A` to `B`; `B` then authenticates the
/// payload `M`.  (The classic narration carries a timestamp which the
/// untimed calculus cannot express; without it the protocol is replayable
/// across sessions, which makes it a good stress case for the tooling.)
#[must_use]
pub fn wide_mouthed_frog_narration() -> Narration {
    Narration::parse(
        "\
protocol wide-mouthed-frog
roles A, B, S
public a, b
share A S : kas
share B S : kbs
fresh A : kab
fresh A : m
1. A -> S : {b, kab}kas
2. S -> B : {a, kab}kbs
3. A -> B : {m}kab
claim B authenticates m from A
",
    )
    .expect("the built-in narration is well-formed")
}

/// The wide-mouthed-frog system compiled to spi processes
/// (`(νK_as)(νK_bs)(A | B | S)`).
///
/// # Errors
///
/// Never fails for the built-in narration; the `Result` mirrors the
/// compiler API.
pub fn wide_mouthed_frog(opts: &CompileOptions) -> Result<Process, ProtocolError> {
    compile_concrete(&wide_mouthed_frog_narration(), opts)
}

/// The Needham–Schroeder shared-key protocol (key-establishment core),
/// as a narration:
///
/// ```text
/// 1. A → S : (a, b, Na)
/// 2. S → A : {Na, b, K_ab, {K_ab, a}K_bs}K_as
/// 3. A → B : {K_ab, a}K_bs
/// 4. A → B : {M}K_ab
/// ```
///
/// Message 1 is a *plaintext tuple* (destructured with the full-calculus
/// projection) and the ticket `{K_ab, a}K_bs` is *opaque to `A`* — it is
/// bound blindly and forwarded verbatim, exercising the compiler's opaque
/// bindings.  (The classic nonce handshake 4–5 uses arithmetic on nonces,
/// which the symbolic calculus does not model; the payload message stands
/// in for it.)
#[must_use]
pub fn needham_schroeder_narration() -> Narration {
    Narration::parse(
        "\
protocol needham-schroeder-sk
roles A, B, S
public a, b
share A S : kas
share B S : kbs
fresh S : kab
fresh A : na
fresh A : m
1. A -> S : (a, b, na)
2. S -> A : {na, b, kab, {kab, a}kbs}kas
3. A -> B : {kab, a}kbs
4. A -> B : {m}kab
claim B authenticates m from A
",
    )
    .expect("the built-in narration is well-formed")
}

/// The Needham–Schroeder system compiled to spi processes.
///
/// # Errors
///
/// Never fails for the built-in narration; the `Result` mirrors the
/// compiler API.
pub fn needham_schroeder(opts: &CompileOptions) -> Result<Process, ProtocolError> {
    compile_concrete(&needham_schroeder_narration(), opts)
}

/// The Otway–Rees key-distribution protocol, as a narration:
///
/// ```text
/// 1. A → B : (i, a, b, {na, i, a, b}K_as)
/// 2. B → S : (i, a, b, {na, i, a, b}K_as, {nb, i, a, b}K_bs)
/// 3. S → B : (i, {na, K_ab}K_as, {nb, K_ab}K_bs)
/// 4. B → A : (i, {na, K_ab}K_as)
/// 5. A → B : {M}K_ab
/// ```
///
/// Both `A`'s request (at `B`) and the ticket for `A` (at `B`) are opaque
/// blobs forwarded verbatim; the run identifier `i` is fresh but travels
/// in clear.  This is the heaviest workout for the compiler: nested
/// plaintext tuples, two opaque bindings and bound-key decryption.
#[must_use]
pub fn otway_rees_narration() -> Narration {
    Narration::parse(
        "\
protocol otway-rees
roles A, B, S
public a, b
share A S : kas
share B S : kbs
fresh A : i
fresh A : na
fresh B : nb
fresh S : kab
fresh A : m
1. A -> B : (i, a, b, {na, i, a, b}kas)
2. B -> S : (i, a, b, {na, i, a, b}kas, {nb, i, a, b}kbs)
3. S -> B : (i, {na, kab}kas, {nb, kab}kbs)
4. B -> A : (i, {na, kab}kas)
5. A -> B : {m}kab
claim B authenticates m from A
",
    )
    .expect("the built-in narration is well-formed")
}

/// The Otway–Rees system compiled to spi processes.
///
/// # Errors
///
/// Never fails for the built-in narration; the `Result` mirrors the
/// compiler API.
pub fn otway_rees(opts: &CompileOptions) -> Result<Process, ProtocolError> {
    compile_concrete(&otway_rees_narration(), opts)
}

/// A two-message mutual exchange: both parties contribute a fresh payload
/// under a pre-shared key.
///
/// ```text
/// 1. A → B : {ma}K_ab
/// 2. B → A : {mb, ma}K_ab
/// ```
///
/// `A` authenticates `mb` (it is bound to `A`'s own fresh `ma`).
#[must_use]
pub fn mutual_exchange_narration() -> Narration {
    Narration::parse(
        "\
protocol mutual-exchange
roles A, B
share A B : kab
fresh A : ma
fresh B : mb
1. A -> B : {ma}kab
2. B -> A : {mb, ma}kab
claim A authenticates mb from B
",
    )
    .expect("the built-in narration is well-formed")
}

/// The mutual exchange compiled to spi processes.
///
/// # Errors
///
/// Never fails for the built-in narration; the `Result` mirrors the
/// compiler API.
pub fn mutual_exchange(opts: &CompileOptions) -> Result<Process, ProtocolError> {
    compile_concrete(&mutual_exchange_narration(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_mouthed_frog_compiles_closed() {
        let p = wide_mouthed_frog(&CompileOptions::default()).unwrap();
        assert!(p.is_closed());
        let free = p.free_names();
        assert!(free.contains("c"), "the public channel is free");
        assert!(!free.contains("kas"), "long-term keys are restricted");
        assert!(!free.contains("kbs"));
    }

    #[test]
    fn wide_mouthed_frog_has_three_components() {
        let p = wide_mouthed_frog(&CompileOptions::default()).unwrap();
        // (νkas)(νkbs)((A | B) | S)
        let mut cur = &p;
        while let Process::Restrict(_, body) = cur {
            cur = body;
        }
        match cur {
            Process::Par(l, _) => assert!(matches!(**l, Process::Par(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn server_relays_the_session_key() {
        let p = wide_mouthed_frog(&CompileOptions::default()).unwrap();
        let shown = p.to_string();
        // S decrypts under kas and re-encrypts under kbs.
        assert!(shown.contains("case"), "{shown}");
        assert!(shown.contains("}kbs"), "{shown}");
    }

    #[test]
    fn needham_schroeder_compiles_closed() {
        let p = needham_schroeder(&CompileOptions::default()).unwrap();
        assert!(p.is_closed());
        let shown = p.to_string();
        // S destructures the plaintext tuple with projections.
        assert!(shown.contains("let ("), "{shown}");
        // Only B decrypts under kbs; A forwards the opaque ticket (c<y5>).
        assert_eq!(shown.matches("}kbs in").count(), 1, "{shown}");
        assert!(
            shown.contains("c<y5>"),
            "A forwards the blob verbatim: {shown}"
        );
    }

    #[test]
    fn needham_schroeder_server_issues_the_ticket() {
        let p = needham_schroeder(&CompileOptions::default()).unwrap();
        let shown = p.to_string();
        // S builds {na-variable, b, kab, {kab, a}kbs}kas.
        assert!(
            shown.contains("}kbs}kas") || shown.contains("}kbs"),
            "{shown}"
        );
    }

    #[test]
    fn otway_rees_compiles_closed() {
        let p = otway_rees(&CompileOptions::default()).unwrap();
        assert!(p.is_closed());
        let shown = p.to_string();
        // Two opaque forwards happen at B: A's request and A's ticket.
        assert!(shown.contains("let ("), "tuples destructure: {shown}");
    }

    #[test]
    fn mutual_exchange_compiles_and_checks_the_echo() {
        let p = mutual_exchange(&CompileOptions::default()).unwrap();
        assert!(p.is_closed());
        let shown = p.to_string();
        assert!(shown.contains("["), "A checks its own ma echo: {shown}");
    }
}
