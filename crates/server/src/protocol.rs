//! The newline-delimited JSON wire protocol.
//!
//! Every request is one line holding one JSON object with an `"op"`
//! field; every response is one line holding one JSON envelope:
//!
//! ```text
//! {"status":"ok","op":"verify","spec_digest":"fnv:…","cached":false,"body":{…}}
//! {"status":"error","op":"verify","reason":"…"}
//! {"status":"rejected","op":"verify","reason":"queue full (8 pending)"}
//! ```
//!
//! Job ops (`verify`, `campaign`, `conformance-replay`) carry their
//! specs inline (`"concrete"`, `"abstract"`, `"spec"`) or as
//! server-side paths (`"concrete_path"`, …), plus the same knobs the
//! CLI exposes: `channels`, `sessions`, `visible`, `budget` (the
//! `dimension=count` spelling of [`Budget::parse_spec`]), `faults`
//! (comma-separated clauses), `intruder`, `faults_depth`, `oracles`,
//! `timeout_secs`, and `no_cache`.  Campaign jobs may carry a
//! `"unit":{"offset":N,"count":M}` work-unit restriction (how a fleet
//! coordinator shards one campaign), plus three execution-only knobs
//! that never enter the content digest: `tenant` (the quota-accounting
//! id, defaulting to the peer address), `deadline_ms` (a relative
//! wall-clock deadline folded into the server-side cut-off), and
//! `progress_ms` (ask for `{"status":"progress",…}` heartbeat lines at
//! that interval while the job runs; the final reply is always the
//! first non-progress line).  Control ops are `ping`, `stats`,
//! `shutdown`, `join` (worker registration/heartbeat), `leave` (a
//! worker announcing drain, optionally handing off its cache), `gossip`
//! (cache-warming pull), and `gossip-push` (digest-guarded cache
//! handoff from a coordinator).
//!
//! The verify/campaign **body encoders** here are the single source of
//! the JSON result shapes: the daemon, the cache snapshot, and the
//! CLI's `--format json` all call [`verify_body`] / [`campaign_body`].

use spi_semantics::{FaultClause, FaultSpec};
use spi_syntax::Process;
use spi_verify::jsonlite::Json;
use spi_verify::{
    Budget, CampaignReport, CoverageStats, Engine, ReduceOptions, Verdict, VerificationReport,
};

use crate::digest::digest;

/// The job kinds a server can execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// A Definition 4 secure-implementation check.
    Verify,
    /// A fault-schedule campaign with shrinking.
    Campaign,
    /// Replay a generated spec through the conformance oracle suite
    /// (requires the full engine assembled in the `spi` binary).
    ConformanceReplay,
}

impl Mode {
    /// The wire keyword (also the `op` echoed in responses).
    #[must_use]
    pub fn keyword(self) -> &'static str {
        match self {
            Mode::Verify => "verify",
            Mode::Campaign => "campaign",
            Mode::ConformanceReplay => "conformance-replay",
        }
    }
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter dump.
    Stats,
    /// Begin a graceful drain.
    Shutdown,
    /// A worker announcing itself to a coordinator (the body is the
    /// worker's advertised address).  Doubles as the heartbeat: workers
    /// re-send it on a timer and the coordinator refreshes liveness.
    Join {
        /// The address the coordinator should dial the worker back on.
        addr: String,
    },
    /// A cache-warming pull: "send me your hottest cache entries".  The
    /// response body reuses the identity-digest-guarded snapshot codec,
    /// so a forged or torn transfer is refused by the receiver.
    Gossip,
    /// A worker announcing a graceful drain to its coordinator, so the
    /// ring can reassign its shard *before* the process dies.  The
    /// optional `cache` carries the worker's entries in the gossip
    /// encoding for proactive handoff to the next ring candidates.
    Leave {
        /// The advertised address the worker joined under.
        addr: String,
        /// The departing worker's cache in the gossip encoding
        /// (identity-digest-guarded), if it chose to hand entries off.
        cache: Option<Json>,
    },
    /// A digest-guarded cache handoff: "absorb these entries".  The
    /// receiver verifies the gossip identity digest before merging, so
    /// a forged or torn push merges nothing.
    GossipPush {
        /// The pushed entries in the gossip encoding.
        cache: Json,
    },
    /// A verification job.
    Job(Box<JobRequest>),
}

/// A fully resolved job: spec sources loaded, options defaulted.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to run.
    pub mode: Mode,
    /// Concrete protocol source (also the spec for conformance replay).
    pub concrete: String,
    /// Abstract specification source (empty for conformance replay).
    pub abstract_spec: String,
    /// The channel set `C` of Definition 4.
    pub channels: Vec<String>,
    /// Replication unfold bound.
    pub sessions: u32,
    /// Visible-trace depth.
    pub visible: usize,
    /// Exploration resource budget.
    pub budget: Budget,
    /// Baseline fault model, if any.
    pub faults: Option<FaultSpec>,
    /// Whether the most-general intruder participates.
    pub intruder: bool,
    /// Campaign schedule depth.
    pub faults_depth: usize,
    /// Conformance-replay oracle selection (empty = the default suite).
    pub oracles: Vec<String>,
    /// Which state-space reductions the explorations run under.  Part
    /// of the canonical description (the reduced and unreduced state
    /// spaces answer the same question, but cached bodies carry
    /// reduction statistics, so the digests must differ).
    pub reduce: ReduceOptions,
    /// Which decision procedure(s) answer the job.  Part of the
    /// canonical description — the trace and bisimulation engines agree
    /// on verdicts, but cached bodies differ (engine tag, early-reject
    /// counters), so a bisim result must never be served for a trace
    /// request or vice versa.  Old clients never send the field; it
    /// defaults to [`Engine::Trace`] and stays out of the digest there,
    /// so pre-engine cache entries remain addressable.
    pub engine: Engine,
    /// Per-request wall-clock limit.
    pub timeout_secs: Option<u64>,
    /// Bypass the result cache (both lookup and fill).
    pub no_cache: bool,
    /// The quota-accounting tenant id.  Execution-only: it decides
    /// *whether* the server admits the job, never what the answer is,
    /// so it stays out of the content digest.  Defaults server-side to
    /// the peer address when absent.
    pub tenant: Option<String>,
    /// Relative wall-clock deadline in milliseconds, folded into the
    /// server-side cut-off as `min(timeout_secs, deadline_ms)`.
    /// Execution-only, like `timeout_secs`.
    pub deadline_ms: Option<u64>,
    /// Heartbeat interval in milliseconds: while the job runs, the
    /// server emits `{"status":"progress",…}` lines at this cadence.
    /// `None` (or 0) streams nothing.  Execution-only.
    pub progress_ms: Option<u64>,
    /// Campaign work unit: decide only the schedules at enumeration
    /// indices `[offset, offset + count)`.  This is how a fleet
    /// coordinator shards one campaign across workers; units are part
    /// of the canonical description, so each unit's result is
    /// content-addressed independently and re-dispatching a unit after
    /// a worker death is idempotent.
    pub unit: Option<(usize, usize)>,
}

/// Parses either a bare process or a `def …/system …` program file —
/// the same acceptance rule as the CLI — rendering errors with source
/// context.
///
/// # Errors
///
/// Returns the rendered syntax error.
pub fn parse_source(src: &str) -> Result<Process, String> {
    let result = if src
        .lines()
        .any(|l| l.trim_start().starts_with("def ") || l.trim_start().starts_with("system"))
    {
        spi_syntax::parse_program(src).map(|prog| prog.system)
    } else {
        spi_syntax::parse(src)
    };
    result.map_err(|e| e.render(src))
}

impl JobRequest {
    /// The canonical description this job is content-addressed by:
    /// specs parsed and re-printed (so formatting differences vanish),
    /// the budget in its canonical spelling, the fault schedule in its
    /// canonical key.  Execution-only knobs (`timeout_secs`,
    /// `no_cache`, `tenant`, `deadline_ms`, `progress_ms`) are
    /// excluded — they change *when* (and whether) an answer arrives,
    /// never *what* it is.
    ///
    /// # Errors
    ///
    /// Fails when a spec does not parse (such requests are never
    /// cached).
    pub fn canonical(&self) -> Result<String, String> {
        use std::fmt::Write as _;
        let mut desc = format!("serve-v1|{}", self.mode.keyword());
        let concrete = parse_source(&self.concrete)?;
        let _ = write!(desc, "|{concrete}");
        if self.mode != Mode::ConformanceReplay {
            let spec = parse_source(&self.abstract_spec)?;
            let _ = write!(desc, "|{spec}");
        }
        let _ = write!(
            desc,
            "|C={}|sessions={}|visible={}|budget={}|intruder={}|faults={}",
            self.channels.join(","),
            self.sessions,
            self.visible,
            self.budget.canonical_spec(),
            self.intruder,
            self.faults
                .as_ref()
                .map(FaultSpec::canonical_key)
                .unwrap_or_default(),
        );
        // Appended only when non-default, so pre-reduction digests (and
        // the caches keyed by them) stay valid.
        if self.reduce.enabled() {
            let _ = write!(desc, "|reduce={}", self.reduce.mode());
        }
        // Same back-compat rule: the default engine leaves the digest
        // byte-identical to pre-engine requests.
        if self.engine != Engine::Trace {
            let _ = write!(desc, "|engine={}", self.engine.mode());
        }
        match self.mode {
            Mode::Campaign => {
                let _ = write!(desc, "|depth={}", self.faults_depth);
            }
            Mode::ConformanceReplay => {
                let _ = write!(desc, "|oracles={}", self.oracles.join(","));
            }
            Mode::Verify => {}
        }
        if let Some((offset, count)) = self.unit {
            let _ = write!(desc, "|unit={offset}+{count}");
        }
        Ok(desc)
    }

    /// The content digest of [`JobRequest::canonical`] — the cache key
    /// and the `spec_digest` echoed in responses.
    ///
    /// # Errors
    ///
    /// Fails when a spec does not parse.
    pub fn digest(&self) -> Result<String, String> {
        Ok(digest(&self.canonical()?))
    }

    /// A copy of this job restricted to one campaign work unit.
    #[must_use]
    pub fn with_unit(&self, offset: usize, count: usize) -> JobRequest {
        let mut job = self.clone();
        job.unit = Some((offset, count));
        job
    }

    /// Re-renders the job as a request object a coordinator can put
    /// back on the wire when dispatching to a worker.  Round-trips
    /// through [`parse_request`] to an equivalent job (same digest).
    #[must_use]
    pub fn wire_json(&self) -> Json {
        let mut fields = vec![("op".to_string(), Json::str(self.mode.keyword()))];
        if self.mode == Mode::ConformanceReplay {
            fields.push(("spec".into(), Json::str(self.concrete.clone())));
        } else {
            fields.push(("concrete".into(), Json::str(self.concrete.clone())));
            fields.push(("abstract".into(), Json::str(self.abstract_spec.clone())));
        }
        fields.push((
            "channels".into(),
            Json::str_arr(self.channels.iter().cloned()),
        ));
        fields.push(("sessions".into(), Json::Int(i64::from(self.sessions))));
        fields.push(("visible".into(), Json::count(self.visible)));
        fields.push(("budget".into(), Json::str(self.budget.canonical_spec())));
        if let Some(faults) = &self.faults {
            let clauses = faults
                .clauses
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            fields.push(("faults".into(), Json::str(clauses)));
        }
        fields.push(("intruder".into(), Json::Bool(self.intruder)));
        if self.reduce.enabled() {
            fields.push(("reduce".into(), Json::str(self.reduce.mode())));
        }
        if self.engine != Engine::Trace {
            fields.push(("engine".into(), Json::str(self.engine.mode())));
        }
        fields.push(("faults_depth".into(), Json::count(self.faults_depth)));
        if !self.oracles.is_empty() {
            fields.push(("oracles".into(), Json::str_arr(self.oracles.iter().cloned())));
        }
        if let Some(secs) = self.timeout_secs {
            fields.push((
                "timeout_secs".into(),
                Json::Int(i64::try_from(secs).unwrap_or(i64::MAX)),
            ));
        }
        if self.no_cache {
            fields.push(("no_cache".into(), Json::Bool(true)));
        }
        if let Some(tenant) = &self.tenant {
            fields.push(("tenant".into(), Json::str(tenant.clone())));
        }
        if let Some(ms) = self.deadline_ms {
            fields.push((
                "deadline_ms".into(),
                Json::Int(i64::try_from(ms).unwrap_or(i64::MAX)),
            ));
        }
        if let Some(ms) = self.progress_ms {
            fields.push((
                "progress_ms".into(),
                Json::Int(i64::try_from(ms).unwrap_or(i64::MAX)),
            ));
        }
        if let Some((offset, count)) = self.unit {
            fields.push((
                "unit".into(),
                Json::Obj(vec![
                    ("offset".to_string(), Json::count(offset)),
                    ("count".to_string(), Json::count(count)),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

fn get_usize(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_int()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| format!("{key:?} expects a non-negative integer")),
    }
}

fn get_bool(v: &Json, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_bool()
            .ok_or_else(|| format!("{key:?} expects a boolean")),
    }
}

/// Resolves a spec given inline (`key`) or as a server-side file
/// (`key_path`).
fn get_source(v: &Json, key: &str, path_key: &str) -> Result<String, String> {
    if let Some(text) = v.get(key).and_then(Json::as_str) {
        return Ok(text.to_string());
    }
    if let Some(path) = v.get(path_key).and_then(Json::as_str) {
        return std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    }
    Err(format!("request needs {key:?} or {path_key:?}"))
}

fn get_str_arr(v: &Json, key: &str) -> Result<Vec<String>, String> {
    let Some(j) = v.get(key) else {
        return Ok(Vec::new());
    };
    let items = j
        .as_arr()
        .ok_or_else(|| format!("{key:?} expects an array of strings"))?;
    items
        .iter()
        .map(|i| {
            i.as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("{key:?} expects an array of strings"))
        })
        .collect()
}

/// Parses the comma-separated fault-clause spelling shared with the
/// CLI's `--fault`.
fn parse_faults(spec: &str) -> Result<Option<FaultSpec>, String> {
    let clauses = spec
        .split(',')
        .filter(|c| !c.is_empty())
        .map(|c| c.parse::<FaultClause>().map_err(|e| e.reason))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((!clauses.is_empty()).then(|| FaultSpec::new(clauses)))
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message suitable for an `error` response: malformed JSON,
/// an unknown op, a missing spec, or a bad option.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line.trim())?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"op\" field")?;
    let mode = match op {
        "ping" => return Ok(Request::Ping),
        "stats" => return Ok(Request::Stats),
        "shutdown" => return Ok(Request::Shutdown),
        "gossip" => return Ok(Request::Gossip),
        "join" => {
            let addr = v
                .get("addr")
                .and_then(Json::as_str)
                .ok_or("\"join\" needs a string \"addr\" field")?;
            return Ok(Request::Join {
                addr: addr.to_string(),
            });
        }
        "leave" => {
            let addr = v
                .get("addr")
                .and_then(Json::as_str)
                .ok_or("\"leave\" needs a string \"addr\" field")?;
            return Ok(Request::Leave {
                addr: addr.to_string(),
                cache: v.get("cache").cloned(),
            });
        }
        "gossip-push" => {
            let cache = v
                .get("cache")
                .cloned()
                .ok_or("\"gossip-push\" needs a \"cache\" object")?;
            return Ok(Request::GossipPush { cache });
        }
        "verify" => Mode::Verify,
        "campaign" => Mode::Campaign,
        "conformance-replay" => Mode::ConformanceReplay,
        other => {
            return Err(format!(
                "unknown op {other:?} (expected verify|campaign|conformance-replay|ping|stats|join|leave|gossip|gossip-push|shutdown)"
            ))
        }
    };
    let (concrete, abstract_spec) = if mode == Mode::ConformanceReplay {
        (get_source(&v, "spec", "spec_path")?, String::new())
    } else {
        (
            get_source(&v, "concrete", "concrete_path")?,
            get_source(&v, "abstract", "abstract_path")?,
        )
    };
    let channels = {
        let listed = get_str_arr(&v, "channels")?;
        if listed.is_empty() {
            vec!["c".to_string()]
        } else {
            listed
        }
    };
    let budget = match v.get("budget") {
        None => Budget::default(),
        Some(j) => Budget::parse_spec(
            j.as_str()
                .ok_or("\"budget\" expects a dimension=count string")?,
        )?,
    };
    let faults = match v.get("faults") {
        None => None,
        Some(j) => parse_faults(
            j.as_str()
                .ok_or("\"faults\" expects a clause-list string")?,
        )?,
    };
    let get_ms = |key: &'static str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None => Ok(None),
            Some(j) => j
                .as_int()
                .and_then(|n| u64::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("{key:?} expects a non-negative integer")),
        }
    };
    let timeout_secs = get_ms("timeout_secs")?;
    let deadline_ms = get_ms("deadline_ms")?;
    let progress_ms = get_ms("progress_ms")?;
    let tenant = match v.get("tenant") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .map(str::to_owned)
                .ok_or("\"tenant\" expects a string")?,
        ),
    };
    let reduce = match v.get("reduce") {
        None => ReduceOptions::none(),
        Some(j) => {
            let s = j
                .as_str()
                .ok_or("\"reduce\" expects none|symmetry|por|full")?;
            ReduceOptions::parse(s)
                .ok_or_else(|| format!("\"reduce\" expects none|symmetry|por|full, got {s:?}"))?
        }
    };
    let engine = match v.get("engine") {
        None => Engine::Trace,
        Some(j) => {
            let s = j.as_str().ok_or("\"engine\" expects trace|bisim|both")?;
            Engine::parse(s)
                .ok_or_else(|| format!("\"engine\" expects trace|bisim|both, got {s:?}"))?
        }
    };
    let unit = match v.get("unit") {
        None => None,
        Some(u) => {
            let field = |key: &str| {
                u.get(key)
                    .and_then(Json::as_int)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| format!("\"unit\" expects {{\"offset\":N,\"count\":M}}, bad {key:?}"))
            };
            Some((field("offset")?, field("count")?))
        }
    };
    Ok(Request::Job(Box::new(JobRequest {
        mode,
        concrete,
        abstract_spec,
        channels,
        sessions: u32::try_from(get_usize(&v, "sessions", 2)?)
            .map_err(|_| "\"sessions\" is out of range".to_string())?,
        visible: get_usize(&v, "visible", 6)?,
        budget,
        faults,
        intruder: get_bool(&v, "intruder", true)?,
        faults_depth: get_usize(&v, "faults_depth", 2)?,
        oracles: get_str_arr(&v, "oracles")?,
        reduce,
        engine,
        timeout_secs,
        no_cache: get_bool(&v, "no_cache", false)?,
        tenant,
        deadline_ms,
        progress_ms,
        unit,
    })))
}

/// The success envelope.  `digest`/`cached` are present for job
/// responses and absent for control ops.
#[must_use]
pub fn ok_response(op: &str, spec_digest: Option<&str>, cached: bool, body: Json) -> Json {
    let mut fields = vec![
        ("status".to_string(), Json::str("ok")),
        ("op".to_string(), Json::str(op)),
    ];
    if let Some(d) = spec_digest {
        fields.push(("spec_digest".into(), Json::str(d)));
        fields.push(("cached".into(), Json::Bool(cached)));
    }
    fields.push(("body".into(), body));
    Json::Obj(fields)
}

/// The failure envelope (bad request, unparseable spec, engine error).
#[must_use]
pub fn error_response(op: &str, reason: &str) -> Json {
    Json::Obj(vec![
        ("status".into(), Json::str("error")),
        ("op".into(), Json::str(op)),
        ("reason".into(), Json::str(reason)),
    ])
}

/// The admission-control envelope: the server is overloaded or
/// draining, and the client should retry elsewhere/later (HTTP 429 in
/// spirit).
#[must_use]
pub fn rejected_response(op: &str, reason: &str) -> Json {
    Json::Obj(vec![
        ("status".into(), Json::str("rejected")),
        ("op".into(), Json::str(op)),
        ("reason".into(), Json::str(reason)),
    ])
}

/// A rejection with a `Retry-After`-style hint: how long (in
/// milliseconds) the client should back off before retrying.  The shape
/// is [`rejected_response`] plus a `retry_after_ms` field, so existing
/// clients that only look at `status`/`reason` keep working.
#[must_use]
pub fn shed_response(op: &str, reason: &str, retry_after_ms: u64) -> Json {
    Json::Obj(vec![
        ("status".into(), Json::str("rejected")),
        ("op".into(), Json::str(op)),
        ("reason".into(), Json::str(reason)),
        (
            "retry_after_ms".into(),
            Json::Int(i64::try_from(retry_after_ms).unwrap_or(i64::MAX)),
        ),
    ])
}

/// A streaming heartbeat emitted while a job runs (requested via
/// `progress_ms`).  Clients must keep reading: the final reply is the
/// first line whose `status` is not `"progress"`.
#[must_use]
pub fn progress_response(
    op: &str,
    spec_digest: Option<&str>,
    states_explored: u64,
    schedules_classified: u64,
) -> Json {
    let mut fields = vec![
        ("status".to_string(), Json::str("progress")),
        ("op".to_string(), Json::str(op)),
    ];
    if let Some(d) = spec_digest {
        fields.push(("spec_digest".into(), Json::str(d)));
    }
    fields.push((
        "states_explored".into(),
        Json::Int(i64::try_from(states_explored).unwrap_or(i64::MAX)),
    ));
    fields.push((
        "schedules_classified".into(),
        Json::Int(i64::try_from(schedules_classified).unwrap_or(i64::MAX)),
    ));
    Json::Obj(fields)
}

fn coverage_json(c: &CoverageStats) -> Json {
    Json::Obj(vec![
        ("states".into(), Json::count(c.states)),
        ("transitions".into(), Json::count(c.transitions)),
        ("expanded".into(), Json::count(c.expanded)),
        ("frontier".into(), Json::count(c.frontier)),
        ("steps".into(), Json::count(c.steps)),
    ])
}

/// The JSON body of a verify result — the one shape shared by
/// `spi verify --format json`, the daemon, and its cache.
#[must_use]
pub fn verify_body(report: &VerificationReport) -> Json {
    let mut fields = Vec::new();
    match &report.verdict {
        Verdict::SecurelyImplements => {
            fields.push(("verdict".to_string(), Json::str("securely-implements")));
        }
        Verdict::Attack(attack) => {
            fields.push(("verdict".to_string(), Json::str("attack")));
            fields.push((
                "attack".into(),
                Json::Obj(vec![
                    ("trace".into(), Json::str_arr(attack.trace.iter().cloned())),
                    (
                        "narration".into(),
                        Json::str_arr(attack.narration.iter().cloned()),
                    ),
                ]),
            ));
        }
        Verdict::Inconclusive {
            exhausted,
            coverage,
        } => {
            fields.push(("verdict".to_string(), Json::str("inconclusive")));
            fields.push(("exhausted".into(), Json::str(exhausted.to_string())));
            fields.push(("coverage".into(), coverage_json(coverage)));
        }
    }
    fields.push((
        "concrete_states".into(),
        Json::count(report.concrete_stats.states),
    ));
    fields.push((
        "abstract_states".into(),
        Json::count(report.abstract_stats.states),
    ));
    fields.push(("traces_checked".into(), Json::count(report.traces_checked)));
    // Emitted only for the non-default engines, so pre-engine cached
    // bodies and fresh trace-engine bodies stay byte-identical.
    if report.engine != Engine::Trace {
        fields.push(("engine".into(), Json::str(report.engine.mode())));
    }
    if report.reduce.enabled() {
        let quotiented = report.concrete_stats.states_quotiented
            + report.abstract_stats.states_quotiented;
        let pruned = report.concrete_stats.por_pruned + report.abstract_stats.por_pruned;
        fields.push((
            "reduction".into(),
            Json::Obj(vec![
                ("mode".into(), Json::str(report.reduce.mode())),
                (
                    "states_quotiented".into(),
                    Json::Int(i64::try_from(quotiented).unwrap_or(i64::MAX)),
                ),
                (
                    "por_pruned".into(),
                    Json::Int(i64::try_from(pruned).unwrap_or(i64::MAX)),
                ),
            ]),
        ));
    }
    Json::Obj(fields)
}

/// The JSON body of a campaign result: the tally plus every
/// per-schedule record in the same encoding campaign checkpoints use.
#[must_use]
pub fn campaign_body(report: &CampaignReport) -> Json {
    let (attacks, survives, inconclusive) = report.tally();
    let mut fields = vec![
        ("enumerated".into(), Json::count(report.enumerated)),
        ("attacks".into(), Json::count(attacks)),
        ("survives".into(), Json::count(survives)),
        ("inconclusive".into(), Json::count(inconclusive)),
        ("interrupted".into(), Json::Bool(report.interrupted)),
        ("identity".into(), Json::str(report.identity.clone())),
    ];
    // Nonzero only under `--engine both`; omitted otherwise so existing
    // cached bodies keep their exact shape.
    if report.early_rejects > 0 {
        fields.push((
            "early_rejects".into(),
            Json::Int(i64::try_from(report.early_rejects).unwrap_or(i64::MAX)),
        ));
    }
    fields.push((
        "results".into(),
        Json::Arr(
            report
                .results
                .iter()
                .map(spi_verify::ScheduleResult::to_json)
                .collect(),
        ),
    ));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VERIFY_LINE: &str = r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#;

    fn job(line: &str) -> JobRequest {
        match parse_request(line).unwrap() {
            Request::Job(j) => *j,
            other => panic!("expected a job, got {other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"op":"verify"}"#)
            .unwrap_err()
            .contains("concrete"));
        assert!(parse_request(
            r#"{"op":"verify","concrete":"0","abstract":"0","sessions":"three"}"#
        )
        .is_err());
        assert!(parse_request(r#"{"op":"verify","concrete":"0","abstract":"0","budget":"bogus=1"}"#)
            .is_err());
    }

    #[test]
    fn job_defaults_match_the_cli() {
        let j = job(VERIFY_LINE);
        assert_eq!(j.mode, Mode::Verify);
        assert_eq!(j.channels, ["c"]);
        assert_eq!(j.sessions, 1);
        assert_eq!(j.visible, 6);
        assert_eq!(j.budget, Budget::default());
        assert!(j.intruder);
        assert!(j.faults.is_none());
        assert!(!j.no_cache);
        assert!(j.timeout_secs.is_none());
    }

    #[test]
    fn digest_is_formatting_insensitive_but_option_sensitive() {
        let a = job(VERIFY_LINE);
        // Same processes, spelled with different whitespace.
        let b = job(
            r#"{"op":"verify","concrete":"(^m) c<m> | c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#,
        );
        assert_eq!(a.digest().unwrap(), b.digest().unwrap());
        // Timeout and no_cache do not change the question...
        let c = job(
            r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1,"timeout_secs":5,"no_cache":true}"#,
        );
        assert_eq!(a.digest().unwrap(), c.digest().unwrap());
        // ...and neither do the admission/streaming knobs: a tenant id,
        // a deadline, or a heartbeat request must hit the same cache key.
        let h = job(
            r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1,"tenant":"alice","deadline_ms":2500,"progress_ms":100}"#,
        );
        assert_eq!(a.digest().unwrap(), h.digest().unwrap());
        // ...but every semantic knob does.
        let d = job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":2"));
        assert_ne!(a.digest().unwrap(), d.digest().unwrap());
        let e = job(
            r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1,"faults":"drop:c:1"}"#,
        );
        assert_ne!(a.digest().unwrap(), e.digest().unwrap());
        // The reduction mode is a semantic knob too (cached bodies carry
        // reduction statistics)...
        let f = job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"reduce\":\"full\""));
        assert_ne!(a.digest().unwrap(), f.digest().unwrap());
        // ...but `reduce: none` spelled explicitly is the default digest.
        let g = job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"reduce\":\"none\""));
        assert_eq!(a.digest().unwrap(), g.digest().unwrap());
        assert!(parse_request(
            &VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"reduce\":\"bogus\"")
        )
        .is_err());
    }

    #[test]
    fn engine_field_round_trips_and_keeps_old_digests() {
        // Old clients never send "engine": the job defaults to the
        // trace engine and its digest is byte-identical to a request
        // that spells the default out — warm caches survive the upgrade.
        let old = job(VERIFY_LINE);
        assert_eq!(old.engine, Engine::Trace);
        assert!(
            !old.canonical().unwrap().contains("engine"),
            "default engine stays out of the canonical description"
        );
        let explicit =
            job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"engine\":\"trace\""));
        assert_eq!(old.digest().unwrap(), explicit.digest().unwrap());
        assert!(
            !old.wire_json().render_compact().contains("engine"),
            "the default engine is not re-emitted on the wire"
        );

        // The non-default engines are semantic knobs: distinct digests
        // (a bisim body must never be served for a trace request), and
        // the field survives a wire round-trip.
        for spelled in ["bisim", "both"] {
            let line = VERIFY_LINE.replace(
                "\"sessions\":1",
                &format!("\"sessions\":1,\"engine\":\"{spelled}\""),
            );
            let j = job(&line);
            assert_eq!(j.engine.mode(), spelled);
            assert_ne!(old.digest().unwrap(), j.digest().unwrap());
            let back = job(&j.wire_json().render_compact());
            assert_eq!(back.engine, j.engine);
            assert_eq!(back.digest().unwrap(), j.digest().unwrap());
        }
        let bisim =
            job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"engine\":\"bisim\""));
        let both =
            job(&VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"engine\":\"both\""));
        assert_ne!(bisim.digest().unwrap(), both.digest().unwrap());
        assert!(parse_request(
            &VERIFY_LINE.replace("\"sessions\":1", "\"sessions\":1,\"engine\":\"quantum\"")
        )
        .unwrap_err()
        .contains("trace|bisim|both"));
    }

    #[test]
    fn fleet_ops_and_units_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"gossip"}"#).unwrap(),
            Request::Gossip
        ));
        match parse_request(r#"{"op":"join","addr":"127.0.0.1:7777"}"#).unwrap() {
            Request::Join { addr } => assert_eq!(addr, "127.0.0.1:7777"),
            other => panic!("expected join, got {other:?}"),
        }
        assert!(parse_request(r#"{"op":"join"}"#).is_err(), "addr required");
        let j = job(
            r#"{"op":"campaign","concrete":"0","abstract":"0","unit":{"offset":4,"count":2}}"#,
        );
        assert_eq!(j.unit, Some((4, 2)));
        assert!(
            parse_request(r#"{"op":"campaign","concrete":"0","abstract":"0","unit":{"offset":4}}"#)
                .is_err(),
            "count required"
        );
    }

    #[test]
    fn units_are_content_addressed_separately() {
        let whole = job(r#"{"op":"campaign","concrete":"0","abstract":"0"}"#);
        let a = whole.with_unit(0, 5);
        let b = whole.with_unit(5, 5);
        assert_ne!(whole.digest().unwrap(), a.digest().unwrap());
        assert_ne!(a.digest().unwrap(), b.digest().unwrap());
        // Re-dispatch of the same unit hits the same cache key.
        assert_eq!(a.digest().unwrap(), whole.with_unit(0, 5).digest().unwrap());
    }

    #[test]
    fn wire_json_round_trips_to_the_same_digest() {
        for line in [
            VERIFY_LINE,
            r#"{"op":"campaign","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","faults_depth":1,"unit":{"offset":1,"count":3},"budget":"states=50","faults":"drop:c:1,replay:c:2","intruder":false,"timeout_secs":9,"no_cache":true,"tenant":"batch-7","deadline_ms":60000,"progress_ms":200}"#,
            r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":2,"reduce":"full"}"#,
        ] {
            let original = job(line);
            let rendered = original.wire_json().render_compact();
            assert!(!rendered.contains('\n'));
            let back = job(&rendered);
            assert_eq!(original.digest().unwrap(), back.digest().unwrap());
            assert_eq!(original.unit, back.unit);
            assert_eq!(original.timeout_secs, back.timeout_secs);
            assert_eq!(original.no_cache, back.no_cache);
            assert_eq!(original.tenant, back.tenant);
            assert_eq!(original.deadline_ms, back.deadline_ms);
            assert_eq!(original.progress_ms, back.progress_ms);
        }
    }

    #[test]
    fn leave_and_gossip_push_parse() {
        match parse_request(r#"{"op":"leave","addr":"127.0.0.1:7777"}"#).unwrap() {
            Request::Leave { addr, cache } => {
                assert_eq!(addr, "127.0.0.1:7777");
                assert!(cache.is_none());
            }
            other => panic!("expected leave, got {other:?}"),
        }
        match parse_request(
            r#"{"op":"leave","addr":"127.0.0.1:7777","cache":{"version":1,"identity":"fnv:x","entries":[]}}"#,
        )
        .unwrap()
        {
            Request::Leave { cache, .. } => assert!(cache.is_some()),
            other => panic!("expected leave, got {other:?}"),
        }
        assert!(parse_request(r#"{"op":"leave"}"#).is_err(), "addr required");
        match parse_request(
            r#"{"op":"gossip-push","cache":{"version":1,"identity":"fnv:x","entries":[]}}"#,
        )
        .unwrap()
        {
            Request::GossipPush { cache } => assert!(cache.get("entries").is_some()),
            other => panic!("expected gossip-push, got {other:?}"),
        }
        assert!(
            parse_request(r#"{"op":"gossip-push"}"#).is_err(),
            "cache required"
        );
    }

    #[test]
    fn streaming_and_shed_envelopes() {
        let p = progress_response("campaign", Some("fnv:0123"), 42, 7).render_compact();
        let back = Json::parse(&p).unwrap();
        assert_eq!(back.get("status").and_then(Json::as_str), Some("progress"));
        assert_eq!(back.get("states_explored").and_then(Json::as_int), Some(42));
        assert_eq!(
            back.get("schedules_classified").and_then(Json::as_int),
            Some(7)
        );
        let s = shed_response("verify", "queue full (8 pending)", 250).render_compact();
        let back = Json::parse(&s).unwrap();
        assert_eq!(back.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(back.get("retry_after_ms").and_then(Json::as_int), Some(250));
    }

    #[test]
    fn unparseable_specs_fail_the_digest() {
        let j = job(r#"{"op":"verify","concrete":"(((","abstract":"0"}"#);
        assert!(j.digest().is_err());
    }

    #[test]
    fn envelopes_render_compact_single_line() {
        let ok = ok_response("verify", Some("fnv:0123"), true, Json::Obj(vec![]));
        let line = ok.render_compact();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"cached\":true"), "{line}");
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(back.get("spec_digest").and_then(Json::as_str), Some("fnv:0123"));
        let err = error_response("verify", "boom").render_compact();
        assert!(Json::parse(&err).unwrap().get("reason").is_some());
        let rej = rejected_response("verify", "queue full").render_compact();
        assert_eq!(
            Json::parse(&rej).unwrap().get("status").and_then(Json::as_str),
            Some("rejected")
        );
    }
}
