//! Property-based tests of the abstract machine and the verification
//! pipeline over randomly generated (small, closed) processes.

use proptest::prelude::*;
use spi_auth_repro::semantics::{Action, Config, StepInfo};
use spi_auth_repro::syntax::{Name, Process, Term, Var};
use spi_auth_repro::verify::{
    simulates, trace_preorder, weak_traces, ExploreOptions, Explorer, IntruderSpec,
};

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("c")),
        Just(Name::new("d")),
        Just(Name::new("k")),
        Just(Name::new("m")),
    ]
}

/// A closed message term over names and one bound variable when allowed.
fn arb_term(bound: Vec<Var>) -> BoxedStrategy<Term> {
    let atom = if bound.is_empty() {
        arb_name().prop_map(Term::Name).boxed()
    } else {
        prop_oneof![
            arb_name().prop_map(Term::Name),
            proptest::sample::select(bound).prop_map(Term::Var),
        ]
        .boxed()
    };
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::pair(a, b)),
            (inner.clone(), inner).prop_map(|(b, k)| Term::enc(vec![b], k)),
        ]
    })
    .boxed()
}

/// A small closed process over a fixed channel pool.  Replication is
/// excluded so exploration terminates quickly even without unfolding
/// bounds.
fn arb_process(bound: Vec<Var>, depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            (arb_name(), arb_term(bound)).prop_map(|(c, t)| Process::output(
                Term::Name(c),
                t,
                Process::Nil
            )),
        ]
        .boxed();
    }
    let fresh = Var::new(format!("x{}", bound.len()));
    let with_fresh = {
        let mut b = bound.clone();
        b.push(fresh.clone());
        b
    };
    prop_oneof![
        Just(Process::Nil),
        (
            arb_name(),
            arb_term(bound.clone()),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(c, t, p)| Process::output(Term::Name(c), t, p)),
        (arb_name(), arb_process(with_fresh.clone(), depth - 1)).prop_map({
            let fresh = fresh.clone();
            move |(c, p)| Process::input(Term::Name(c), fresh.clone(), p)
        }),
        (arb_name(), arb_process(bound.clone(), depth - 1))
            .prop_map(|(n, p)| Process::restrict(n, p)),
        (
            arb_process(bound.clone(), depth - 1),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(l, r)| Process::par(l, r)),
        (
            arb_term(bound.clone()),
            arb_term(bound.clone()),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(a, b, p)| Process::matching(a, b, p)),
        (
            arb_term(bound.clone()),
            arb_term(bound),
            arb_process(with_fresh, depth - 1)
        )
            .prop_map(move |(s, k, p)| Process::case(s, [fresh.clone()], k, p)),
    ]
    .boxed()
}

fn small_opts() -> ExploreOptions {
    ExploreOptions {
        budget: spi_auth_repro::verify::Budget::unlimited().states(4_000),
        unfold_bound: 1,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exploration_is_deterministic(p in arb_process(Vec::new(), 3)) {
        let a = Explorer::new(small_opts()).explore(&p);
        let b = Explorer::new(small_opts()).explore(&p);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.stats, y.stats);
                prop_assert_eq!(&x.states[0].key, &y.states[0].key);
            }
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "divergent outcomes: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn firing_enabled_actions_never_errors(p in arb_process(Vec::new(), 3)) {
        let mut cfg = Config::from_process(&p).expect("closed by construction");
        for _ in 0..16 {
            let actions = cfg.enabled(1);
            let Some(action) = actions.first() else { break };
            let before = cfg.tree().leaf_count();
            cfg.fire(action).expect("enabled actions fire");
            prop_assert!(cfg.tree().leaf_count() >= before, "the tree never shrinks");
        }
    }

    #[test]
    fn comm_payload_creators_resolve(p in arb_process(Vec::new(), 3)) {
        let mut cfg = Config::from_process(&p).expect("closed");
        for _ in 0..12 {
            let actions = cfg.enabled(1);
            let Some(action) = actions.iter().find(|a| matches!(a, Action::Comm { .. })) else {
                break;
            };
            let info = cfg.fire(action).expect("fires");
            if let StepInfo::Comm(ci) = info {
                // The located view at the receiver resolves back to the
                // absolute creator — the coherence the message-
                // authentication primitive relies on.
                if let Some(creator) = ci.payload.creator(cfg.names()) {
                    let loc = ci
                        .payload
                        .location_at(&ci.receiver, cfg.names())
                        .expect("creator implies location");
                    prop_assert_eq!(&loc.resolve_at(&ci.receiver).expect("resolves"), creator);
                }
            }
        }
    }

    #[test]
    fn trace_sets_are_prefix_closed(p in arb_process(Vec::new(), 3)) {
        let Ok(lts) = Explorer::new(small_opts()).explore(&p) else { return Ok(()) };
        let traces = weak_traces(&lts, 3);
        for t in &traces {
            for cut in 0..t.len() {
                prop_assert!(traces.contains(&t[..cut]));
            }
        }
    }

    #[test]
    fn preorders_are_reflexive(p in arb_process(Vec::new(), 3)) {
        let Ok(lts) = Explorer::new(small_opts()).explore(&p) else { return Ok(()) };
        prop_assert!(trace_preorder(&lts, &lts, 3).holds());
        prop_assert!(simulates(&lts, &lts).holds());
    }

    #[test]
    fn simulation_implies_trace_inclusion(
        p in arb_process(Vec::new(), 2),
        q in arb_process(Vec::new(), 2),
    ) {
        let Ok(lp) = Explorer::new(small_opts()).explore(&p) else { return Ok(()) };
        let Ok(lq) = Explorer::new(small_opts()).explore(&q) else { return Ok(()) };
        // Weak simulation is finer than (event-local) trace inclusion;
        // over these generators (each fresh name observed at most once per
        // trace) event-local and trace-level naming coincide, so
        // simulation must imply inclusion.
        if simulates(&lq, &lp).holds() {
            prop_assert!(
                trace_preorder(&lp, &lq, 3).holds(),
                "simulation held but a trace escaped"
            );
        }
    }

    #[test]
    fn simplify_preserves_explored_behaviour(p in arb_process(Vec::new(), 3)) {
        // The static simplifier must not change what a tester can see:
        // identical weak traces (origins included) in both directions.
        let q = p.simplify();
        let lp = Explorer::new(small_opts()).explore(&p);
        let lq = Explorer::new(small_opts()).explore(&q);
        let (Ok(lp), Ok(lq)) = (lp, lq) else { return Ok(()) };
        prop_assert_eq!(
            weak_traces(&lp, 3),
            weak_traces(&lq, 3),
            "simplify changed behaviour: {} vs {}",
            p,
            q
        );
    }

    #[test]
    fn simplify_is_idempotent_on_generated_processes(p in arb_process(Vec::new(), 3)) {
        let once = p.simplify();
        prop_assert_eq!(once.simplify(), once);
    }

    #[test]
    fn intruder_only_grows_behaviour(p in arb_process(Vec::new(), 2)) {
        // With the protocol channel restricted (Definition 4's shape),
        // adding the most-general intruder can only add silent moves: the
        // honest weak traces stay included.
        let composed = Process::restrict("c", Process::par(p.clone(), Process::Nil));
        let with_intruder = ExploreOptions {
            intruder: Some(IntruderSpec::new("1".parse().unwrap(), ["c"])),
            ..small_opts()
        };
        let Ok(plain) = Explorer::new(small_opts()).explore(&composed) else { return Ok(()) };
        let Ok(attacked) = Explorer::new(with_intruder).explore(&composed) else { return Ok(()) };
        prop_assert!(trace_preorder(&plain, &attacked, 3).holds());
    }
}
