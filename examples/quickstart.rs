//! Quickstart: write a protocol, run it, verify it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Walks the full pipeline on the paper's single-session example:
//! parse the spi-calculus source, step the proved semantics, and check a
//! concrete protocol against its abstract specification.

use spi_auth::semantics::{Config, Narrator, RoleMap};
use spi_auth::syntax::parse;
use spi_auth::{propositions, Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse a process in the concrete syntax: the paper's P2,
    //    "Message 1  A → B : {M}K_AB".
    let p2 = parse("(^kAB)((^m) c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)")?;
    println!("P2 = {p2}\n");

    // 2. Run it: the proved semantics tracks who created what, where.
    let mut cfg = Config::from_process(&p2)?;
    let mut roles = RoleMap::new();
    roles.role("A", "0".parse()?);
    roles.role("B", "1".parse()?);
    let mut narrator = Narrator::new(roles);
    println!("an honest run:");
    loop {
        let actions = cfg.enabled(0);
        let Some(action) = actions.first() else { break };
        let step = cfg.fire(action)?;
        println!("  {}", narrator.narrate(&step, &cfg));
    }
    println!();

    // 3. Verify it against the abstract, secure-by-construction protocol
    //    (the paper's P, written with the authentication primitives).
    let abstract_p = spi_auth::protocols::single::abstract_protocol("c", "observe")?;
    println!("abstract P = {abstract_p}\n");

    let verifier = Verifier::new(["c"]);
    let report = verifier.check(&p2, &abstract_p)?;
    match &report.verdict {
        Verdict::SecurelyImplements => println!(
            "P2 securely implements P  ({} vs {} states explored under attack)",
            report.concrete_stats.states, report.abstract_stats.states
        ),
        Verdict::Attack(a) => {
            println!("unexpected attack!");
            for line in &a.narration {
                println!("  {line}");
            }
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // 4. The insecure variant is caught, with the paper's attack.
    let p1 = parse("(^m) c<m> | c(z).observe<z>")?;
    if let Some(attack) = verifier.find_attack(&p1, &abstract_p)? {
        println!("\nP1 does NOT implement P; the verifier found the paper's attack:");
        for line in &attack.narration {
            println!("  {line}");
        }
    }

    // 5. Proposition 2, straight from the library.
    let prop2 = propositions::proposition_2()?;
    println!("\nProposition 2: {}", propositions::verdict_line(&prop2));
    Ok(())
}
