//! The paper's `startup` and `m_startup` macros (Sections 5.1–5.2).

use spi_syntax::{ChanIndex, Channel, LocVar, Name, Process, Term, Var};

use crate::ProtocolError;

/// How a startup party indexes the startup channel: the paper's `t_A` /
/// `t_B` parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartupIndex {
    /// No localization (`⋆` in the paper): the party does not pin its
    /// startup partner.
    Star,
    /// A location variable, bound during startup to the partner's
    /// relative address and usable throughout the party's continuation.
    Loc(LocVar),
}

impl StartupIndex {
    fn to_chan_index(&self) -> ChanIndex {
        match self {
            StartupIndex::Star => ChanIndex::Plain,
            StartupIndex::Loc(l) => ChanIndex::Loc(l.clone()),
        }
    }
}

impl From<&str> for StartupIndex {
    /// `"*"` is [`StartupIndex::Star`]; anything else names a location
    /// variable.
    fn from(s: &str) -> StartupIndex {
        if s == "*" {
            StartupIndex::Star
        } else {
            StartupIndex::Loc(LocVar::new(s))
        }
    }
}

/// The paper's startup macro:
///
/// ```text
/// startup(t_A, A, t_B, B) ≜ (νs)( s̄_{t_A}⟨s⟩.A | s_{t_B}(x).B )
/// ```
///
/// The two parties exchange their locations over a fresh private channel
/// `s`, so (Proposition 1) the location variables can only be bound to
/// each other's relative addresses, in any environment.
///
/// # Errors
///
/// Returns [`ProtocolError::StartupNameClash`] when `s` (or the dummy
/// input variable) occurs free in `a` or `b` — pick different names in
/// the parties.
///
/// # Example
///
/// ```
/// use spi_protocols::{startup, StartupIndex};
/// use spi_syntax::parse;
///
/// // The abstract protocol P of Section 5.1.
/// let a = parse("(^m) c<m>")?;
/// let b = parse("c@lamB(z).observe<z>")?;
/// let p = startup(StartupIndex::Star, a, "lamB".into(), b)?;
/// assert_eq!(p.to_string(), "(^s)(s<s>.(^m)c<m> | s@lamB(x_s).c@lamB(z).observe<z>)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn startup(
    t_a: StartupIndex,
    a: Process,
    t_b: StartupIndex,
    b: Process,
) -> Result<Process, ProtocolError> {
    let s = Name::new("s");
    let x = Var::new("x_s");
    for p in [&a, &b] {
        if p.free_names().contains(&s) {
            return Err(ProtocolError::StartupNameClash {
                name: s.to_string(),
            });
        }
        if p.free_vars().contains(&x) {
            return Err(ProtocolError::StartupNameClash {
                name: x.to_string(),
            });
        }
    }
    let sender = Process::Output(
        Channel::with_index(Term::Name(s.clone()), t_a.to_chan_index()),
        Term::Name(s.clone()),
        Box::new(a),
    );
    let receiver = Process::Input(
        Channel::with_index(Term::Name(s.clone()), t_b.to_chan_index()),
        x,
        Box::new(b),
    );
    Ok(Process::restrict(s, Process::par(sender, receiver)))
}

/// The multisession startup macro (Section 5.2):
///
/// ```text
/// m_startup(t_A, A, t_B, B) ≜ (νs)( !s̄_{t_A}⟨s⟩.A | !s_{t_B}(x).B )
/// ```
///
/// Each communication over `s` hooks one fresh instance of `A` to one
/// fresh instance of `B`; by Proposition 3 the instances pair off and no
/// message of one run can be received in another — freshness by
/// construction.
///
/// # Errors
///
/// As for [`startup`].
pub fn m_startup(
    t_a: StartupIndex,
    a: Process,
    t_b: StartupIndex,
    b: Process,
) -> Result<Process, ProtocolError> {
    let wired = startup(t_a, a, t_b, b)?;
    // Distribute the replication over the two components of the macro.
    match wired {
        Process::Restrict(s, body) => match *body {
            Process::Par(sender, receiver) => Ok(Process::restrict(
                s,
                Process::par(Process::bang(*sender), Process::bang(*receiver)),
            )),
            other => unreachable!("startup always builds a parallel: {other:?}"),
        },
        other => unreachable!("startup always builds a restriction: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    #[test]
    fn startup_wires_the_parties() {
        let a = parse("(^m) c<m>").unwrap();
        let b = parse("c@lamB(z).observe<z>").unwrap();
        let p = startup(
            StartupIndex::Star,
            a,
            StartupIndex::Loc(LocVar::new("lamB")),
            b,
        )
        .unwrap();
        match &p {
            Process::Restrict(s, body) => {
                assert_eq!(s, &Name::new("s"));
                assert!(matches!(**body, Process::Par(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.is_closed());
    }

    #[test]
    fn m_startup_replicates_both_sides() {
        let a = parse("c<m>").unwrap();
        let b = parse("c@lamB(z).observe<z>").unwrap();
        let p = m_startup(
            StartupIndex::Star,
            a,
            StartupIndex::Loc(LocVar::new("lamB")),
            b,
        )
        .unwrap();
        assert_eq!(
            p.to_string(),
            "(^s)(!s<s>.c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)"
        );
    }

    #[test]
    fn name_clash_is_rejected() {
        let a = parse("s<m>").unwrap();
        let b = parse("c(z)").unwrap();
        let err = startup(StartupIndex::Star, a, StartupIndex::Star, b).unwrap_err();
        assert!(matches!(err, ProtocolError::StartupNameClash { .. }));
    }

    #[test]
    fn index_conversion_from_str() {
        assert_eq!(StartupIndex::from("*"), StartupIndex::Star);
        assert_eq!(
            StartupIndex::from("lamB"),
            StartupIndex::Loc(LocVar::new("lamB"))
        );
    }

    #[test]
    fn both_sides_may_localize() {
        let a = parse("c@lamA<m>").unwrap();
        let b = parse("c@lamB(z)").unwrap();
        let p = startup(
            StartupIndex::Loc(LocVar::new("lamA")),
            a,
            StartupIndex::Loc(LocVar::new("lamB")),
            b,
        )
        .unwrap();
        let locs = p.loc_vars();
        assert!(locs.contains(&LocVar::new("lamA")));
        assert!(locs.contains(&LocVar::new("lamB")));
    }
}
