//! Proved operational semantics for the spi calculus with authentication
//! primitives.
//!
//! This crate is the abstract machine of *"Authentication Primitives for
//! Protocol Specifications"* (Bodei, Degano, Focardi, Priami, 2003),
//! Sections 2–3.  It executes closed [`spi_syntax::Process`]es while
//! maintaining the paper's two semantic authentication mechanisms:
//!
//! * **Partner authentication** (Section 3.1): a configuration is a binary
//!   tree of sequential processes ([`spi_addr::ProcTree`]); channels
//!   localized at a relative address only synchronize with the process at
//!   that address, and location variables `λ` are instantiated with the
//!   partner's position at first contact.
//! * **Message authentication** (Section 3.2): every name records the tree
//!   position of the restriction that created it, and every composite
//!   message is stamped with its sender at first output.  The relative
//!   address `l` the paper attaches to a received datum is derived on
//!   demand as `RelAddr::between(holder, creator)`; forwarding therefore
//!   implements the paper's address-composition operation *exactly* (the
//!   coherence law is property-tested in `spi-addr`).
//!
//! The machine grows the tree **in place**: a leaf `P | Q` becomes an
//! internal node and an unfolding replication `!P` becomes the node
//! `(P, !P)`, so positions of other components never change and captured
//! addresses stay valid — mirroring the proved semantics where the replica
//! recedes along the right spine.
//!
//! # Entry points
//!
//! * [`Config::from_process`] loads a closed process;
//! * [`Config::enabled`] enumerates the [`Action`]s the proved semantics
//!   offers (internal communications and bounded replication unfoldings);
//! * [`Config::fire`] performs one action, returning a [`StepInfo`] that a
//!   narrator can render in the paper's message-sequence notation;
//! * [`Config::barbs`] reports the barbs `P ↓ β` of Section 4.1;
//! * [`Config::canonical_key`] is a state identity up to renaming of
//!   machine-generated names, used by explorers to deduplicate
//!   interleavings.
//!
//! # Example
//!
//! Example 1 of the paper — `S = !P | Q` takes two τ steps (an unfolding
//! communication and then a decryption that happens silently):
//!
//! ```
//! use spi_semantics::Config;
//! use spi_syntax::parse;
//!
//! let s = parse("!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))")?;
//! let mut cfg = Config::from_process(&s)?;
//! // The replicated sender can unfold; Q waits for it.
//! let actions = cfg.enabled(1);
//! assert!(!actions.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

mod canon;
mod config;
mod error;
pub mod faults;
mod label;
pub mod refstep;
mod machine;
mod names;
mod narrate;
mod rtproc;
pub mod symmetry;
mod value;
mod walk;

pub use canon::{CanonHasher, Canonicalizer};
pub use config::{Barb, Config, LeafState};
pub use error::MachineError;
pub use faults::{FaultClause, FaultKind, FaultParseError, FaultSpec, NetworkState};
pub use label::ProvedLabel;
pub use machine::{Action, CommInfo, StepInfo};
pub use names::{NameEntry, NameId, NameTable};
pub use narrate::{Narrator, RoleMap};
pub use rtproc::{RtChanIndex, RtChannel, RtProcess};
pub use symmetry::{PathPerm, SessionGroup};
pub use value::RtTerm;
pub use walk::Walk;
