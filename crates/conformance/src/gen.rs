//! Grammar-based generation of well-formed spi protocol specifications.
//!
//! The generator draws a closed [`Process`] from the full source grammar —
//! outputs, inputs, restriction, parallel composition, matching,
//! replication, pair splitting and shared-key decryption — sized by a
//! [`GenSize`] (process depth, session count, channel/key alphabet widths
//! and fault-annotation density).  Every case is fully determined by a
//! `(seed, index)` pair, so a failure replays from two numbers.
//!
//! Each [`TestCase`] carries a *spec* system and a *concrete* system: the
//! concrete one is the spec after probabilistic "erosion" (stripping an
//! encryption, dropping a localization index, duplicating an output) —
//! the same specification-vs-implementation relationship the campaign
//! runner checks, so differential oracles have genuinely distinct yet
//! related inputs to compare.

use spi_semantics::{FaultClause, FaultKind, FaultSpec};
use spi_syntax::{ChanIndex, Channel, LocVar, Name, Process, Term, Var};

use crate::rng::Rng;

/// Size knobs for a generated specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSize {
    /// Maximum prefix depth of each sequential role body.
    pub depth: u32,
    /// Number of parallel role pairs composed into the system.
    pub sessions: u32,
    /// Width of the channel alphabet (capped by the built-in pool).
    pub channels: u32,
    /// Width of the shared-key alphabet (capped by the built-in pool).
    pub keys: u32,
    /// Percentage of cases annotated with a fault schedule.
    pub fault_density_pct: u32,
}

impl GenSize {
    /// Small cases: shallow single sessions, cheap enough for every
    /// oracle on every case.
    #[must_use]
    pub fn small() -> GenSize {
        GenSize {
            depth: 3,
            sessions: 1,
            channels: 2,
            keys: 2,
            fault_density_pct: 25,
        }
    }

    /// Medium cases: the default for `spi conformance`.
    #[must_use]
    pub fn medium() -> GenSize {
        GenSize {
            depth: 4,
            sessions: 2,
            channels: 3,
            keys: 2,
            fault_density_pct: 30,
        }
    }

    /// Large cases: deeper roles and wider alphabets for nightly runs.
    #[must_use]
    pub fn large() -> GenSize {
        GenSize {
            depth: 6,
            sessions: 3,
            channels: 4,
            keys: 3,
            fault_density_pct: 35,
        }
    }

    /// Parses a preset by name (`small`, `medium`, `large`).
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no preset.
    pub fn preset(s: &str) -> Result<GenSize, String> {
        match s {
            "small" => Ok(GenSize::small()),
            "medium" => Ok(GenSize::medium()),
            "large" => Ok(GenSize::large()),
            other => Err(format!(
                "unknown size preset `{other}` (valid: small, medium, large)"
            )),
        }
    }
}

impl Default for GenSize {
    fn default() -> GenSize {
        GenSize::medium()
    }
}

/// One generated conformance case.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The seed of the run that produced the case.
    pub seed: u64,
    /// The case's index within the run.
    pub index: u64,
    /// The specification system (closed).
    pub spec: Process,
    /// The eroded implementation system (closed; equal to `spec` when no
    /// erosion fired).
    pub concrete: Process,
    /// The channel alphabet the case draws from (used as the campaign
    /// fault-injection surface).
    pub channels: Vec<String>,
    /// An optional fault schedule annotation.
    pub faults: Option<FaultSpec>,
}

const CHANNEL_POOL: [&str; 4] = ["c", "d", "e", "f"];
const KEY_POOL: [&str; 3] = ["k", "h", "kAB"];
const MSG_POOL: [&str; 3] = ["m", "n", "a"];

/// Generates the case at `index` of the run seeded by `seed`.
#[must_use]
pub fn generate(seed: u64, index: u64, size: &GenSize) -> TestCase {
    let mut rng = Rng::new(seed, index);
    let mut g = Gen {
        rng: &mut rng,
        size,
        chans: CHANNEL_POOL[..(size.channels as usize).clamp(1, CHANNEL_POOL.len())].to_vec(),
        keys: KEY_POOL[..(size.keys as usize).clamp(1, KEY_POOL.len())].to_vec(),
        fresh: 0,
        scoped: Vec::new(),
    };
    let spec = g.system();
    debug_assert!(spec.free_vars().is_empty(), "generated spec must be closed");
    let concrete = g.erode(&spec);
    debug_assert!(
        concrete.free_vars().is_empty(),
        "eroded concrete must stay closed"
    );
    let faults = g.faults();
    let channels = g.chans.iter().map(ToString::to_string).collect();
    TestCase {
        seed,
        index,
        spec,
        concrete,
        channels,
        faults,
    }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    size: &'a GenSize,
    chans: Vec<&'static str>,
    keys: Vec<&'static str>,
    fresh: u32,
    /// Restricted names currently in scope.  Terms occasionally draw
    /// from this stack, so fresh names travel in payloads (and under
    /// encryptions) — the surface where nonce-lineage canonization and
    /// environment-knowledge analysis actually have work to do.
    scoped: Vec<Name>,
}

impl Gen<'_> {
    fn system(&mut self) -> Process {
        let sessions = self.size.sessions.max(1);
        // A private session name shared by all roles exercises the
        // restriction-scoping paths of the machine and the printer; with
        // it in scope, role bodies may mention it in payloads.
        let session_name = self.rng.chance(60);
        if session_name {
            self.scoped.push(Name::new("s"));
        }
        let mut roles = Vec::new();
        for _ in 0..sessions {
            let mut vars = Vec::new();
            roles.push(self.seq(self.size.depth, &mut vars));
            let mut vars = Vec::new();
            roles.push(self.seq(self.size.depth, &mut vars));
        }
        let body = roles
            .into_iter()
            .reduce(Process::par)
            .unwrap_or(Process::Nil);
        if session_name {
            self.scoped.pop();
            Process::restrict("s", body)
        } else {
            body
        }
    }

    /// A sequential role body of prefix depth at most `depth`, closed
    /// under the variables in `vars`.
    fn seq(&mut self, depth: u32, vars: &mut Vec<Var>) -> Process {
        if depth == 0 {
            return Process::Nil;
        }
        match self.rng.below(100) {
            // Output is the most common prefix: it is what drives both
            // communication and the explorer's observation moves.
            0..=29 => {
                let ch = self.channel();
                let payload = self.term(vars, 2);
                Process::Output(ch, payload, Box::new(self.seq(depth - 1, vars)))
            }
            30..=54 => {
                let ch = self.channel();
                let v = self.fresh_var();
                vars.push(v.clone());
                let cont = self.seq(depth - 1, vars);
                vars.pop();
                Process::Input(ch, v, Box::new(cont))
            }
            55..=64 => {
                let n = self.fresh_name();
                self.scoped.push(n.clone());
                let body = self.seq(depth - 1, vars);
                self.scoped.pop();
                Process::Restrict(n, Box::new(body))
            }
            65..=72 => {
                let m = self.term(vars, 1);
                let n = if self.rng.chance(50) {
                    m.clone()
                } else {
                    self.term(vars, 1)
                };
                Process::matching(m, n, self.seq(depth - 1, vars))
            }
            73..=82 => {
                // Decrypt either a bound variable (possibly stuck — a
                // legitimate behaviour to conform on) or a literal
                // ciphertext that is guaranteed to open.
                let key = Term::name(*self.rng.pick(&self.keys));
                let arity = 1 + self.rng.below(2);
                let scrutinee = match vars.is_empty() || self.rng.chance(40) {
                    true => {
                        let body = (0..arity).map(|_| self.term(vars, 1)).collect();
                        Term::enc(body, key.clone())
                    }
                    false => Term::Var(self.rng.pick(vars).clone()),
                };
                let binders: Vec<Var> = (0..arity).map(|_| self.fresh_var()).collect();
                vars.extend(binders.iter().cloned());
                let body = self.seq(depth - 1, vars);
                vars.truncate(vars.len() - arity);
                Process::Case {
                    scrutinee,
                    binders,
                    key,
                    body: Box::new(body),
                }
            }
            83..=89 => {
                let pair = match vars.is_empty() || self.rng.chance(50) {
                    true => Term::pair(self.term(vars, 1), self.term(vars, 1)),
                    false => Term::Var(self.rng.pick(vars).clone()),
                };
                let fst = self.fresh_var();
                let snd = self.fresh_var();
                vars.push(fst.clone());
                vars.push(snd.clone());
                let body = self.seq(depth - 1, vars);
                vars.pop();
                vars.pop();
                Process::Split {
                    pair,
                    fst,
                    snd,
                    body: Box::new(body),
                }
            }
            90..=94 if depth >= 2 => {
                let left = self.seq(depth - 1, vars);
                let right = self.seq(depth / 2, vars);
                Process::par(left, right)
            }
            95..=97 => Process::bang(self.seq(depth.min(2), vars)),
            _ => Process::Nil,
        }
    }

    fn channel(&mut self) -> Channel {
        let subject = Term::name(*self.rng.pick(&self.chans));
        // A sprinkle of location-variable indexes keeps the partner
        // authentication machinery in the differential surface; location
        // variables need no binder (they instantiate at first contact).
        let index = if self.rng.chance(10) {
            ChanIndex::Loc(LocVar::new("lam"))
        } else {
            ChanIndex::Plain
        };
        Channel::with_index(subject, index)
    }

    fn term(&mut self, vars: &[Var], fuel: u32) -> Term {
        if fuel == 0 || self.rng.chance(55) {
            if !self.scoped.is_empty() && self.rng.chance(25) {
                let scoped = self.rng.pick(&self.scoped).clone();
                return Term::Name(scoped);
            }
            return if !vars.is_empty() && self.rng.chance(35) {
                Term::Var(self.rng.pick(vars).clone())
            } else {
                Term::name(*self.rng.pick(&MSG_POOL))
            };
        }
        if self.rng.chance(50) {
            Term::pair(self.term(vars, fuel - 1), self.term(vars, fuel - 1))
        } else {
            let arity = 1 + self.rng.below(2);
            let body = (0..arity).map(|_| self.term(vars, fuel - 1)).collect();
            let key = Term::name(*self.rng.pick(&self.keys));
            Term::enc(body, key)
        }
    }

    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        Var::new(format!("x{}", self.fresh))
    }

    fn fresh_name(&mut self) -> Name {
        self.fresh += 1;
        Name::new(format!("s{}", self.fresh))
    }

    /// Probabilistically weakens the spec into a "concrete" variant, the
    /// way an implementation drifts from its specification.
    fn erode(&mut self, p: &Process) -> Process {
        if self.rng.chance(50) {
            return p.clone();
        }
        self.erode_at(p)
    }

    fn erode_at(&mut self, p: &Process) -> Process {
        match p {
            Process::Output(ch, payload, cont) => {
                let mut ch = ch.clone();
                let mut payload = payload.clone();
                match self.rng.below(4) {
                    // Drop the localization index: the implementation
                    // forgets to pin the partner.
                    0 => ch.index = ChanIndex::Plain,
                    // Strip one layer of encryption: the implementation
                    // sends a cleartext it should have protected.
                    1 => {
                        if let Term::Enc { body, .. } = &payload {
                            if let Some(first) = body.first() {
                                payload = first.clone();
                            }
                        }
                    }
                    // Duplicate the output: a retransmission bug.
                    2 => {
                        let once = Process::Output(ch.clone(), payload.clone(), cont.clone());
                        return Process::Output(ch, payload, Box::new(once));
                    }
                    _ => {}
                }
                Process::Output(ch, payload, Box::new(self.erode_at(cont)))
            }
            Process::Input(ch, v, cont) => {
                let mut ch = ch.clone();
                if self.rng.chance(25) {
                    ch.index = ChanIndex::Plain;
                }
                Process::Input(ch, v.clone(), Box::new(self.erode_at(cont)))
            }
            Process::Restrict(n, cont) => {
                Process::Restrict(n.clone(), Box::new(self.erode_at(cont)))
            }
            Process::Par(l, r) => Process::par(self.erode_at(l), self.erode_at(r)),
            Process::Match(m, n, cont) => {
                Process::Match(m.clone(), n.clone(), Box::new(self.erode_at(cont)))
            }
            Process::AddrMatch(m, side, cont) => {
                Process::AddrMatch(m.clone(), side.clone(), Box::new(self.erode_at(cont)))
            }
            Process::Bang(body) => Process::bang(self.erode_at(body)),
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => Process::Split {
                pair: pair.clone(),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(self.erode_at(body)),
            },
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => Process::Case {
                scrutinee: scrutinee.clone(),
                binders: binders.clone(),
                key: key.clone(),
                body: Box::new(self.erode_at(body)),
            },
            Process::Nil => Process::Nil,
        }
    }

    fn faults(&mut self) -> Option<FaultSpec> {
        if !self.rng.chance(self.size.fault_density_pct) {
            return None;
        }
        let kinds = [
            FaultKind::Drop,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::Replay,
        ];
        let n_clauses = 1 + self.rng.below(2);
        let mut clauses = Vec::with_capacity(n_clauses);
        for _ in 0..n_clauses {
            let kind = *self.rng.pick(&kinds);
            let chan = Name::new(*self.rng.pick(&self.chans));
            let max = 1 + self.rng.below(2) as u32;
            clauses.push(FaultClause { kind, chan, max });
        }
        Some(FaultSpec::new(clauses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 3, &GenSize::medium());
        let b = generate(7, 3, &GenSize::medium());
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.concrete, b.concrete);
        assert_eq!(a.faults.map(|f| f.canonical_key()), b.faults.map(|f| f.canonical_key()));
    }

    #[test]
    fn generated_specs_are_closed_and_reparse() {
        for i in 0..60 {
            let case = generate(42, i, &GenSize::medium());
            assert!(case.spec.free_vars().is_empty(), "case {i} spec open");
            assert!(case.concrete.free_vars().is_empty(), "case {i} concrete open");
            let printed = case.spec.to_string();
            let back = parse(&printed).unwrap_or_else(|e| {
                panic!("case {i} spec does not reparse: {e}\n{printed}")
            });
            assert_eq!(back, case.spec, "case {i} round-trip changed the AST");
        }
    }

    #[test]
    fn presets_parse_and_reject_unknown() {
        assert_eq!(GenSize::preset("small").map(|s| s.depth), Ok(3));
        assert_eq!(GenSize::preset("large").map(|s| s.sessions), Ok(3));
        assert!(GenSize::preset("vast").is_err());
    }

    #[test]
    fn fault_density_zero_means_no_faults() {
        let size = GenSize {
            fault_density_pct: 0,
            ..GenSize::small()
        };
        for i in 0..20 {
            assert!(generate(1, i, &size).faults.is_none());
        }
    }
}
