//! Channels and the localization indexes of the partner-authentication
//! primitive.

use spi_addr::RelAddr;

use crate::{LocVar, Term};

/// The localization index of a channel (Section 3.1 of the paper).
///
/// * [`ChanIndex::Plain`] — an ordinary spi-calculus channel, open to any
///   partner.  The paper writes `c_⋆` or simply `c`.
/// * [`ChanIndex::At`] — a channel `c_l` localized at the relative address
///   `l`: the semantics lets it synchronize only with the process
///   reachable through `l`.
/// * [`ChanIndex::Loc`] — a channel `c_λ` indexed by a location variable:
///   the first synchronization instantiates `λ` with the partner's
///   relative address, pinning every later use of `λ` to that partner.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ChanIndex {
    /// No localization: any partner may synchronize.
    #[default]
    Plain,
    /// Localized at a fixed relative address.
    At(RelAddr),
    /// Localized at a location variable, instantiated at first contact.
    Loc(LocVar),
}

/// A channel occurrence: the subject term naming the channel plus its
/// localization index.
///
/// The subject is a full [`Term`] because the calculus is first-order on
/// channels: a variable bound by an input may later be used as a channel
/// (`M⟨N⟩.P` where `M` is "a name, or a variable to be bound to").
///
/// # Example
///
/// ```
/// use spi_syntax::{ChanIndex, Channel, LocVar, Term};
///
/// // c@lam — the channel c localized at the location variable lam.
/// let ch = Channel::with_index(Term::name("c"), ChanIndex::Loc(LocVar::new("lam")));
/// assert_eq!(ch.to_string(), "c@lam");
/// assert!(Channel::plain(Term::name("c")).index.is_plain());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// The term naming the channel.
    pub subject: Term,
    /// The localization index.
    pub index: ChanIndex,
}

impl ChanIndex {
    /// Returns `true` for the plain (unlocalized) index.
    #[must_use]
    pub fn is_plain(&self) -> bool {
        matches!(self, ChanIndex::Plain)
    }
}

impl Channel {
    /// Builds an unlocalized channel.
    #[must_use]
    pub fn plain(subject: Term) -> Channel {
        Channel {
            subject,
            index: ChanIndex::Plain,
        }
    }

    /// Builds a channel with an explicit localization index.
    #[must_use]
    pub fn with_index(subject: Term, index: ChanIndex) -> Channel {
        Channel { subject, index }
    }

    /// Builds a channel localized at a relative address.
    #[must_use]
    pub fn at(subject: Term, addr: RelAddr) -> Channel {
        Channel {
            subject,
            index: ChanIndex::At(addr),
        }
    }

    /// Builds a channel localized at a location variable.
    #[must_use]
    pub fn loc(subject: Term, lam: impl Into<LocVar>) -> Channel {
        Channel {
            subject,
            index: ChanIndex::Loc(lam.into()),
        }
    }
}

impl From<Term> for Channel {
    fn from(subject: Term) -> Channel {
        Channel::plain(subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_index_is_plain() {
        assert_eq!(ChanIndex::default(), ChanIndex::Plain);
        assert!(ChanIndex::Plain.is_plain());
        assert!(!ChanIndex::Loc(LocVar::new("l")).is_plain());
    }

    #[test]
    fn constructors_set_indexes() {
        let c = Term::name("c");
        assert_eq!(Channel::plain(c.clone()).index, ChanIndex::Plain);
        assert_eq!(
            Channel::loc(c.clone(), "lam").index,
            ChanIndex::Loc(LocVar::new("lam"))
        );
        let addr = RelAddr::identity();
        assert_eq!(
            Channel::at(c.clone(), addr.clone()).index,
            ChanIndex::At(addr)
        );
        let via_from: Channel = c.clone().into();
        assert_eq!(via_from, Channel::plain(c));
    }
}
