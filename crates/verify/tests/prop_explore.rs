//! Property-based tests of the exploration engine's determinism
//! guarantees: hashed-key interning agrees with the full canonical
//! strings, and the parallel frontier produces a bit-for-bit identical
//! [`Lts`] for every worker count.

use proptest::prelude::*;
use spi_addr::Path;
use spi_syntax::{Name, Process, Term, Var};
use spi_verify::{ExploreOptions, Explorer, IntruderSpec, Label, Lts};

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("c")),
        Just(Name::new("d")),
        Just(Name::new("k")),
    ]
}

/// A small closed replication-free process, as in `prop_budget`, plus
/// restriction and parallel composition so machine-generated names and
/// interleavings show up in the state space.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            arb_name().prop_map(|c| Process::output(
                Term::Name(c.clone()),
                Term::Name(c),
                Process::Nil
            )),
        ]
        .boxed();
    }
    prop_oneof![
        Just(Process::Nil),
        (arb_name(), arb_name(), arb_process(depth - 1))
            .prop_map(|(c, m, p)| Process::output(Term::Name(c), Term::Name(m), p)),
        (arb_name(), arb_process(depth - 1)).prop_map(|(c, p)| Process::input(
            Term::Name(c),
            Var::new("x"),
            p
        )),
        (arb_name(), arb_process(depth - 1)).prop_map(|(n, p)| Process::restrict(n, p)),
        (arb_process(depth - 1), arb_process(depth - 1)).prop_map(|(l, r)| Process::par(l, r)),
    ]
    .boxed()
}

/// `(νc)(P | 0)` — the closed system with the intruder seat `‖1`, the
/// same shape the `Verifier` front-end builds.
fn under_attack(p: &Process) -> Process {
    Process::restrict_all([Name::new("c")], Process::par(p.clone(), Process::Nil))
}

fn opts(workers: usize, verify_keys: bool) -> ExploreOptions {
    ExploreOptions {
        unfold_bound: 1,
        intruder: Some(IntruderSpec::new(
            "1".parse::<Path>().expect("static path"),
            [Name::new("c")],
        )),
        workers,
        verify_keys,
        ..ExploreOptions::default()
    }
}

/// Everything the engine promises to keep identical across worker
/// counts: state keys, barbs, edges (labels and targets, in order),
/// statistics, coverage, exhaustion, and the frontier.
fn assert_identical(a: &Lts, b: &Lts) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.stats, b.stats, "statistics differ");
    prop_assert_eq!(a.coverage, b.coverage, "coverage accounting differs");
    prop_assert_eq!(&a.frontier, &b.frontier, "frontiers differ");
    prop_assert_eq!(a.exhausted, b.exhausted, "exhaustion differs");
    prop_assert_eq!(a.states.len(), b.states.len(), "state counts differ");
    for (i, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        prop_assert_eq!(sa.key, sb.key, "state {} key differs", i);
        prop_assert_eq!(&sa.barbs, &sb.barbs, "state {} barbs differ", i);
        prop_assert_eq!(&sa.edges, &sb.edges, "state {} edges differ", i);
    }
    Ok(())
}

/// The visible trace alphabet actually used by the verdict machinery —
/// a coarser view than the full edge comparison, kept as a second,
/// independently computed check.
fn visible_labels(lts: &Lts) -> Vec<(usize, String, usize)> {
    let mut out = Vec::new();
    for (src, st) in lts.states.iter().enumerate() {
        for (label, tgt) in &st.edges {
            if let Label::Obs(ev, _) = label {
                out.push((src, format!("{ev:?}"), *tgt));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interning by 128-bit hashed keys agrees with interning by the
    /// full canonical strings: `verify_keys` makes the store assert the
    /// two indexes agree on every lookup, and the resulting system is
    /// identical to the production (hash-only) one.
    #[test]
    fn hashed_keys_agree_with_canonical_strings(p in arb_process(2)) {
        let sys = under_attack(&p);
        let hashed = Explorer::new(opts(1, false)).explore(&sys);
        let checked = Explorer::new(opts(1, true)).explore(&sys);
        match (hashed, checked) {
            (Ok(h), Ok(c)) => {
                assert_identical(&h, &c)?;
            }
            (Err(eh), Err(ec)) => prop_assert_eq!(format!("{eh}"), format!("{ec}")),
            (h, c) => prop_assert!(false, "divergent outcomes: {h:?} vs {c:?}"),
        }
    }

    /// The parallel frontier is a pure speedup: for any worker count the
    /// engine produces the same LTS as the sequential one — same state
    /// numbering, same edges, same frontier, same visible traces.
    #[test]
    fn worker_count_never_changes_the_lts(
        p in arb_process(2),
        workers in 2usize..6,
    ) {
        let sys = under_attack(&p);
        let sequential = Explorer::new(opts(1, false)).explore(&sys);
        let parallel = Explorer::new(opts(workers, false)).explore(&sys);
        match (sequential, parallel) {
            (Ok(s), Ok(par)) => {
                assert_identical(&s, &par)?;
                prop_assert_eq!(visible_labels(&s), visible_labels(&par));
            }
            (Err(es), Err(ep)) => prop_assert_eq!(format!("{es}"), format!("{ep}")),
            (s, par) => prop_assert!(false, "divergent outcomes: {s:?} vs {par:?}"),
        }
    }
}
