//! Experiment E1 — Figure 1 of the paper: the tree of sequential
//! processes of `(P0|P1)|(P2|(P3|P4))` and the relative addresses the
//! paper reads off it (Section 3).

use spi_auth_repro::addr::{Path, ProcTree, RelAddr};

fn fig1() -> ProcTree<&'static str> {
    ProcTree::node(
        ProcTree::node(ProcTree::leaf("P0"), ProcTree::leaf("P1")),
        ProcTree::node(
            ProcTree::leaf("P2"),
            ProcTree::node(ProcTree::leaf("P3"), ProcTree::leaf("P4")),
        ),
    )
}

fn p(s: &str) -> Path {
    s.parse().expect("valid path literal")
}

#[test]
fn the_tree_has_the_papers_shape() {
    let t = fig1();
    assert_eq!(t.leaf_count(), 5);
    assert_eq!(t.to_string(), "((P0 | P1) | (P2 | (P3 | P4)))");
    let leaves: Vec<(String, &str)> = t.leaves().map(|(path, v)| (path.to_bits(), *v)).collect();
    assert_eq!(
        leaves,
        vec![
            ("00".into(), "P0"),
            ("01".into(), "P1"),
            ("10".into(), "P2"),
            ("110".into(), "P3"),
            ("111".into(), "P4"),
        ]
    );
}

#[test]
fn the_address_of_p3_relative_to_p1() {
    // "the address of P3 relative to P1 is l = ‖0‖1•‖1‖1‖0"
    let t = fig1();
    let l = t.address_between(&p("01"), &p("110")).unwrap();
    assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0");
    // "the relative address of P1 with respect to P3 is ‖1‖1‖0•‖0‖1,
    //  that we write also as l⁻¹"
    assert_eq!(l.inverse().to_string(), "‖1‖1‖0•‖0‖1");
}

#[test]
fn definition_2_compatibility() {
    let l = RelAddr::between(&p("01"), &p("110"));
    assert!(l.is_compatible(&l.inverse()));
    assert!(l.inverse().is_compatible(&l));
    assert!(!l.is_compatible(&l));
}

#[test]
fn section_3_2_forwarding_example() {
    // P3 sends its private n to P1, who forwards it to P2: the tag is
    // updated so that "the name n of P3 is correctly referred to" at P2
    // by the address of P3 relative to P2.
    let tag_at_p1 = RelAddr::between(&p("01"), &p("110"));
    let comm = RelAddr::between(&p("10"), &p("01"));
    let tag_at_p2 = tag_at_p1.compose(&comm).unwrap();
    assert_eq!(tag_at_p2, RelAddr::between(&p("10"), &p("110")));
    assert_eq!(tag_at_p2.observer(), &p("0"));
    assert_eq!(tag_at_p2.target(), &p("10"));
}

#[test]
fn section_3_1_partner_example() {
    // "P3 sends b along a_l ... l = ‖1‖1‖0•‖0‖1" — the pointer held by P3
    // towards P1 resolves, at P3's position, to P1's position.
    let l = RelAddr::between(&p("110"), &p("01"));
    assert_eq!(l.to_string(), "‖1‖1‖0•‖0‖1");
    assert_eq!(l.resolve_at(&p("110")).unwrap(), p("01"));
}
