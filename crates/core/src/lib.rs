//! Authentication primitives for protocol specifications.
//!
//! `spi-auth` is a full implementation of *"Authentication Primitives for
//! Protocol Specifications"* (Bodei, Degano, Focardi, Priami, 2003): a
//! spi calculus extended with two semantic authentication primitives —
//! **partner authentication** (channels localized at relative addresses
//! in the tree of sequential processes) and **message authentication**
//! (located datums that carry their creator's address) — together with
//! the paper's verification methodology: write the *abstract* protocol,
//! secure by construction; then prove that a *concrete* cryptographic
//! protocol **securely implements** it, by checking that no attacker and
//! no tester can tell them apart (Definition 4).
//!
//! This crate is the facade: it re-exports the layered crates and adds
//! the top-level API.
//!
//! * [`Verifier`] — checks `concrete ⊑ abstract` under the most-general
//!   bounded intruder and narrates any attack it finds in the paper's
//!   message-sequence notation;
//! * [`propositions`] — mechanical re-derivations of the paper's formal
//!   results (Propositions 1–4 and the two counterexamples of Section 5).
//!
//! # Quickstart
//!
//! ```
//! use spi_auth::{Verifier, Verdict};
//! use spi_auth::protocols::single;
//!
//! // The paper's Section 5.1: the shared-key protocol implements the
//! // abstract one, the plaintext protocol does not.
//! let abstract_p = single::abstract_protocol("c", "observe")?;
//! let verifier = Verifier::new(["c"]);
//! let report = verifier.check(&single::shared_key("c", "observe"), &abstract_p)?;
//! assert!(matches!(report.verdict, Verdict::SecurelyImplements));
//!
//! let report = verifier.check(&single::plaintext("c", "observe"), &abstract_p)?;
//! assert!(matches!(report.verdict, Verdict::Attack(_)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod propositions;
pub mod server;

pub use spi_semantics::{FaultClause, FaultKind, FaultParseError, FaultSpec};
pub use spi_verify::{
    Attack, Budget, CampaignOptions, CampaignReport, CoverageStats, Engine, EquivDirection,
    MinimalCounterexample, ReduceOptions, ResourceKind, ScheduleOutcome, ScheduleResult, Verdict,
    VerificationReport, Verifier,
};

pub use spi_addr as addr;
pub use spi_conformance as conformance;
pub use spi_protocols as protocols;
pub use spi_semantics as semantics;
pub use spi_syntax as syntax;
pub use spi_verify as verify;
