//! Property-based tests of fault-schedule campaigns (the `campaign`
//! module of `spi-verify`): every shrunk schedule still reproduces its
//! attack, 1-minimality is real — removing any single unit firing makes
//! the attack disappear — and the report is a pure function of the
//! search space, independent of the worker count.

use proptest::prelude::*;
use spi_auth_repro::auth::{Verdict, Verifier};
use spi_auth_repro::protocols::multi;
use spi_auth_repro::semantics::{FaultKind, FaultSpec};
use spi_auth_repro::syntax::Process;

const ALL_KINDS: [FaultKind; 4] = [
    FaultKind::Drop,
    FaultKind::Duplicate,
    FaultKind::Reorder,
    FaultKind::Replay,
];

fn verifier() -> Verifier {
    Verifier::new(["c"]).sessions(2).no_intruder()
}

/// The paper's Section 5.2 pair: the multi-session shared-key protocol
/// (replay-vulnerable once the network can repeat messages) against the
/// abstract multi-session specification.
fn protocols() -> (Process, Process) {
    let concrete = multi::shared_key("c", "observe");
    let spec = multi::abstract_protocol("c", "observe").expect("well-formed");
    (concrete, spec)
}

/// A non-empty subset of the four fault kinds, drawn as a 4-bit mask.
fn arb_kinds() -> impl Strategy<Value = Vec<FaultKind>> {
    (1u8..16).prop_map(|mask| {
        ALL_KINDS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect()
    })
}

/// Checks one explicit schedule the way `spi verify --fault` does.
fn attacks_under(schedule: &FaultSpec, concrete: &Process, spec: &Process) -> bool {
    let v = if schedule.clauses.is_empty() {
        verifier()
    } else {
        verifier().faults(schedule.clone())
    };
    let report = v.check(concrete, spec).expect("exploration succeeds");
    matches!(report.verdict, Verdict::Attack(_))
}

/// Every way of removing one unit firing from a schedule: decrement a
/// clause's budget, dropping the clause entirely at zero.
fn unit_removals(schedule: &FaultSpec) -> Vec<FaultSpec> {
    (0..schedule.clauses.len())
        .map(|i| {
            let mut weakened = schedule.clone();
            if weakened.clauses[i].max <= 1 {
                weakened.clauses.remove(i);
            } else {
                weakened.clauses[i].max -= 1;
            }
            weakened.canonical()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every attack a campaign reports carries a shrunk schedule that
    /// (a) reproduces the attack on its own and (b) is genuinely
    /// 1-minimal: removing any single unit firing loses the attack.
    #[test]
    fn shrunk_schedules_reproduce_and_are_one_minimal(
        kinds in arb_kinds(),
        depth in 1usize..3,
    ) {
        let (concrete, spec) = protocols();
        let v = verifier();
        let mut opts = v.campaign_options(depth);
        opts.kinds = kinds;
        let report = v.run_campaign(&concrete, &spec, &opts).expect("campaign runs");
        for (result, cex) in report.attacks() {
            prop_assert!(
                attacks_under(&cex.schedule, &concrete, &spec),
                "minimal schedule {} (shrunk from {}) must reproduce its attack",
                cex.schedule.canonical_key(),
                result.key,
            );
            for weakened in unit_removals(&cex.schedule) {
                prop_assert!(
                    !attacks_under(&weakened, &concrete, &spec),
                    "{} is not 1-minimal: weakened {} still attacks",
                    cex.schedule.canonical_key(),
                    weakened.canonical_key(),
                );
            }
        }
    }

    /// The campaign report is a pure function of the search space: the
    /// worker count changes wall-clock time, never a single result.
    #[test]
    fn reports_are_identical_for_any_worker_count(
        kinds in arb_kinds(),
        depth in 1usize..3,
        extra_workers in 1usize..4,
    ) {
        let (concrete, spec) = protocols();
        let solo = verifier().workers(1);
        let fleet = verifier().workers(1 + extra_workers);
        let mut solo_opts = solo.campaign_options(depth);
        solo_opts.kinds = kinds.clone();
        let mut fleet_opts = fleet.campaign_options(depth);
        fleet_opts.kinds = kinds;
        let a = solo.run_campaign(&concrete, &spec, &solo_opts).expect("campaign runs");
        let b = fleet.run_campaign(&concrete, &spec, &fleet_opts).expect("campaign runs");
        prop_assert_eq!(
            &a.identity,
            &b.identity,
            "the worker count is excluded from the campaign identity"
        );
        prop_assert_eq!(a.results, b.results);
    }
}
