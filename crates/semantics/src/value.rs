//! Run-time terms: messages with provenance.

use spi_addr::{Path, RelAddr};
use spi_syntax::{Name, Term, Var};

use crate::{NameId, NameTable};

/// A term as the machine manipulates it.
///
/// Compared to the source [`Term`], names appear in two forms: [`RtTerm::Sym`]
/// is a ν-bound name whose restriction has not executed yet (each execution
/// will allocate a fresh [`NameId`]), while [`RtTerm::Id`] is an allocated
/// machine name whose provenance lives in the [`NameTable`].
///
/// Composite messages carry an optional `creator` — the tree position of
/// the sequential process that first *output* them.  Together with the
/// per-name creator recorded in the table, this realizes the paper's
/// located values: the relative address `l` of a datum as seen by a holder
/// at position `p` is `RelAddr::between(p, creator)`, computed on demand
/// by [`RtTerm::location_at`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RtTerm {
    /// A variable awaiting an input or decryption substitution.
    Var(Var),
    /// A ν-bound source name whose restriction has not executed yet.
    Sym(Name),
    /// An allocated machine name.
    Id(NameId),
    /// A pair.
    Pair {
        /// First component.
        fst: Box<RtTerm>,
        /// Second component.
        snd: Box<RtTerm>,
        /// Position of the process that first output this pair.
        creator: Option<Path>,
    },
    /// A shared-key encryption.
    Enc {
        /// The encrypted components.
        body: Vec<RtTerm>,
        /// The key.
        key: Box<RtTerm>,
        /// Position of the process that first output this ciphertext.
        creator: Option<Path>,
    },
    /// A source-level located literal `l M` (Section 3.2), used as a
    /// pattern in matchings; it is not a constructible message.
    LocatedLit {
        /// The literal relative address.
        addr: RelAddr,
        /// The underlying pattern.
        inner: Box<RtTerm>,
    },
}

impl RtTerm {
    /// Converts a source term; every name becomes [`RtTerm::Sym`] (free
    /// names are interned by the configuration loader afterwards).
    #[must_use]
    pub fn from_static(t: &Term) -> RtTerm {
        match t {
            Term::Name(n) => RtTerm::Sym(n.clone()),
            Term::Var(v) => RtTerm::Var(v.clone()),
            Term::Pair(a, b) => RtTerm::Pair {
                fst: Box::new(RtTerm::from_static(a)),
                snd: Box::new(RtTerm::from_static(b)),
                creator: None,
            },
            Term::Enc { body, key } => RtTerm::Enc {
                body: body.iter().map(RtTerm::from_static).collect(),
                key: Box::new(RtTerm::from_static(key)),
                creator: None,
            },
            Term::Located { addr, inner } => RtTerm::LocatedLit {
                addr: addr.clone(),
                inner: Box::new(RtTerm::from_static(inner)),
            },
        }
    }

    /// Returns `true` when the term is a transmissible message: no
    /// variables, no unexecuted ν-bound names, no located literals.
    #[must_use]
    pub fn is_message(&self) -> bool {
        match self {
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::LocatedLit { .. } => false,
            RtTerm::Id(_) => true,
            RtTerm::Pair { fst, snd, .. } => fst.is_message() && snd.is_message(),
            RtTerm::Enc { body, key, .. } => {
                body.iter().all(RtTerm::is_message) && key.is_message()
            }
        }
    }

    /// Substitutes a message for a variable.
    #[must_use]
    pub fn subst_var(&self, var: &Var, value: &RtTerm) -> RtTerm {
        match self {
            RtTerm::Var(v) if v == var => value.clone(),
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) => self.clone(),
            RtTerm::Pair { fst, snd, creator } => RtTerm::Pair {
                fst: Box::new(fst.subst_var(var, value)),
                snd: Box::new(snd.subst_var(var, value)),
                creator: creator.clone(),
            },
            RtTerm::Enc { body, key, creator } => RtTerm::Enc {
                body: body.iter().map(|t| t.subst_var(var, value)).collect(),
                key: Box::new(key.subst_var(var, value)),
                creator: creator.clone(),
            },
            RtTerm::LocatedLit { addr, inner } => RtTerm::LocatedLit {
                addr: addr.clone(),
                inner: Box::new(inner.subst_var(var, value)),
            },
        }
    }

    /// Substitutes an allocated name for a symbolic one (executing a
    /// restriction, or interning a free name).
    #[must_use]
    pub fn subst_sym(&self, sym: &Name, id: NameId) -> RtTerm {
        match self {
            RtTerm::Sym(n) if n == sym => RtTerm::Id(id),
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) => self.clone(),
            RtTerm::Pair { fst, snd, creator } => RtTerm::Pair {
                fst: Box::new(fst.subst_sym(sym, id)),
                snd: Box::new(snd.subst_sym(sym, id)),
                creator: creator.clone(),
            },
            RtTerm::Enc { body, key, creator } => RtTerm::Enc {
                body: body.iter().map(|t| t.subst_sym(sym, id)).collect(),
                key: Box::new(key.subst_sym(sym, id)),
                creator: creator.clone(),
            },
            RtTerm::LocatedLit { addr, inner } => RtTerm::LocatedLit {
                addr: addr.clone(),
                inner: Box::new(inner.subst_sym(sym, id)),
            },
        }
    }

    /// Stamps missing creators on composite nodes with `sender` — the
    /// "a datum belonging to A" rule: a composite message belongs to the
    /// process that first outputs it.  Names keep the creator of their
    /// restriction; already-stamped composites are forwarded unchanged, so
    /// "the identity of names is maintained".
    #[must_use]
    pub fn stamp(&self, sender: &Path) -> RtTerm {
        match self {
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) | RtTerm::LocatedLit { .. } => {
                self.clone()
            }
            RtTerm::Pair { fst, snd, creator } => RtTerm::Pair {
                fst: Box::new(fst.stamp(sender)),
                snd: Box::new(snd.stamp(sender)),
                creator: creator.clone().or_else(|| Some(sender.clone())),
            },
            RtTerm::Enc { body, key, creator } => RtTerm::Enc {
                body: body.iter().map(|t| t.stamp(sender)).collect(),
                key: Box::new(key.stamp(sender)),
                creator: creator.clone().or_else(|| Some(sender.clone())),
            },
        }
    }

    /// The creator position of the term's outermost constructor: the
    /// restriction site for names, the stamped sender for composites,
    /// `None` for free names and unstamped terms.
    #[must_use]
    pub fn creator<'t>(&'t self, names: &'t NameTable) -> Option<&'t Path> {
        match self {
            RtTerm::Id(id) => names.creator(*id),
            RtTerm::Pair { creator, .. } | RtTerm::Enc { creator, .. } => creator.as_ref(),
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::LocatedLit { .. } => None,
        }
    }

    /// The paper's located view of the term as seen by a holder at
    /// `holder`: the relative address of the creator, or `None` when the
    /// term has no recorded origin.
    #[must_use]
    pub fn location_at(&self, holder: &Path, names: &NameTable) -> Option<RelAddr> {
        self.creator(names).map(|c| RelAddr::between(holder, c))
    }

    /// Renders the term using the table's display names.
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        match self {
            RtTerm::Var(v) => v.to_string(),
            RtTerm::Sym(n) => format!("^{n}"),
            RtTerm::Id(id) => names.display(*id),
            RtTerm::Pair { fst, snd, .. } => {
                format!("({}, {})", fst.display(names), snd.display(names))
            }
            RtTerm::Enc { body, key, .. } => {
                let parts: Vec<String> = body.iter().map(|t| t.display(names)).collect();
                format!("{{{}}}{}", parts.join(", "), key.display(names))
            }
            RtTerm::LocatedLit { addr, inner } => {
                format!("[{}]{}", addr, inner.display(names))
            }
        }
    }
}

/// Evaluates a matching `[a = b]` at a sequential process sitting at
/// `holder` (Section 3.2's located matching).
///
/// Located literals act as patterns: `l M` matches a value `v` when the
/// creator of `v` is the process reachable from `holder` through `l` and
/// `v` agrees with `M` (exactly, or by base spelling for names — a literal
/// `d` in a pattern refers to "the `d` created there", which is a
/// different machine name than any free `d`).
#[must_use]
pub fn match_eq(a: &RtTerm, b: &RtTerm, holder: &Path, names: &NameTable) -> bool {
    match (a, b) {
        (RtTerm::LocatedLit { addr, inner }, v) | (v, RtTerm::LocatedLit { addr, inner }) => {
            let Ok(expected) = addr.resolve_at(holder) else {
                return false;
            };
            v.creator(names) == Some(&expected) && lit_inner_matches(inner, v, names)
        }
        _ => a == b,
    }
}

/// Matches the inner pattern of a located literal against a value.
fn lit_inner_matches(pattern: &RtTerm, value: &RtTerm, names: &NameTable) -> bool {
    if pattern == value {
        return true;
    }
    match (pattern, value) {
        (RtTerm::Id(p), RtTerm::Id(v)) => names.entry(*p).base == names.entry(*v).base,
        (RtTerm::Sym(p), RtTerm::Id(v)) => p == &names.entry(*v).base,
        _ => false,
    }
}

/// Evaluates an address matching `[a ≗ b]` at `holder`: passes when both
/// operands have a recorded origin and the origins coincide.
#[must_use]
pub fn addr_match_terms(a: &RtTerm, b: &RtTerm, names: &NameTable) -> bool {
    match (a.creator(names), b.creator(names)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Evaluates an address matching `[a ≗ l]` against a literal address at
/// `holder`: passes when `a` originates from the process reachable from
/// `holder` through `l`.
#[must_use]
pub fn addr_match_lit(a: &RtTerm, lit: &RelAddr, holder: &Path, names: &NameTable) -> bool {
    match (a.creator(names), lit.resolve_at(holder)) {
        (Some(c), Ok(expected)) => c == &expected,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse_term;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    fn table_with(names: &mut NameTable) -> (NameId, NameId, NameId) {
        let c = names.intern_free(&Name::new("c"));
        let m = names.alloc_restricted(&Name::new("m"), p("00"));
        let k = names.alloc_restricted(&Name::new("k"), p("1"));
        (c, m, k)
    }

    #[test]
    fn from_static_preserves_structure() {
        let t = parse_term("{m, (a, b)}k").unwrap();
        let rt = RtTerm::from_static(&t);
        match &rt {
            RtTerm::Enc { body, creator, .. } => {
                assert_eq!(body.len(), 2);
                assert_eq!(creator, &None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!rt.is_message(), "symbolic names are not yet messages");
    }

    #[test]
    fn subst_sym_allocates_identity() {
        let mut names = NameTable::new();
        let m = names.alloc_restricted(&Name::new("m"), p("0"));
        let t = RtTerm::from_static(&parse_term("{m}m").unwrap());
        let t = t.subst_sym(&Name::new("m"), m);
        assert!(t.is_message());
        match t {
            RtTerm::Enc { body, key, .. } => {
                assert_eq!(*body, vec![RtTerm::Id(m)]);
                assert_eq!(*key, RtTerm::Id(m));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stamping_fills_only_missing_creators() {
        let mut names = NameTable::new();
        let (_, m, k) = table_with(&mut names);
        let cipher = RtTerm::Enc {
            body: vec![RtTerm::Id(m)],
            key: Box::new(RtTerm::Id(k)),
            creator: None,
        };
        let stamped = cipher.stamp(&p("00"));
        assert_eq!(stamped.creator(&names), Some(&p("00")));
        // Forwarding through another sender does not change the creator.
        let forwarded = stamped.stamp(&p("1"));
        assert_eq!(forwarded.creator(&names), Some(&p("00")));
    }

    #[test]
    fn name_creator_comes_from_the_table() {
        let mut names = NameTable::new();
        let (c, m, _) = table_with(&mut names);
        assert_eq!(RtTerm::Id(m).creator(&names), Some(&p("00")));
        assert_eq!(RtTerm::Id(c).creator(&names), None);
        // Stamping never retags names.
        assert_eq!(RtTerm::Id(m).stamp(&p("1")).creator(&names), Some(&p("00")));
    }

    #[test]
    fn location_is_relative_to_holder() {
        let mut names = NameTable::new();
        let (_, m, _) = table_with(&mut names);
        // Holder at ‖0‖1, creator at ‖0‖0.
        let loc = RtTerm::Id(m).location_at(&p("01"), &names).unwrap();
        assert_eq!(loc, RelAddr::between(&p("01"), &p("00")));
    }

    #[test]
    fn match_eq_compares_identity() {
        let mut names = NameTable::new();
        let (c, m, _) = table_with(&mut names);
        let holder = p("01");
        assert!(match_eq(&RtTerm::Id(m), &RtTerm::Id(m), &holder, &names));
        assert!(!match_eq(&RtTerm::Id(m), &RtTerm::Id(c), &holder, &names));
    }

    #[test]
    fn located_literal_patterns_check_origin() {
        let mut names = NameTable::new();
        let (_, m, _) = table_with(&mut names);
        let holder = p("01");
        // Pattern [01.00]m — "the m created by the process at ‖0‖0".
        let lit = RtTerm::LocatedLit {
            addr: RelAddr::between(&p("01"), &p("00")),
            inner: Box::new(RtTerm::Sym(Name::new("m"))),
        };
        assert!(match_eq(&RtTerm::Id(m), &lit, &holder, &names));
        // Same pattern fails for a name created elsewhere.
        let m2 = names.alloc_restricted(&Name::new("m"), p("1"));
        assert!(!match_eq(&RtTerm::Id(m2), &lit, &holder, &names));
    }

    #[test]
    fn addr_match_compares_origins_only() {
        let mut names = NameTable::new();
        let (_, m, _) = table_with(&mut names);
        let n = names.alloc_restricted(&Name::new("n"), p("00"));
        let other = names.alloc_restricted(&Name::new("q"), p("1"));
        // m and n were both created at ‖0‖0: same origin, different names.
        assert!(addr_match_terms(&RtTerm::Id(m), &RtTerm::Id(n), &names));
        assert!(!addr_match_terms(
            &RtTerm::Id(m),
            &RtTerm::Id(other),
            &names
        ));
        // Free names have no origin.
        let mut t2 = NameTable::new();
        let c = t2.intern_free(&Name::new("c"));
        assert!(!addr_match_terms(&RtTerm::Id(c), &RtTerm::Id(c), &t2));
    }

    #[test]
    fn addr_match_lit_resolves_at_holder() {
        let mut names = NameTable::new();
        let (_, m, _) = table_with(&mut names);
        let holder = p("1");
        let lit = RelAddr::between(&p("1"), &p("00"));
        assert!(addr_match_lit(&RtTerm::Id(m), &lit, &holder, &names));
        // Wrong holder: the literal resolves elsewhere.
        assert!(!addr_match_lit(&RtTerm::Id(m), &lit, &p("01"), &names));
    }

    #[test]
    fn display_uses_table() {
        let mut names = NameTable::new();
        let (c, m, k) = table_with(&mut names);
        let t = RtTerm::Enc {
            body: vec![RtTerm::Id(m), RtTerm::Id(c)],
            key: Box::new(RtTerm::Id(k)),
            creator: None,
        };
        let shown = t.display(&names);
        assert!(shown.starts_with('{') && shown.contains("c"));
    }
}
