//! Abstract and concrete syntax for the spi calculus with authentication
//! primitives.
//!
//! This crate implements Section 2 of *"Authentication Primitives for
//! Protocol Specifications"* (Bodei, Degano, Focardi, Priami, 2003) — the
//! spi calculus of Abadi and Gordon extended with the paper's two
//! authentication mechanisms:
//!
//! * **Localized channels** `c_l` / `c_λ` ([`ChanIndex`]): a channel may be
//!   indexed by a relative address (partner authentication) or by a
//!   *location variable* instantiated at first contact;
//! * **Located terms** `l M` ([`Term::Located`]) and the **address
//!   matching** operator `[M ≗ N]` ([`Process::AddrMatch`]): the message
//!   authentication primitive.
//!
//! The crate provides:
//!
//! * the term and process ASTs ([`Term`], [`Process`], [`Channel`]);
//! * binding machinery: free names/variables ([`Process::free_names`]),
//!   capture-avoiding substitution ([`Process::subst_var`]) and
//!   alpha-equivalence ([`Process::alpha_eq`]);
//! * a concrete syntax with a lexer, a recursive-descent [`parse`] function
//!   with spans and readable errors, and a precedence-aware pretty-printer
//!   (the [`std::fmt::Display`] impls) that round-trips with the parser;
//! * an ergonomic [`builder`] module for constructing processes in Rust.
//!
//! # Concrete syntax at a glance
//!
//! ```text
//! 0                          nil
//! c<M>.P                     output M on c, continue as P
//! c(x).P                     input on c, bind x
//! c@lam<M>.P                 output on c localized at location variable lam
//! c@(01.110)<M>.P            output on c localized at the address ‖0‖1•‖1‖1‖0
//! (^m) P                     restriction (new m) P
//! P | Q                      parallel composition
//! [M = N] P                  matching
//! [M ~ N] P                  address matching (compare origins)
//! !P                         replication
//! {M, N}K                    shared-key encryption term
//! case L of {x, y}K in P     shared-key decryption
//! [01.110]m                  located term: m at address ‖0‖1•‖1‖1‖0
//! ```
//!
//! # Example
//!
//! ```
//! use spi_syntax::parse;
//!
//! // Example 1 of the paper: S = !P | Q.
//! let s = parse("!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))")?;
//! assert_eq!(s.to_string(),
//!     "!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))");
//! # Ok::<(), spi_syntax::SyntaxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod builder;
mod channel;
mod error;
mod free;
mod lex;
mod name;
mod parse;
mod print;
mod process;
mod program;
mod simplify;
mod span;
mod subst;
mod term;

pub use channel::{ChanIndex, Channel};
pub use error::SyntaxError;
pub use lex::{Lexer, Token, TokenKind};
pub use name::{LocVar, Name, Var};
pub use parse::{parse, parse_term};
pub use process::{AddrSide, Process};
pub use program::{parse_program, Program};
pub use span::Span;
pub use term::Term;
