//! Errors raised while building or compiling protocols.

use std::error::Error;
use std::fmt;

use spi_syntax::Span;

/// An error raised by the protocol builders and the narration compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The startup channel name would be captured by the processes it
    /// wires together.
    StartupNameClash {
        /// The clashing name.
        name: String,
    },
    /// A narration failed to parse.
    Narration {
        /// What went wrong.
        message: String,
        /// Where in the narration source.
        span: Span,
    },
    /// A narration is not compilable: a role uses something it cannot
    /// know or build.
    Unbuildable {
        /// The role that got stuck.
        role: String,
        /// What it could not build or check.
        what: String,
    },
    /// The abstract backend supports exactly two roles.
    AbstractArity {
        /// The number of roles found.
        roles: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::StartupNameClash { name } => {
                write!(
                    f,
                    "startup channel {name} clashes with a free name of the parties"
                )
            }
            ProtocolError::Narration { message, span } => {
                write!(f, "narration error at {span}: {message}")
            }
            ProtocolError::Unbuildable { role, what } => {
                write!(f, "role {role} cannot build or check {what}")
            }
            ProtocolError::AbstractArity { roles } => {
                write!(
                    f,
                    "the abstract backend localizes a two-party session, got {roles} roles"
                )
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ProtocolError::Unbuildable {
            role: "A".into(),
            what: "{m}k".into(),
        };
        assert!(e.to_string().contains("A"));
        assert!(e.to_string().contains("{m}k"));
    }
}
