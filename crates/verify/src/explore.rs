//! Bounded state-space exploration with the most-general intruder, a
//! resource governor, and an optional faulty network.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use spi_addr::Path;
use spi_semantics::{
    symmetry, Barb, CanonHasher, Canonicalizer, Config, FaultKind, FaultSpec, LeafState,
    NameTable, NetworkState, PathPerm, RtChanIndex, RtProcess, RtTerm, StepInfo,
};
use spi_syntax::{Name, Process};

use crate::iso::{Iso, IsoTable};
use crate::{
    Budget, CoverageStats, DeriveCache, Governor, Knowledge, ObsEvent, ObsTerm, ResourceKind,
    VerifyError,
};

/// The most-general bounded intruder of the paper's attacker class `E_C`.
///
/// The intruder occupies a fixed position of the process tree (usually
/// the right sibling of the protocol in `(νC)(P | X)`), communicates only
/// over the channels whose base spelling is listed in `channels` — the
/// set `C` of Definition 4 — and may invent up to `fresh_budget` fresh
/// names of its own (the `(νM_E)` of the paper's attack on `P1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntruderSpec {
    /// The intruder's tree position.
    pub position: Path,
    /// The base spellings of the protocol channels `C`.
    pub channels: BTreeSet<Name>,
    /// How many fresh names the intruder may create.
    pub fresh_budget: u32,
    /// Cap on freshly synthesized ciphertext candidates per injection.
    pub synth_cap: usize,
}

impl IntruderSpec {
    /// An intruder at `position` talking over `channels`, with one fresh
    /// name and a small synthesis cap.
    #[must_use]
    pub fn new<I, N>(position: Path, channels: I) -> IntruderSpec
    where
        I: IntoIterator<Item = N>,
        N: Into<Name>,
    {
        IntruderSpec {
            position,
            channels: channels.into_iter().map(Into::into).collect(),
            fresh_budget: 1,
            synth_cap: 16,
        }
    }
}

/// Which state-space reductions to apply.  Both are sound for the
/// verdicts this toolkit computes — weak traces, weak barbs, deadlock
/// reachability — and both compose; the conformance suite's `reduce`
/// oracle checks reduced-vs-unreduced equality differentially.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceOptions {
    /// Session-symmetry quotient: canonicalize state keys over
    /// permutations of interchangeable replication copies, so the
    /// factorially many session interleavings collapse to one
    /// representative per orbit.  Merges record the witnessing
    /// isomorphism, and trace extraction maps observations back through
    /// it — the reported trace set is exactly the unquotiented one.
    pub symmetry: bool,
    /// Ample-set partial-order reduction: when a state offers an
    /// always-commuting invisible move (a replication unfolding, or a
    /// communication over a restricted channel nothing else references),
    /// expand only that move and prune the sibling interleavings.
    pub por: bool,
}

impl ReduceOptions {
    /// No reduction (the historical behaviour).
    #[must_use]
    pub fn none() -> ReduceOptions {
        ReduceOptions::default()
    }

    /// Both reductions.
    #[must_use]
    pub fn full() -> ReduceOptions {
        ReduceOptions {
            symmetry: true,
            por: true,
        }
    }

    /// Returns `true` when any reduction is on.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.symmetry || self.por
    }

    /// The canonical mode name: `none`, `symmetry`, `por`, or `full`.
    #[must_use]
    pub fn mode(&self) -> &'static str {
        match (self.symmetry, self.por) {
            (false, false) => "none",
            (true, false) => "symmetry",
            (false, true) => "por",
            (true, true) => "full",
        }
    }

    /// Parses a mode name as produced by [`ReduceOptions::mode`].
    #[must_use]
    pub fn parse(s: &str) -> Option<ReduceOptions> {
        match s {
            "none" => Some(ReduceOptions::none()),
            "symmetry" => Some(ReduceOptions {
                symmetry: true,
                por: false,
            }),
            "por" => Some(ReduceOptions {
                symmetry: false,
                por: true,
            }),
            "full" => Some(ReduceOptions::full()),
            _ => None,
        }
    }
}

/// Bounds and switches for exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// The resource budget.  Exhaustion is not an error: exploration
    /// stops, the prefix built so far is returned, and the frontier plus
    /// the exhausted resource are reported on the [`Lts`].
    pub budget: Budget,
    /// How many copies each replication may spawn.
    pub unfold_bound: u32,
    /// The intruder, if any.
    pub intruder: Option<IntruderSpec>,
    /// The faulty-network model, if any.
    pub faults: Option<FaultSpec>,
    /// Worker threads for frontier expansion.  `1` recovers the
    /// sequential engine exactly; any value produces a bit-for-bit
    /// identical [`Lts`] (state numbering, edges, governor accounting),
    /// because successors are computed speculatively in parallel and
    /// merged in the sequential visit order.  `0` is normalized to `1`.
    pub workers: usize,
    /// Differential key verification: intern states by their full
    /// canonical strings *alongside* the 128-bit hashes and panic on any
    /// disagreement (which would mean a hash collision or a
    /// canonicalization bug).  Debugging aid; off by default.
    pub verify_keys: bool,
    /// Which state-space reductions to apply.  Off by default; enabling
    /// any reduction forces isomorphism tracking (see
    /// [`ExploreOptions::track_isos`]) so extracted traces stay exact.
    pub reduce: ReduceOptions,
    /// Differential symmetry verification: on every quotiented key,
    /// additionally brute-force the *whole* permutation orbit and panic
    /// unless every permuted variant quotients to the same key (orbit
    /// invariance — the property that makes permuted duplicates merge).
    /// Debugging aid (like `verify_keys`); off by default.
    pub verify_symmetry: bool,
    /// Record the witnessing isomorphism of every state merge and ship
    /// the table on the [`Lts`], so trace extraction can reconstruct the
    /// exact raw trace set instead of mixing merged lineages.  Implied by
    /// any [`ReduceOptions`] reduction; useful on its own to make two
    /// explorations' trace sets exactly comparable.
    pub track_isos: bool,
    /// Test-only planted bug: replace the symmetry quotient with an
    /// *erasing* pseudo-quotient (copy subtrees dropped, signatures
    /// hashed) that conflates genuinely different states.  Exists so the
    /// conformance suite can prove its `reduce` oracle catches a
    /// realistic canonicalization bug.
    #[doc(hidden)]
    pub sym_conflate: bool,
    /// A wall-clock cut-off.  When the clock passes it, the exploration
    /// stops between state expansions (in-flight workers drain
    /// cooperatively), the prefix built so far is kept, and the
    /// exhaustion is reported as [`ResourceKind::WallClock`] — so the
    /// downstream verdict is *inconclusive*, never silently partial.
    /// Unlike every other budget dimension this one is non-deterministic
    /// by nature; leave it `None` (the default) for reproducible runs.
    pub deadline: Option<Instant>,
    /// A cooperative cancellation flag shared with the caller: setting
    /// it stops the exploration at the next state boundary, exactly like
    /// a passed deadline (and with the same [`ResourceKind::WallClock`]
    /// report).  Campaign drivers use one flag across many explorations
    /// to cancel a whole sweep at once.
    pub cancel: Option<Arc<AtomicBool>>,
    /// A shared progress counter the explorer bumps once per consumed
    /// (fully expanded) state, with relaxed ordering.  Long-running
    /// services stream it as a liveness heartbeat while a job runs;
    /// `None` (the default) costs nothing and never affects results.
    pub progress: Option<Arc<AtomicU64>>,
    /// Test-only crash hook: successor computations for states with an
    /// index at or past the value panic.  Exercises the worker
    /// `catch_unwind` isolation without planting bugs in the semantics.
    #[doc(hidden)]
    pub panic_after_states: Option<usize>,
}

impl ExploreOptions {
    /// The historical defaults (50 000 states, unfold bound 2, no
    /// intruder, no faults) — identical to `Default` except written out
    /// for discoverability.
    #[must_use]
    pub fn bounded() -> ExploreOptions {
        ExploreOptions::default()
    }

    /// The number of worker threads the host offers: what
    /// [`ExploreOptions::default`] uses for `workers`.
    #[must_use]
    pub fn available_workers() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }
}

impl Default for ExploreOptions {
    /// The historical defaults: the default [`Budget`] (50 000 states,
    /// everything else unlimited), unfold bound 2 (the paper's
    /// two-session analyses), no intruder, no faults, all available
    /// worker threads (the result is identical for every worker count).
    fn default() -> ExploreOptions {
        ExploreOptions {
            budget: Budget::default(),
            unfold_bound: 2,
            intruder: None,
            faults: None,
            workers: ExploreOptions::available_workers(),
            verify_keys: false,
            reduce: ReduceOptions::none(),
            verify_symmetry: false,
            track_isos: false,
            sym_conflate: false,
            deadline: None,
            cancel: None,
            progress: None,
            panic_after_states: None,
        }
    }
}

/// The wall-clock cut-off shared between the merge loop and the workers:
/// a cancellation flag plus an optional deadline that trips it.
struct WallClock<'f> {
    cancel: &'f AtomicBool,
    deadline: Option<Instant>,
}

impl WallClock<'_> {
    /// Returns `true` once the exploration should stop — because the
    /// caller cancelled or the deadline passed (which latches the flag,
    /// so every worker sees the overrun without re-reading the clock).
    fn overrun(&self) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.cancel.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// What a silent edge did — kept for narration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepDesc {
    /// An internal machine step (communication or unfolding).
    Internal(StepInfo),
    /// The intruder intercepted an output.
    Intercept {
        /// The sender's position.
        from: Path,
        /// The channel subject.
        subject: RtTerm,
        /// The intercepted message.
        payload: RtTerm,
    },
    /// The intruder injected a message into an input.
    Inject {
        /// The receiver's position.
        to: Path,
        /// The channel subject.
        subject: RtTerm,
        /// The injected message.
        payload: RtTerm,
    },
    /// A continuation output was consumed by the (notional) tester.
    Observe {
        /// The sender's position.
        from: Path,
        /// The free channel.
        chan: Name,
        /// The observed message.
        payload: RtTerm,
    },
    /// The faulty network acted on a message in transit.
    Fault {
        /// What the network did.
        kind: FaultKind,
        /// The channel's base spelling.
        chan: Name,
        /// The affected message.
        payload: RtTerm,
    },
}

impl StepDesc {
    /// Renders the step for diagnostics, using `names` for display.
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        match self {
            StepDesc::Internal(StepInfo::Comm(ci)) => format!(
                "comm {} → {} : {} on {}",
                ci.sender.to_bits(),
                ci.receiver.to_bits(),
                ci.payload.display(names),
                ci.subject.display(names)
            ),
            StepDesc::Internal(StepInfo::Unfold { path }) => {
                format!("unfold at {}", path.to_bits())
            }
            StepDesc::Intercept {
                from,
                subject,
                payload,
            } => format!(
                "intercept {} : {} on {}",
                from.to_bits(),
                payload.display(names),
                subject.display(names)
            ),
            StepDesc::Inject {
                to,
                subject,
                payload,
            } => format!(
                "inject → {} : {} on {}",
                to.to_bits(),
                payload.display(names),
                subject.display(names)
            ),
            StepDesc::Observe {
                from,
                chan,
                payload,
            } => format!(
                "observe {} : {} on {}",
                from.to_bits(),
                payload.display(names),
                chan
            ),
            StepDesc::Fault {
                kind,
                chan,
                payload,
            } => format!("fault {kind} on {chan} : {}", payload.display(names)),
        }
    }
}

/// An edge label: silent or visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// A silent step (internal, an intruder move, or a network fault —
    /// the paper's testing scenario makes environment activity
    /// unobservable).
    Tau(StepDesc),
    /// A visible observation by the tester.
    Obs(ObsEvent, StepDesc),
}

impl Label {
    /// The observation, for visible edges.
    #[must_use]
    pub fn obs(&self) -> Option<&ObsEvent> {
        match self {
            Label::Obs(ev, _) => Some(ev),
            Label::Tau(_) => None,
        }
    }

    /// The step description.
    #[must_use]
    pub fn desc(&self) -> &StepDesc {
        match self {
            Label::Tau(d) | Label::Obs(_, d) => d,
        }
    }
}

/// One explored state.
#[derive(Debug, Clone)]
pub struct LtsState {
    /// Canonical identity: the 128-bit FNV-1a digest of the canonical
    /// serialization stream (configuration, sorted knowledge, fresh-name
    /// count, network state).
    pub key: u128,
    /// The barbs exhibited here.
    pub barbs: BTreeSet<Barb>,
    /// Outgoing edges.
    pub edges: Vec<(Label, usize)>,
    /// The configuration (for narration and diagnostics).
    pub config: Config,
    /// The intruder knowledge at this state.
    pub knowledge: Knowledge,
}

/// Exploration statistics, reported with every verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of distinct states.
    pub states: usize,
    /// Number of edges.
    pub edges: usize,
    /// How many state merges the session-symmetry quotient produced that
    /// a plain canonical key would have missed (the edge's isomorphism
    /// permutes copy positions).  Zero when the quotient is off.
    pub states_quotiented: u64,
    /// How many successor moves the partial-order reduction pruned.
    /// Zero when POR is off.
    pub por_pruned: u64,
    /// How many successors the `verify_symmetry` brute-force orbit check
    /// audited *before* POR pruning.  Pruned successors are never
    /// interned, so the intern-time check alone would silently skip
    /// them; this counter proves the pre-POR pass covered them.  Zero
    /// unless `verify_symmetry`, POR and the symmetry quotient are all
    /// on.
    pub sym_prechecked: u64,
}

/// The labelled transition system produced by an [`Explorer`].
///
/// The system may be a *prefix* of the bounded state space: when the
/// [`Budget`] ran out, [`Lts::exhausted`] names the resource that did and
/// [`Lts::frontier`] lists the states that were reached but not fully
/// expanded.  A complete exploration has an empty frontier.
#[derive(Debug, Clone)]
pub struct Lts {
    /// All states; index 0 is the initial one.
    pub states: Vec<LtsState>,
    /// Statistics.
    pub stats: ExploreStats,
    /// What the exploration covered.
    pub coverage: CoverageStats,
    /// The first resource that ran out, when the exploration is partial.
    pub exhausted: Option<ResourceKind>,
    /// States reached but not fully expanded (empty when complete).
    pub frontier: Vec<usize>,
    /// The interned state isomorphisms (index 0 is the identity).  Empty
    /// unless isomorphism tracking ran and some merge needed a
    /// non-identity witness.
    pub isos: Vec<Iso>,
    /// For every edge whose target was merged into a representative under
    /// a non-identity isomorphism: `(source state, edge position) → iso
    /// id` into [`Lts::isos`], mapping the representative's coordinates
    /// back to the coordinates the edge actually produced.  Edges absent
    /// here carry the identity.
    pub edge_isos: BTreeMap<(usize, usize), u32>,
}

impl Lts {
    /// The initial state.
    #[must_use]
    pub fn initial(&self) -> &LtsState {
        &self.states[0]
    }

    /// Returns `true` when the bounded state space was fully explored —
    /// the precondition for negative claims (absence of a behaviour) to
    /// be sound.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.exhausted.is_none() && self.frontier.is_empty()
    }

    /// All states reachable from `from` by silent steps (including
    /// `from`).
    #[must_use]
    pub fn tau_closure(&self, from: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([from]);
        let mut work = vec![from];
        while let Some(s) = work.pop() {
            for (label, tgt) in &self.states[s].edges {
                if matches!(label, Label::Tau(_)) && seen.insert(*tgt) {
                    work.push(*tgt);
                }
            }
        }
        seen
    }

    /// Every state's τ-closure at once, via one strongly-connected-
    /// component pass over the silent edges instead of one BFS restart
    /// per state (states in the same τ-SCC share one closure set, and a
    /// component's closure is the union of its members with its
    /// successors' closures in reverse topological order).
    ///
    /// `tau_closures().of(s)` equals [`Lts::tau_closure`]`(s)` for every
    /// `s`; checkers that query many states (weak traces, simulation)
    /// should compute this once and reuse it.
    #[must_use]
    pub fn tau_closures(&self) -> TauClosures {
        let n = self.states.len();
        // Tarjan's algorithm, iteratively (explored graphs can be deep).
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        // SCCs in emission order: every edge out of an SCC lands in an
        // earlier-emitted one, so closures propagate in one pass.
        let mut scc_members: Vec<Vec<usize>> = Vec::new();
        let tau_targets = |s: usize| {
            self.states[s].edges.iter().filter_map(|(label, tgt)| {
                matches!(label, Label::Tau(_)).then_some(*tgt)
            })
        };
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // (state, next edge position) call stack.
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut pos)) = call.last_mut() {
                if let Some(w) = tau_targets(v).nth(*pos) {
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = scc_members.len();
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc_members.push(members);
                    }
                }
            }
        }
        let mut scc_closure: Vec<Arc<BTreeSet<usize>>> = Vec::with_capacity(scc_members.len());
        for (ci, members) in scc_members.iter().enumerate() {
            let mut close: BTreeSet<usize> = members.iter().copied().collect();
            let mut extends: Vec<usize> = Vec::new();
            for &v in members {
                for w in tau_targets(v) {
                    if comp[w] != ci {
                        extends.push(comp[w]);
                    }
                }
            }
            extends.sort_unstable();
            extends.dedup();
            for succ in extends {
                close.extend(scc_closure[succ].iter().copied());
            }
            scc_closure.push(Arc::new(close));
        }
        TauClosures {
            closure: comp.into_iter().map(|c| scc_closure[c].clone()).collect(),
        }
    }

    /// A structural digest of the whole transition system: state count,
    /// edge count, exhaustion, every state's canonical key, barbs, and
    /// outgoing edges (labels included), and the frontier.  Two
    /// explorations of the same process under equivalent options produce
    /// equal fingerprints *iff* they produced bit-for-bit identical
    /// systems — the workers-determinism guarantee conformance oracles
    /// check differentially, without holding two full LTSes side by side.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        use std::fmt::Write as _;
        let mut h = CanonHasher::new();
        let _ = write!(
            h,
            "{}|{}|{:?}|",
            self.stats.states, self.stats.edges, self.exhausted
        );
        for s in &self.states {
            let _ = write!(h, "s{:x};{:?};", s.key, s.barbs);
            for (label, tgt) in &s.edges {
                let _ = write!(h, "e{tgt}:{label:?};");
            }
        }
        for f in &self.frontier {
            let _ = write!(h, "f{f};");
        }
        // The iso section appears only when some merge recorded a
        // non-identity witness, so untracked explorations keep their
        // historical fingerprints bit-for-bit.
        if !self.edge_isos.is_empty() {
            let _ = write!(h, "I");
            for ((s, e), id) in &self.edge_isos {
                let _ = write!(h, "i{s}.{e}:{id};");
            }
            for iso in &self.isos {
                let _ = write!(h, "{iso:?};");
            }
        }
        h.finish()
    }

    /// The indices of *stuck* states: no outgoing edge, yet some live
    /// component remains (an I/O prefix waiting forever, or a replication
    /// at its unfold bound).  Fully exhausted terminal states are not
    /// reported — graceful termination is not a deadlock.  Frontier
    /// states are not reported either: they were cut off by the budget,
    /// not by the semantics.
    #[must_use]
    pub fn deadlocks(&self) -> Vec<usize> {
        // `frontier` is sorted (see `explore`), so membership is a
        // binary search, not a linear scan per state.
        self.states
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.edges.is_empty()
                    && !s.config.is_exhausted()
                    && self.frontier.binary_search(i).is_err()
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The barbs weakly reachable from the initial state:
    /// `P ⇓ β` for every reported barb.
    #[must_use]
    pub fn weak_barbs(&self) -> BTreeSet<Barb> {
        let mut out = BTreeSet::new();
        let mut seen = vec![false; self.states.len()];
        let mut work = vec![0usize];
        seen[0] = true;
        while let Some(s) = work.pop() {
            out.extend(self.states[s].barbs.iter().cloned());
            for (_, tgt) in &self.states[s].edges {
                if !seen[*tgt] {
                    seen[*tgt] = true;
                    work.push(*tgt);
                }
            }
        }
        out
    }
}

/// All τ-closures of an [`Lts`], computed at once by
/// [`Lts::tau_closures`].  States in the same τ-SCC share one closure
/// allocation.
#[derive(Debug, Clone)]
pub struct TauClosures {
    closure: Vec<Arc<BTreeSet<usize>>>,
}

impl TauClosures {
    /// The states reachable from `s` by silent steps (including `s`).
    #[must_use]
    pub fn of(&self, s: usize) -> &BTreeSet<usize> {
        &self.closure[s]
    }
}

/// Explores the bounded state space of a closed process, optionally under
/// attack by the most-general intruder and/or a faulty network.
///
/// # Example
///
/// ```
/// use spi_verify::{Explorer, ExploreOptions};
/// use spi_syntax::parse;
///
/// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
/// let lts = Explorer::new(ExploreOptions::default()).explore(&p)?;
/// assert!(lts.complete());
/// assert!(lts.stats.states >= 2);
/// assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    opts: ExploreOptions,
}

#[derive(Debug, Clone)]
struct StateData {
    cfg: Config,
    knowledge: Knowledge,
    fresh_made: u32,
    net: Option<NetworkState>,
}

impl StateData {
    /// Streams the canonical state serialization into `out`:
    /// configuration, intruder knowledge, fresh-name count, network
    /// state, all through one shared canonicalizer.
    ///
    /// Knowledge terms are serialized in the order of their *canonical*
    /// renderings, not the raw [`NameId`]-based set order: the raw order
    /// depends on allocation history, so two states holding the same
    /// knowledge learnt along different interleavings would otherwise
    /// feed the canonicalizer in different orders and intern as distinct
    /// states.  Each term's sort key is a [`Canonicalizer::probe_term`]
    /// rendering against the post-configuration numbering (ties between
    /// equal renderings are symmetric, so either order yields the same
    /// stream).
    fn write_key<S: std::fmt::Write>(&self, out: &mut S) {
        let mut canon = Canonicalizer::new();
        self.write_key_with(&mut canon, out);
    }

    /// [`StateData::write_key`] through a caller-supplied canonicalizer,
    /// whose journal afterwards maps canonical name slots back to raw
    /// [`spi_semantics::NameId`]s — the id half of a merge isomorphism.
    fn write_key_with<S: std::fmt::Write>(&self, canon: &mut Canonicalizer, out: &mut S) {
        self.cfg.write_canonical(canon, out);
        let _ = out.write_char('|');
        let mut fragments: Vec<(String, &RtTerm)> = self
            .knowledge
            .iter()
            .map(|t| (canon.probe_term(t, self.cfg.names()), t))
            .collect();
        fragments.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (_, t) in fragments {
            canon.write_term(t, self.cfg.names(), out);
            let _ = out.write_char(',');
        }
        let _ = out.write_char('|');
        let _ = write!(out, "{}", self.fresh_made);
        if let Some(net) = &self.net {
            let _ = out.write_char('|');
            net.write_canonical(canon, self.cfg.names(), out);
        }
    }

    /// The key plus the canonicalizer journal (canonical slot → raw name
    /// id), captured in one serialization pass.
    fn key_and_journal(&self) -> (u128, Vec<u32>) {
        let mut canon = Canonicalizer::new();
        let mut h = CanonHasher::new();
        self.write_key_with(&mut canon, &mut h);
        let journal = canon
            .journal()
            .iter()
            .map(|id| u32::try_from(id.index()).unwrap_or(u32::MAX))
            .collect();
        (h.finish(), journal)
    }

    /// This state with a copy permutation physically applied everywhere:
    /// the configuration (subtrees moved, creators rewritten), the
    /// intruder knowledge, and the network buffer and log.  `fresh_made`
    /// is position-independent and carries over.
    fn permuted(&self, perm: &PathPerm) -> StateData {
        if perm.is_identity() {
            return self.clone();
        }
        let mut net = self.net.clone();
        if let Some(nn) = &mut net {
            for (_, t) in &mut nn.buffer {
                *t = symmetry::rewrite_term(t, perm);
            }
            for (_, t) in &mut nn.log {
                *t = symmetry::rewrite_term(t, perm);
            }
        }
        StateData {
            cfg: symmetry::apply_perm(&self.cfg, perm),
            knowledge: self.knowledge.map_terms(|t| symmetry::rewrite_term(t, perm)),
            fresh_made: self.fresh_made,
            net,
        }
    }

    /// Whether the whole state (configuration, knowledge, network) is
    /// free of depth-dependent constructs, making copy permutations
    /// behaviour-preserving here.
    fn sym_eligible(&self) -> bool {
        if !symmetry::sym_eligible(&self.cfg) {
            return false;
        }
        if self.knowledge.iter().any(term_tracks_depth) {
            return false;
        }
        if let Some(net) = &self.net {
            if net
                .buffer
                .iter()
                .chain(net.log.iter())
                .any(|(_, t)| term_tracks_depth(t))
            {
                return false;
            }
        }
        true
    }

    /// The 128-bit canonical key: the serialization stream folded through
    /// a [`CanonHasher`], no heap allocation for the key itself.
    fn key(&self) -> u128 {
        let mut h = CanonHasher::new();
        self.write_key(&mut h);
        h.finish()
    }

    /// The full canonical string — the debug/verification path behind
    /// [`ExploreOptions::verify_keys`].
    fn key_string(&self) -> String {
        let mut out = String::new();
        self.write_key(&mut out);
        out
    }
}

/// Returns `true` when a term contains a located literal — the one term
/// construct whose meaning depends on its holder's depth.
fn term_tracks_depth(t: &RtTerm) -> bool {
    match t {
        RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::Id(_) => false,
        RtTerm::Pair { fst, snd, .. } => term_tracks_depth(fst) || term_tracks_depth(snd),
        RtTerm::Enc { body, key, .. } => {
            body.iter().any(term_tracks_depth) || term_tracks_depth(key)
        }
        RtTerm::LocatedLit { .. } => true,
    }
}

/// The signature-guided quotient key: the minimum raw key over the
/// candidate permutations, together with the winning candidate's
/// canonicalization journal and the candidate itself.  `None` when the
/// candidate set overflows [`symmetry::MAX_CANDIDATES`] (the caller falls
/// back to the raw key, which is always sound).
fn signature_min(
    sd: &StateData,
    groups: &[symmetry::SessionGroup],
) -> Option<(u128, Vec<u32>, PathPerm)> {
    let perms = symmetry::candidate_perms(&sd.cfg, groups, symmetry::MAX_CANDIDATES)?;
    let mut best: Option<(u128, Vec<u32>, PathPerm)> = None;
    for perm in perms {
        let (key, journal) = sd.permuted(&perm).key_and_journal();
        if best.as_ref().is_none_or(|(k, _, _)| key < *k) {
            best = Some((key, journal, perm));
        }
    }
    best
}

/// The `verify_symmetry` debug check.  The signature-guided key is a
/// *canonical form*, not the orbit's hash minimum (copies with distinct
/// signatures are ordered by signature, not by hash), so the property to
/// verify is orbit invariance: every permuted variant of the state must
/// quotient to the same key, or permuted duplicates would survive.
fn verify_orbit_invariance(
    sd: &StateData,
    groups: &[symmetry::SessionGroup],
    key: u128,
    pinned: &[Path],
) {
    let Some(orbit) = symmetry::all_perms(groups, 120) else {
        return; // Orbit too large to brute-force; nothing to check.
    };
    for perm in &orbit {
        let variant = sd.permuted(perm);
        let vgroups = symmetry::session_groups(&variant.cfg, pinned);
        let Some((vkey, _, _)) = signature_min(&variant, &vgroups) else {
            continue; // Capped variant falls back to raw keys anyway.
        };
        assert_eq!(
            key,
            vkey,
            "symmetry quotient is not orbit-invariant: {key:#034x} vs {vkey:#034x} \
             for a permuted variant, over {} permutations of {} group(s)",
            orbit.len(),
            groups.len(),
        );
    }
}

/// How the store canonicalizes and relates states: the reduction switches
/// plus the positions no copy permutation may move.
#[derive(Debug, Clone, Default)]
struct SymCtx {
    /// Record journals on every interned state and isomorphisms on every
    /// merge (forced on by any reduction).
    tracking: bool,
    /// Quotient keys by session-copy permutations.
    symmetry: bool,
    /// Brute-force-check every quotiented key against the full orbit.
    verify: bool,
    /// The planted-bug pseudo-quotient (see `ExploreOptions::sym_conflate`).
    conflate: bool,
    /// Positions that must not move: the intruder's and the fault
    /// model's seats.
    pinned: Vec<Path>,
}

/// Everything the store remembers about how one state was canonicalized:
/// the winning copy permutation, the canonicalizer journal of the winning
/// serialization, and the name-table length — the raw material for merge
/// isomorphisms.
#[derive(Debug, Clone, Default)]
struct SymAnnot {
    perm: PathPerm,
    journal: Vec<u32>,
    names_len: u32,
}

/// One state's canonical identity as the store computes it.
struct CanonOut {
    key: u128,
    /// The full canonical string, present iff `verify_keys`.
    string: Option<String>,
    annot: SymAnnot,
}

/// The state store: LTS states, their exploration payloads, and the
/// canonical-key index (hashed, with an optional parallel string index
/// for differential verification).
#[derive(Debug, Default)]
struct StateStore {
    states: Vec<LtsState>,
    data: Vec<StateData>,
    index: HashMap<u128, usize>,
    /// Present iff [`ExploreOptions::verify_keys`]: the same interning
    /// decisions re-derived from full canonical strings.
    strings: Option<HashMap<String, usize>>,
    /// Canonicalization annotations, parallel to `states` (empty
    /// annotations when not tracking).
    annots: Vec<SymAnnot>,
    isos: IsoTable,
    sym: SymCtx,
}

impl StateStore {
    fn new(verify_keys: bool, sym: SymCtx) -> StateStore {
        StateStore {
            strings: verify_keys.then(HashMap::new),
            isos: IsoTable::new(),
            sym,
            ..StateStore::default()
        }
    }

    /// The canonical identity of `sd` under the configured reductions.
    ///
    /// Without tracking this is the historical raw key.  With the
    /// symmetry quotient, the key is the minimum over the
    /// signature-guided candidate permutations of the *physically
    /// permuted* state's raw key — each candidate is a real state of the
    /// orbit, so the quotient can never conflate two states a plain
    /// exploration would distinguish.
    fn canonical(&self, sd: &StateData) -> CanonOut {
        let want_string = self.strings.is_some();
        if !self.sym.tracking {
            return CanonOut {
                key: sd.key(),
                string: want_string.then(|| sd.key_string()),
                annot: SymAnnot::default(),
            };
        }
        let names_len = u32::try_from(sd.cfg.names().len()).unwrap_or(u32::MAX);
        let raw = || {
            let (key, journal) = sd.key_and_journal();
            CanonOut {
                key,
                string: want_string.then(|| sd.key_string()),
                annot: SymAnnot {
                    perm: PathPerm::identity(),
                    journal,
                    names_len,
                },
            }
        };
        if !self.sym.symmetry || !sd.sym_eligible() {
            return raw();
        }
        let groups = symmetry::session_groups(&sd.cfg, &self.sym.pinned);
        if groups.is_empty() {
            return raw();
        }
        if self.sym.conflate {
            return self.conflated(sd, &groups, want_string);
        }
        // A candidate-cap overflow keeps the raw key: sound, because
        // permuted siblings overflow identically and fall back alike.
        let Some((key, journal, perm)) = signature_min(sd, &groups) else {
            return raw();
        };
        if self.sym.verify {
            verify_orbit_invariance(sd, &groups, key, &self.sym.pinned);
        }
        // The string index must follow the *hash* winner: ties between
        // hash-distinct candidates with string-identical renderings
        // cannot happen (the hash is a function of the string), and
        // min-by-string could disagree with min-by-hash.
        let string = want_string.then(|| sd.permuted(&perm).key_string());
        CanonOut {
            key,
            string,
            annot: SymAnnot {
                perm,
                journal,
                names_len,
            },
        }
    }

    /// The planted-bug pseudo-quotient: hash the copy-erased state plus
    /// the sorted per-group signature multisets.  Permutation-invariant —
    /// and *overmerging*, which the conformance `reduce` oracle must
    /// catch.
    fn conflated(
        &self,
        sd: &StateData,
        groups: &[symmetry::SessionGroup],
        want_string: bool,
    ) -> CanonOut {
        let (erased_cfg, erasure) = symmetry::erase_copies(&sd.cfg, groups);
        let erased = StateData {
            cfg: erased_cfg,
            knowledge: sd
                .knowledge
                .map_terms(|t| symmetry::rewrite_term(t, &erasure)),
            fresh_made: sd.fresh_made,
            net: sd.net.clone(),
        };
        let render = |out: &mut dyn FnMut(&str)| {
            let mut s = String::new();
            erased.write_key(&mut s);
            out(&s);
            for sigs in symmetry::group_signatures(&sd.cfg, groups) {
                out("|sig:");
                for sig in sigs {
                    out(&sig);
                    out(";");
                }
            }
        };
        let mut h = CanonHasher::new();
        render(&mut |part| {
            use std::fmt::Write as _;
            let _ = h.write_str(part);
        });
        let string = want_string.then(|| {
            let mut s = String::new();
            render(&mut |part| s.push_str(part));
            s
        });
        let (_, journal) = sd.key_and_journal();
        CanonOut {
            key: h.finish(),
            string,
            annot: SymAnnot {
                perm: PathPerm::identity(),
                journal,
                names_len: u32::try_from(sd.cfg.names().len()).unwrap_or(u32::MAX),
            },
        }
    }

    /// Stores `sd` as a brand-new state without consulting the governor —
    /// used for the initial state, which is always kept so a partial
    /// answer is never empty.
    fn push(&mut self, out: CanonOut, sd: StateData, queue: &mut VecDeque<usize>) -> usize {
        let i = self.states.len();
        self.states.push(LtsState {
            key: out.key,
            barbs: sd.cfg.barbs(),
            edges: Vec::new(),
            config: sd.cfg.clone(),
            knowledge: sd.knowledge.clone(),
        });
        if let Some(strings) = &mut self.strings {
            if let Some(s) = out.string {
                strings.insert(s, i);
            }
        }
        self.index.insert(out.key, i);
        self.data.push(sd);
        self.annots.push(out.annot);
        queue.push_back(i);
        i
    }

    /// Interns `sd`, returning its index plus the id of the isomorphism
    /// mapping the stored representative's coordinates to `sd`'s (`0`,
    /// the identity, for new states and untracked stores), or `None` when
    /// the state budget is already spent (noted on the governor).
    fn intern(
        &mut self,
        sd: StateData,
        gov: &mut Governor,
        queue: &mut VecDeque<usize>,
    ) -> Option<(usize, u32)> {
        let out = self.canonical(&sd);
        let hit = self.index.get(&out.key).copied();
        if let Some(strings) = &self.strings {
            let string_hit = out
                .string
                .as_ref()
                .and_then(|s| strings.get(s))
                .copied();
            assert_eq!(
                hit,
                string_hit,
                "hashed interning diverged from string interning at key {:#034x}: \
                 a 128-bit collision or a canonicalization bug",
                out.key
            );
        }
        if let Some(i) = hit {
            let iso = if self.sym.tracking {
                self.merge_iso(i, &out.annot)
            } else {
                0
            };
            return Some((i, iso));
        }
        if !gov.admit_state(self.states.len()) {
            return None;
        }
        Some((self.push(out, sd, queue), 0))
    }

    /// The isomorphism from the representative state `rep`'s raw
    /// coordinates to the just-merged state's: compose the
    /// representative's canonicalizing permutation with the inverse of
    /// the newcomer's, and zip the two canonicalizer journals (equal
    /// canonical strings assign their name slots in the same order) with
    /// a shifted tail for names allocated after the merge point.
    fn merge_iso(&mut self, rep: usize, new: &SymAnnot) -> u32 {
        let old = &self.annots[rep];
        let perm = old.perm.then(&new.perm.invert());
        let ids = old
            .journal
            .iter()
            .zip(new.journal.iter())
            .filter(|(a, b)| a != b)
            .map(|(&a, &b)| (a, b))
            .collect();
        let shift = i64::from(new.names_len) - i64::from(old.names_len);
        self.isos
            .intern(Iso::new(perm, ids, old.names_len, shift))
    }
}

impl Explorer {
    /// An explorer with the given options.
    #[must_use]
    pub fn new(opts: ExploreOptions) -> Explorer {
        Explorer { opts }
    }

    /// Explores the state space of `process`.
    ///
    /// Budget exhaustion is **not** an error: the explored prefix is
    /// returned with [`Lts::exhausted`] set and the unexpanded states in
    /// [`Lts::frontier`].
    ///
    /// # Errors
    ///
    /// Returns machine errors on malformed processes.
    pub fn explore(&self, process: &Process) -> Result<Lts, VerifyError> {
        let cfg = Config::from_process(process)?;
        let mut knowledge = Knowledge::new();
        if let Some(spec) = &self.opts.intruder {
            // Initial knowledge: every free name, plus the restricted
            // channel set C allocated at load.
            for (id, e) in cfg.names().iter() {
                if !e.restricted || spec.channels.contains(&e.base) {
                    knowledge.learn(RtTerm::Id(id));
                }
            }
        }
        let initial = StateData {
            cfg,
            knowledge,
            fresh_made: 0,
            net: self.opts.faults.as_ref().map(FaultSpec::initial_state),
        };

        let workers = self.opts.workers.max(1);
        let own_cancel = Arc::new(AtomicBool::new(false));
        let clock = WallClock {
            cancel: self.opts.cancel.as_deref().unwrap_or(&own_cancel),
            deadline: self.opts.deadline,
        };
        let mut gov = Governor::new(self.opts.budget);
        // Any reduction forces iso tracking: merges stop being identity
        // renamings, so traces must be able to undo them.
        let tracking = self.opts.track_isos || self.opts.reduce.enabled();
        let pinned = self.pinned_positions();
        let sym = SymCtx {
            tracking,
            symmetry: self.opts.reduce.symmetry,
            verify: self.opts.verify_symmetry,
            conflate: self.opts.sym_conflate,
            pinned,
        };
        let mut store = StateStore::new(self.opts.verify_keys, sym);
        let mut queue: VecDeque<usize> = VecDeque::new();
        // The initial state is always interned, even under a zero
        // budget, so a partial answer is never empty.
        let out = store.canonical(&initial);
        store.push(out, initial, &mut queue);
        // Fully-expanded flags, parallel to `states`.
        let mut expanded: Vec<bool> = Vec::new();
        // The sequential engine's derivation memo (each parallel worker
        // owns its own — see `compute_layer`).
        let mut cache = DeriveCache::new();

        let mut edges_total = 0usize;
        let mut edge_isos: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        let mut states_quotiented = 0u64;
        let mut por_pruned = 0u64;
        let mut sym_prechecked = 0u64;
        // Layered BFS.  Draining the queue one layer at a time visits
        // states in exactly the order the one-at-a-time loop would (pop
        // front, intern new states at the back), which lets the workers
        // compute a whole layer's successors speculatively while the
        // merge below replays the sequential governor decisions
        // verbatim — same numbering, same accounting, same cut-offs.
        'bfs: while !queue.is_empty() {
            let layer: Vec<usize> = queue.drain(..).collect();
            let mut computed = self.compute_layer(&layer, &store, workers, &clock);
            for (pos, &cur) in layer.iter().enumerate() {
                // Restores the queue as the sequential engine would have
                // left it: the interrupted state first, then the rest of
                // its layer, then everything interned meanwhile.
                macro_rules! cut_off {
                    () => {{
                        for &idx in layer[pos..].iter().rev() {
                            queue.push_front(idx);
                        }
                        break 'bfs;
                    }};
                }
                if clock.overrun() {
                    gov.note(ResourceKind::WallClock);
                    cut_off!();
                }
                if !gov.charge_fuel() {
                    cut_off!();
                }
                if !gov.admit_knowledge(store.data[cur].knowledge.len()) {
                    // Too much knowledge to expand: the state stays on
                    // the frontier, but exploration of its siblings
                    // continues.  (Any speculative successors are
                    // discarded unused.)
                    continue;
                }
                // An error surfaces only when the replay actually
                // consumes the state, exactly as in the sequential
                // engine; errors in speculative work past a cut-off are
                // dropped with it.
                let succ = match computed[pos].take() {
                    Some(result) => result?,
                    None => {
                        let sd = store.data[cur].clone();
                        self.caught_successors(cur, &sd, &mut cache)?
                    }
                };
                if !gov.charge_steps(succ.moves.len().max(1)) {
                    cut_off!();
                }
                // Pruning is accounted only when the state is actually
                // consumed, so the counter is worker-count independent.
                por_pruned += succ.pruned;
                sym_prechecked += succ.prechecked;
                for (label, next) in succ.moves {
                    if !gov.admit_transition(edges_total) {
                        cut_off!();
                    }
                    match store.intern(next, &mut gov, &mut queue) {
                        Some((tgt, iso)) => {
                            let edge_pos = store.states[cur].edges.len();
                            store.states[cur].edges.push((label, tgt));
                            edges_total += 1;
                            if iso != 0 {
                                edge_isos.insert((cur, edge_pos), iso);
                                if store.isos.get(iso).permutes_paths() {
                                    states_quotiented += 1;
                                }
                            }
                        }
                        None => {
                            cut_off!();
                        }
                    }
                }
                if expanded.len() <= cur {
                    expanded.resize(store.states.len(), false);
                }
                expanded[cur] = true;
                if let Some(p) = &self.opts.progress {
                    p.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let states = store.states;
        expanded.resize(states.len(), false);
        let mut frontier: Vec<usize> = (0..states.len()).filter(|&i| !expanded[i]).collect();
        frontier.sort_unstable();
        // A knowledge-capped state skipped above never re-enters the
        // queue, so anything unexpanded is genuinely frontier.
        let expanded_count = states.len() - frontier.len();
        let stats = ExploreStats {
            states: states.len(),
            edges: edges_total,
            states_quotiented,
            por_pruned,
            sym_prechecked,
        };
        let coverage = CoverageStats {
            states: states.len(),
            transitions: edges_total,
            expanded: expanded_count,
            frontier: frontier.len(),
            steps: gov.steps_spent(),
        };
        let isos = store.isos.into_isos();
        Ok(Lts {
            states,
            stats,
            coverage,
            exhausted: gov.exhausted(),
            frontier,
            // An all-identity table with no recorded edges means nothing
            // to undo: ship empty so downstream fast paths stay exact.
            isos: if edge_isos.is_empty() { Vec::new() } else { isos },
            edge_isos,
        })
    }

    /// Speculatively computes successors for every state of a frontier
    /// layer on a scoped worker pool.  Returns `None` slots when the
    /// layer is too small (or `workers == 1`) to be worth fanning out —
    /// the merge loop then computes those successors on demand, which is
    /// literally the sequential engine.
    ///
    /// Speculation never affects results: the merge consumes the slots
    /// in sequential order and discards anything past a budget cut-off.
    #[allow(clippy::type_complexity)]
    fn compute_layer(
        &self,
        layer: &[usize],
        store: &StateStore,
        workers: usize,
        clock: &WallClock<'_>,
    ) -> Vec<Option<Result<SuccSet, VerifyError>>> {
        let mut computed: Vec<Option<Result<SuccSet, VerifyError>>> =
            (0..layer.len()).map(|_| None).collect();
        let pool = workers.min(layer.len());
        if pool > 1 {
            let chunk = layer.len().div_ceil(pool);
            let data = &store.data;
            std::thread::scope(|scope| {
                for (slots, indices) in computed.chunks_mut(chunk).zip(layer.chunks(chunk)) {
                    scope.spawn(move || {
                        let mut cache = DeriveCache::new();
                        for (slot, &cur) in slots.iter_mut().zip(indices) {
                            // A tripped deadline drains the layer early:
                            // the merge loop cuts off before it would
                            // consume the missing slots.
                            if clock.overrun() {
                                break;
                            }
                            *slot = Some(self.caught_successors(cur, &data[cur], &mut cache));
                        }
                    });
                }
            });
        }
        computed
    }

    /// [`Explorer::successors`] behind a panic boundary: a panicking
    /// successor computation — in a worker thread or in the sequential
    /// fallback — surfaces as [`VerifyError::WorkerPanic`] carrying the
    /// payload, so one poisoned state fails only its own exploration and
    /// can never abort the process (campaigns report the schedule as
    /// inconclusive and move on).
    fn caught_successors(
        &self,
        cur: usize,
        sd: &StateData,
        cache: &mut DeriveCache,
    ) -> Result<SuccSet, VerifyError> {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(n) = self.opts.panic_after_states {
                assert!(
                    cur < n,
                    "test hook: successor computation for state {cur} panicked"
                );
            }
            self.successors(sd, cache)
        }));
        caught.unwrap_or_else(|payload| {
            Err(VerifyError::WorkerPanic {
                // `&*` descends into the box: coercing `&payload` would
                // unsize the `Box` itself into the `dyn Any` and defeat
                // the downcasts.
                payload: panic_text(&*payload),
            })
        })
    }

    /// All successor states of `sd` with their labels (possibly reduced
    /// to an ample subset — see [`ReduceOptions::por`]).  `cache`
    /// memoizes intruder derivability queries; it never changes the
    /// result, only the cost.
    fn successors(&self, sd: &StateData, cache: &mut DeriveCache) -> Result<SuccSet, VerifyError> {
        let mut out = Vec::new();

        // Internal machine actions.
        for action in sd.cfg.enabled(self.opts.unfold_bound) {
            let mut next = sd.clone();
            let info = next.cfg.fire(&action)?;
            out.push((Label::Tau(StepDesc::Internal(info)), next));
        }

        // Visible outputs: continuation outputs on free, unlocalized
        // channels, consumed by the notional tester.
        for (path, leaf) in sd.cfg.tree().leaves() {
            let LeafState::Out { chan, .. } = leaf else {
                continue;
            };
            let RtTerm::Id(id) = &chan.subject else {
                continue;
            };
            if !sd.cfg.names().is_free(*id) || chan.index != RtChanIndex::Plain {
                continue;
            }
            let chan_base = sd.cfg.names().entry(*id).base.clone();
            if let Some(spec) = &self.opts.intruder {
                // Channels in C are never tester-visible (Definition 4
                // restricts them); if the user left them free, keep them
                // intruder-only.
                if spec.channels.contains(&chan_base) {
                    continue;
                }
            }
            let mut next = sd.clone();
            let (payload, _) = next.cfg.take_output(&path, &path)?;
            let ev = ObsEvent {
                chan: chan_base.clone(),
                payload: ObsTerm::from_rt(&payload, next.cfg.names()),
            };
            let desc = StepDesc::Observe {
                from: path.clone(),
                chan: chan_base,
                payload,
            };
            out.push((Label::Obs(ev, desc), next));
        }

        // Intruder moves.
        if let Some(spec) = &self.opts.intruder {
            self.intruder_moves(sd, spec, cache, &mut out)?;
        }

        // Network faults.
        if let Some(fspec) = &self.opts.faults {
            self.fault_moves(sd, fspec, &mut out);
        }

        if self.opts.reduce.por && out.len() > 1 {
            if let Some(pick) = self.ample_index(sd, &out) {
                // `verify_symmetry` must audit what symmetry actually
                // quotients.  Successors dropped here are never
                // interned, so the intern-time orbit check in
                // `StateStore::canonical` would silently skip them —
                // run the brute-force check on the *whole* successor
                // set before the ample selection discards siblings.
                let prechecked = if self.opts.verify_symmetry && self.opts.reduce.symmetry {
                    self.precheck_orbit_invariance(&out)
                } else {
                    0
                };
                let pruned = (out.len() - 1) as u64;
                let chosen = out.swap_remove(pick);
                return Ok(SuccSet {
                    moves: vec![chosen],
                    pruned,
                    prechecked,
                });
            }
        }
        Ok(SuccSet {
            moves: out,
            pruned: 0,
            prechecked: 0,
        })
    }

    /// The positions no copy permutation may move: the intruder's and
    /// the fault model's seats.
    fn pinned_positions(&self) -> Vec<Path> {
        let mut pinned: Vec<Path> = Vec::new();
        if let Some(spec) = &self.opts.intruder {
            pinned.push(spec.position.clone());
        }
        if let Some(fspec) = &self.opts.faults {
            pinned.push(fspec.position.clone());
        }
        pinned
    }

    /// Pre-POR `verify_symmetry` pass: brute-force orbit invariance over
    /// every symmetry-eligible successor, returning how many were
    /// audited.  Panics (inside [`verify_orbit_invariance`]) if any
    /// permuted variant quotients to a different key.
    fn precheck_orbit_invariance(&self, out: &[(Label, StateData)]) -> u64 {
        let pinned = self.pinned_positions();
        let mut prechecked = 0u64;
        for (_, next) in out {
            if !next.sym_eligible() {
                continue;
            }
            let groups = symmetry::session_groups(&next.cfg, &pinned);
            if groups.is_empty() {
                continue;
            }
            // A candidate-cap overflow falls back to raw keys at intern
            // time; there is nothing quotient-specific to audit then.
            if let Some((key, _, _)) = signature_min(next, &groups) {
                verify_orbit_invariance(next, &groups, key, &pinned);
                prechecked += 1;
            }
        }
        prechecked
    }

    /// The ample-set selection: an index into `out` whose single move is
    /// a sound stand-in for the whole successor set, or `None` when every
    /// interleaving must be explored.
    ///
    /// Two shapes qualify, both invisible, both commuting with every
    /// other enabled move, and both incapable of disabling one:
    ///
    /// 1. **Unfold priority** — a replication unfolding only splits its
    ///    own `Bang` leaf; no other move touches that leaf, nothing
    ///    disables an unfolding, and its bounded per-leaf counter rules
    ///    out postponement cycles.
    /// 2. **Private communication** — an internal communication whose
    ///    subject is a restricted name occurring exactly twice in the
    ///    entire state (the sender's and the receiver's subject), with a
    ///    base spelling outside the intruder's channel set and every
    ///    fault clause.  No third party — tester, intruder, network, or
    ///    other process — can ever interact with that channel, so the
    ///    communication is independent of every other move, and each
    ///    firing consumes an I/O prefix pair, ruling out cycles.
    fn ample_index(&self, sd: &StateData, out: &[(Label, StateData)]) -> Option<usize> {
        for (i, (label, _)) in out.iter().enumerate() {
            if matches!(
                label,
                Label::Tau(StepDesc::Internal(StepInfo::Unfold { .. }))
            ) {
                return Some(i);
            }
        }
        for (i, (label, _)) in out.iter().enumerate() {
            let Label::Tau(StepDesc::Internal(StepInfo::Comm(ci))) = label else {
                continue;
            };
            let RtTerm::Id(id) = &ci.subject else {
                continue;
            };
            let entry = sd.cfg.names().entry(*id);
            if !entry.restricted {
                continue;
            }
            if let Some(spec) = &self.opts.intruder {
                if spec.channels.contains(&entry.base) {
                    continue;
                }
            }
            if let Some(fspec) = &self.opts.faults {
                if fspec.clauses.iter().any(|c| c.chan == entry.base) {
                    continue;
                }
            }
            if state_occurrences(sd, *id) == 2 {
                return Some(i);
            }
        }
        None
    }

    /// The faulty network's moves: clause-driven captures (drop,
    /// duplicate, reorder, replay-tap) plus free re-deliveries of
    /// buffered messages.  Every move goes through the machine's
    /// `take_output`/`deliver` hooks, so localization (partner
    /// authentication) refuses the network exactly as it refuses the
    /// intruder — a localized channel cannot be dropped, duplicated,
    /// reordered, or replayed.
    fn fault_moves(&self, sd: &StateData, fspec: &FaultSpec, out: &mut Vec<(Label, StateData)>) {
        let Some(net) = sd.net.as_ref() else {
            return;
        };
        let base_of = |subject: &RtTerm, names: &NameTable| -> Option<Name> {
            match subject {
                RtTerm::Id(id) => Some(names.entry(*id).base.clone()),
                _ => None,
            }
        };
        let push_fault =
            |out: &mut Vec<(Label, StateData)>, kind: FaultKind, chan: &Name, payload: RtTerm, next: StateData| {
                out.push((
                    Label::Tau(StepDesc::Fault {
                        kind,
                        chan: chan.clone(),
                        payload,
                    }),
                    next,
                ));
            };

        for (ci, clause) in fspec.clauses.iter().enumerate() {
            let has_charge = net.remaining(fspec, ci) > 0;
            match clause.kind {
                FaultKind::Drop => {
                    if !has_charge {
                        continue;
                    }
                    for (path, leaf) in sd.cfg.tree().leaves() {
                        let LeafState::Out { chan, .. } = leaf else {
                            continue;
                        };
                        if base_of(&chan.subject, sd.cfg.names()).as_ref() != Some(&clause.chan) {
                            continue;
                        }
                        let mut next = sd.clone();
                        // A refused take_output means the channel is
                        // localized away from the network: no fault move.
                        let Ok((payload, _)) = next.cfg.take_output(&path, &fspec.position) else {
                            continue;
                        };
                        let nn = next.net.get_or_insert_with(NetworkState::default);
                        nn.used[ci] += 1;
                        nn.log_message(&clause.chan, &payload);
                        push_fault(out, FaultKind::Drop, &clause.chan, payload, next);
                    }
                }
                FaultKind::Duplicate => {
                    if !has_charge {
                        continue;
                    }
                    for (out_path, leaf) in sd.cfg.tree().leaves() {
                        let LeafState::Out { chan, .. } = leaf else {
                            continue;
                        };
                        if base_of(&chan.subject, sd.cfg.names()).as_ref() != Some(&clause.chan) {
                            continue;
                        }
                        // Tap without consuming: probe a scratch copy both
                        // for localization admission and for the payload
                        // stamped with its true sender — duplication must
                        // preserve origin, or replays would be invisible
                        // to origin-aware testers.
                        let mut probe = sd.cfg.clone();
                        let Ok((stamped, _)) = probe.take_output(&out_path, &fspec.position) else {
                            continue;
                        };
                        for (in_path, in_leaf) in sd.cfg.tree().leaves() {
                            let LeafState::In { chan: in_chan, .. } = in_leaf else {
                                continue;
                            };
                            if in_chan.subject != chan.subject {
                                continue;
                            }
                            let mut next = sd.clone();
                            if next
                                .cfg
                                .deliver(&in_path, stamped.clone(), fspec.position.clone())
                                .is_ok()
                            {
                                let nn = next.net.get_or_insert_with(NetworkState::default);
                                nn.used[ci] += 1;
                                nn.log_message(&clause.chan, &stamped);
                                push_fault(
                                    out,
                                    FaultKind::Duplicate,
                                    &clause.chan,
                                    stamped.clone(),
                                    next,
                                );
                            }
                        }
                    }
                }
                FaultKind::Reorder => {
                    if !has_charge {
                        continue;
                    }
                    for (path, leaf) in sd.cfg.tree().leaves() {
                        let LeafState::Out { chan, .. } = leaf else {
                            continue;
                        };
                        if base_of(&chan.subject, sd.cfg.names()).as_ref() != Some(&clause.chan) {
                            continue;
                        }
                        let mut next = sd.clone();
                        let Ok((payload, _)) = next.cfg.take_output(&path, &fspec.position) else {
                            continue;
                        };
                        let nn = next.net.get_or_insert_with(NetworkState::default);
                        nn.used[ci] += 1;
                        nn.buffer.push((clause.chan.clone(), payload.clone()));
                        nn.log_message(&clause.chan, &payload);
                        push_fault(out, FaultKind::Reorder, &clause.chan, payload, next);
                    }
                }
                FaultKind::Replay => {
                    // Tap in-transit messages into the log — free and
                    // deduplicated, so the tap alone cannot diverge.
                    for (out_path, leaf) in sd.cfg.tree().leaves() {
                        let LeafState::Out { chan, .. } = leaf else {
                            continue;
                        };
                        if base_of(&chan.subject, sd.cfg.names()).as_ref() != Some(&clause.chan) {
                            continue;
                        }
                        let mut probe = sd.cfg.clone();
                        let Ok((stamped, _)) = probe.take_output(&out_path, &fspec.position) else {
                            continue;
                        };
                        if net.log.contains(&(clause.chan.clone(), stamped.clone())) {
                            continue;
                        }
                        let mut next = sd.clone();
                        let nn = next.net.get_or_insert_with(NetworkState::default);
                        nn.log_message(&clause.chan, &stamped);
                        push_fault(out, FaultKind::Replay, &clause.chan, stamped, next);
                    }
                    // Replay a logged message into a matching input.
                    if !has_charge {
                        continue;
                    }
                    for (chan_l, msg) in &net.log {
                        if chan_l != &clause.chan {
                            continue;
                        }
                        for (in_path, in_leaf) in sd.cfg.tree().leaves() {
                            let LeafState::In { chan: in_chan, .. } = in_leaf else {
                                continue;
                            };
                            if base_of(&in_chan.subject, sd.cfg.names()).as_ref()
                                != Some(&clause.chan)
                            {
                                continue;
                            }
                            let mut next = sd.clone();
                            if next
                                .cfg
                                .deliver(&in_path, msg.clone(), fspec.position.clone())
                                .is_ok()
                            {
                                let nn = next.net.get_or_insert_with(NetworkState::default);
                                nn.used[ci] += 1;
                                push_fault(out, FaultKind::Replay, &clause.chan, msg.clone(), next);
                            }
                        }
                    }
                }
            }
        }

        // Buffered (reordered) messages may be re-delivered at any later
        // point; the fault was charged at capture time.
        for (bi, (chan_b, msg)) in net.buffer.iter().enumerate() {
            for (in_path, in_leaf) in sd.cfg.tree().leaves() {
                let LeafState::In { chan: in_chan, .. } = in_leaf else {
                    continue;
                };
                if base_of(&in_chan.subject, sd.cfg.names()).as_ref() != Some(chan_b) {
                    continue;
                }
                let mut next = sd.clone();
                if next
                    .cfg
                    .deliver(&in_path, msg.clone(), fspec.position.clone())
                    .is_ok()
                {
                    let nn = next.net.get_or_insert_with(NetworkState::default);
                    nn.buffer.remove(bi);
                    push_fault(out, FaultKind::Reorder, chan_b, msg.clone(), next);
                }
            }
        }
    }

    fn intruder_moves(
        &self,
        sd: &StateData,
        spec: &IntruderSpec,
        cache: &mut DeriveCache,
        out: &mut Vec<(Label, StateData)>,
    ) -> Result<(), VerifyError> {
        let on_c = |subject: &RtTerm, names: &NameTable| -> bool {
            match subject {
                RtTerm::Id(id) => spec.channels.contains(&names.entry(*id).base),
                _ => false,
            }
        };

        for (path, leaf) in sd.cfg.tree().leaves() {
            match leaf {
                LeafState::Out { chan, .. } if on_c(&chan.subject, sd.cfg.names()) => {
                    // Intercept, if the localization lets the intruder in.
                    let mut next = sd.clone();
                    // A failed take_output means the localization refused
                    // the intruder — simply no intercept move.
                    if let Ok((payload, _)) = next.cfg.take_output(&path, &spec.position) {
                        next.knowledge.learn(payload.clone());
                        out.push((
                            Label::Tau(StepDesc::Intercept {
                                from: path.clone(),
                                subject: chan.subject.clone(),
                                payload,
                            }),
                            next,
                        ));
                    }
                }
                LeafState::In { chan, var, cont } if on_c(&chan.subject, sd.cfg.names()) => {
                    for candidate in self.injection_candidates(sd, spec, var, cont, cache) {
                        let mut next = sd.clone();
                        let payload = match candidate {
                            Candidate::Known(t) => t,
                            Candidate::Fresh => {
                                let id = next
                                    .cfg
                                    .alloc_env_name(&Name::new("mE"), spec.position.clone());
                                next.fresh_made += 1;
                                next.knowledge.learn(RtTerm::Id(id));
                                RtTerm::Id(id)
                            }
                        };
                        // As above: a refusal just means no inject move.
                        if next
                            .cfg
                            .deliver(&path, payload.clone(), spec.position.clone())
                            .is_ok()
                        {
                            out.push((
                                Label::Tau(StepDesc::Inject {
                                    to: path.clone(),
                                    subject: chan.subject.clone(),
                                    payload,
                                }),
                                next,
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Candidate payloads for injecting into an input: everything
    /// analyzed, one fresh name (budget permitting), and — when the
    /// receiver's continuation immediately decrypts under a known shape —
    /// ciphertexts of that shape.
    fn injection_candidates(
        &self,
        sd: &StateData,
        spec: &IntruderSpec,
        var: &spi_syntax::Var,
        cont: &RtProcess,
        cache: &mut DeriveCache,
    ) -> Vec<Candidate> {
        let mut cands: Vec<Candidate> =
            sd.knowledge.iter().cloned().map(Candidate::Known).collect();
        if sd.fresh_made < spec.fresh_budget {
            cands.push(Candidate::Fresh);
        }
        match expected_shape(var, cont) {
            Some(Shape::Cipher { key, arity }) => {
                for t in cache.ciphertext_candidates(&sd.knowledge, &key, arity, spec.synth_cap) {
                    let c = Candidate::Known(t);
                    if !cands.contains(&c) {
                        cands.push(c);
                    }
                }
            }
            Some(Shape::Pair) => {
                // Synthesize pairs of analyzed messages, capped.
                let atoms: Vec<RtTerm> = sd.knowledge.iter().cloned().collect();
                'outer: for a in &atoms {
                    for b in &atoms {
                        let c = Candidate::Known(RtTerm::Pair {
                            fst: Box::new(a.clone()),
                            snd: Box::new(b.clone()),
                            creator: None,
                        });
                        if !cands.contains(&c) {
                            cands.push(c);
                        }
                        if cands.len() > spec.synth_cap + sd.knowledge.len() + 1 {
                            break 'outer;
                        }
                    }
                }
            }
            None => {}
        }
        cands
    }
}

/// A state's successor moves, plus how many sibling moves the
/// partial-order reduction pruned to get there.
#[derive(Debug)]
struct SuccSet {
    moves: Vec<(Label, StateData)>,
    pruned: u64,
    /// Successors audited by the pre-POR `verify_symmetry` pass.
    prechecked: u64,
}

/// Counts the occurrences of name `id` across the entire state: every
/// leaf (channel subjects, payloads, continuations), the intruder
/// knowledge, and the network buffer and log.  Two occurrences of a
/// restricted name mean nobody else can ever use the channel.
fn state_occurrences(sd: &StateData, id: spi_semantics::NameId) -> usize {
    let mut n = 0;
    for (_, leaf) in sd.cfg.tree().leaves() {
        n += leaf_occurrences(leaf, id);
    }
    for t in sd.knowledge.iter() {
        n += term_occurrences(t, id);
    }
    if let Some(net) = &sd.net {
        for (_, t) in net.buffer.iter().chain(net.log.iter()) {
            n += term_occurrences(t, id);
        }
    }
    n
}

fn term_occurrences(t: &RtTerm, id: spi_semantics::NameId) -> usize {
    match t {
        RtTerm::Id(i) => usize::from(*i == id),
        RtTerm::Var(_) | RtTerm::Sym(_) => 0,
        RtTerm::Pair { fst, snd, .. } => term_occurrences(fst, id) + term_occurrences(snd, id),
        RtTerm::Enc { body, key, .. } => {
            body.iter().map(|x| term_occurrences(x, id)).sum::<usize>() + term_occurrences(key, id)
        }
        RtTerm::LocatedLit { inner, .. } => term_occurrences(inner, id),
    }
}

fn chan_occurrences(ch: &spi_semantics::RtChannel, id: spi_semantics::NameId) -> usize {
    term_occurrences(&ch.subject, id)
}

fn proc_occurrences(p: &RtProcess, id: spi_semantics::NameId) -> usize {
    match p {
        RtProcess::Nil => 0,
        RtProcess::Output(ch, t, cont) => {
            chan_occurrences(ch, id) + term_occurrences(t, id) + proc_occurrences(cont, id)
        }
        RtProcess::Input(ch, _, cont) => chan_occurrences(ch, id) + proc_occurrences(cont, id),
        RtProcess::Restrict(_, body) | RtProcess::Bang(body) => proc_occurrences(body, id),
        RtProcess::Par(l, r) => proc_occurrences(l, id) + proc_occurrences(r, id),
        RtProcess::Match(a, b, cont) | RtProcess::AddrMatchT(a, b, cont) => {
            term_occurrences(a, id) + term_occurrences(b, id) + proc_occurrences(cont, id)
        }
        RtProcess::AddrMatchL(a, _, cont) => term_occurrences(a, id) + proc_occurrences(cont, id),
        RtProcess::Split { pair, body, .. } => {
            term_occurrences(pair, id) + proc_occurrences(body, id)
        }
        RtProcess::Case {
            scrutinee,
            key,
            body,
            ..
        } => {
            term_occurrences(scrutinee, id)
                + term_occurrences(key, id)
                + proc_occurrences(body, id)
        }
    }
}

fn leaf_occurrences(leaf: &LeafState, id: spi_semantics::NameId) -> usize {
    match leaf {
        LeafState::Dead => 0,
        LeafState::Out {
            chan,
            payload,
            cont,
        } => chan_occurrences(chan, id) + term_occurrences(payload, id) + proc_occurrences(cont, id),
        LeafState::In { chan, cont, .. } => chan_occurrences(chan, id) + proc_occurrences(cont, id),
        LeafState::Bang { body, .. } => proc_occurrences(body, id),
    }
}

/// Renders a caught panic payload as text (panics raise `&str` or
/// `String` payloads in practice; anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Candidate {
    Known(RtTerm),
    Fresh,
}

/// The message shape the receiver's continuation expects of its input.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Shape {
    /// The input is immediately decrypted: `case x of {…}key`.
    Cipher { key: RtTerm, arity: usize },
    /// The input is immediately projected: `let (y, z) = x in …`.
    Pair,
}

/// When the continuation of an input binding `var` immediately destructs
/// `var` (possibly under restrictions and matchings), the expected shape
/// guides injection synthesis.
fn expected_shape(var: &spi_syntax::Var, cont: &RtProcess) -> Option<Shape> {
    let mut cur = cont;
    loop {
        match cur {
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                ..
            } if scrutinee == &RtTerm::Var(var.clone()) && key.is_message() => {
                return Some(Shape::Cipher {
                    key: key.clone(),
                    arity: binders.len(),
                });
            }
            RtProcess::Split { pair, .. } if pair == &RtTerm::Var(var.clone()) => {
                return Some(Shape::Pair);
            }
            RtProcess::Restrict(_, body) => cur = body,
            RtProcess::Match(_, _, c)
            | RtProcess::AddrMatchT(_, _, c)
            | RtProcess::AddrMatchL(_, _, c) => cur = c,
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn explore(src: &str, opts: ExploreOptions) -> Lts {
        Explorer::new(opts)
            .explore(&parse(src).expect("parses"))
            .expect("explores")
    }

    #[test]
    fn tiny_system_explores_fully() {
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        // τ comm, then an observation.
        assert!(lts.stats.states >= 3);
        assert!(lts.complete());
        assert!(lts.frontier.is_empty());
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn fingerprints_are_stable_across_worker_counts() {
        let src = "(^c, d)(((^m) c<m> | c(x)) | ((^n) d<n> | d(y)))";
        let base = explore(
            src,
            ExploreOptions {
                workers: 1,
                ..ExploreOptions::default()
            },
        )
        .fingerprint();
        for workers in [2, 8] {
            let fp = explore(
                src,
                ExploreOptions {
                    workers,
                    ..ExploreOptions::default()
                },
            )
            .fingerprint();
            assert_eq!(fp, base, "workers={workers}");
        }
        let other = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        assert_ne!(other.fingerprint(), base, "different systems differ");
    }

    #[test]
    fn deterministic_exploration_dedupes_interleavings() {
        let lts = explore(
            "(^c, d)(((^m) c<m> | c(x)) | ((^n) d<n> | d(y)))",
            ExploreOptions::default(),
        );
        // Four states: nothing fired, left fired, right fired, both — the
        // two interleavings of "both" merge canonically.
        assert_eq!(lts.stats.states, 4);
        assert_eq!(lts.coverage.states, 4);
        assert!(lts.coverage.complete());
    }

    #[test]
    fn state_budget_degrades_gracefully() {
        let lts = Explorer::new(ExploreOptions {
            budget: Budget::unlimited().states(2),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("partial result, not an error");
        assert_eq!(lts.exhausted, Some(ResourceKind::States));
        assert_eq!(lts.states.len(), 2);
        assert!(!lts.frontier.is_empty(), "the cut-off is marked");
        assert!(!lts.coverage.is_empty());
        assert!(!lts.complete());
    }

    #[test]
    fn fuel_budget_degrades_gracefully() {
        let lts = Explorer::new(ExploreOptions {
            budget: Budget::unlimited().fuel(1),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("partial result");
        assert_eq!(lts.exhausted, Some(ResourceKind::Fuel));
        assert_eq!(lts.coverage.expanded, 1);
        assert!(!lts.complete());
    }

    #[test]
    fn transition_budget_degrades_gracefully() {
        let lts = Explorer::new(ExploreOptions {
            budget: Budget::unlimited().transitions(1),
            ..ExploreOptions::default()
        })
        .explore(&parse("observe<a> | observe<b>").unwrap())
        .expect("partial result");
        assert_eq!(lts.exhausted, Some(ResourceKind::Transitions));
        assert_eq!(lts.coverage.transitions, 1);
    }

    #[test]
    fn deadline_budget_degrades_gracefully() {
        let lts = Explorer::new(ExploreOptions {
            budget: Budget::unlimited().deadline(1),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("partial result");
        assert_eq!(lts.exhausted, Some(ResourceKind::DeadlineSteps));
        assert!(!lts.complete());
    }

    #[test]
    fn intruder_intercepts_unlocalized_outputs() {
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)(((^m) c<m> | c(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        // Some edge is an intercept.
        let has_intercept = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Intercept { .. }))
        });
        assert!(has_intercept);
    }

    #[test]
    fn intruder_injects_fresh_names() {
        // B accepts anything on c and reveals it.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)((c(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let has_inject = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Inject { .. }))
        });
        assert!(has_inject, "the intruder can invent and inject a name");
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn intruder_respects_partner_authentication() {
        // The input is localized at the honest sender's position ‖0‖0:
        // the intruder (at ‖1) cannot inject.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^c)(((^m) c<m> | c@(1.0)(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let has_inject = lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Inject { .. }))
        });
        assert!(!has_inject, "localized input refuses the intruder");
        // The honest communication still happens.
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn intruder_cannot_touch_unknown_channels() {
        // The protocol talks on a restricted s ∉ C.
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = explore(
            "(^s)((s<m> | s(x).observe<x>) | 0)",
            ExploreOptions {
                intruder: Some(spec),
                ..ExploreOptions::default()
            },
        );
        let touched = lts.states.iter().any(|s| {
            s.edges.iter().any(|(l, _)| {
                matches!(
                    l.desc(),
                    StepDesc::Intercept { .. } | StepDesc::Inject { .. }
                )
            })
        });
        assert!(!touched);
    }

    #[test]
    fn observations_record_origin() {
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        let mut found = false;
        for s in &lts.states {
            for (l, _) in &s.edges {
                if let Some(ev) = l.obs() {
                    if let ObsTerm::Fresh { creator, .. } = &ev.payload {
                        assert_eq!(creator.to_bits(), "e");
                        found = true;
                    }
                }
            }
        }
        assert!(found, "the observation carries the creator position");
    }

    #[test]
    fn deadlocks_report_stuck_states_only() {
        // A receiver that can never be served: stuck, not exhausted.
        let lts = explore("(^c) c(x).observe<x>", ExploreOptions::default());
        assert_eq!(lts.deadlocks(), vec![0]);
        // A system that runs to completion (the protocol channel is
        // restricted so the observer cannot steal the message): the
        // terminal state is exhausted — no deadlock.
        let lts = explore("(^c, m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        assert!(lts.deadlocks().is_empty(), "completion is not a deadlock");
        // With the channel free, the observer may eat the message and
        // starve the receiver: that IS a deadlock.
        let lts = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        assert!(!lts.deadlocks().is_empty(), "a starved receiver is stuck");
    }

    #[test]
    fn replication_explores_up_to_the_unfold_bound() {
        let lts1 = explore(
            "!(^m) c<m> | c(x).observe<x>",
            ExploreOptions {
                unfold_bound: 1,
                ..ExploreOptions::default()
            },
        );
        let lts2 = explore(
            "!(^m) c<m> | c(x).observe<x>",
            ExploreOptions {
                unfold_bound: 2,
                ..ExploreOptions::default()
            },
        );
        assert!(lts2.stats.states > lts1.stats.states);
    }

    fn fault_opts(spec: FaultSpec) -> ExploreOptions {
        ExploreOptions {
            faults: Some(spec),
            ..ExploreOptions::default()
        }
    }

    fn has_fault_edge(lts: &Lts, kind: FaultKind) -> bool {
        lts.states.iter().any(|s| {
            s.edges
                .iter()
                .any(|(l, _)| matches!(l.desc(), StepDesc::Fault { kind: k, .. } if *k == kind))
        })
    }

    #[test]
    fn drop_fault_loses_the_message() {
        let lts = explore(
            "(^c)((c<m>.done<ok> | c(x).observe<x>) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Drop, "c", 1)),
        );
        assert!(has_fault_edge(&lts, FaultKind::Drop));
        // After the drop the receiver starves: some deadlock exists.
        assert!(!lts.deadlocks().is_empty());
    }

    #[test]
    fn duplicate_fault_delivers_twice_without_consuming() {
        // One send, two receivers: only a duplication can serve both.
        let lts = explore(
            "(^c)(((^m) c<m> | (c(x).a<x> | c(y).b<y>)) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Duplicate, "c", 1)),
        );
        assert!(has_fault_edge(&lts, FaultKind::Duplicate));
        let barbs = lts.weak_barbs();
        assert!(barbs.iter().any(|b| b.chan == "a"));
        assert!(barbs.iter().any(|b| b.chan == "b"));
        // Some single run reaches both barbs: find a state exhibiting one
        // after the other was already served.
        let both_served = lts
            .states
            .iter()
            .any(|s| s.config.is_exhausted() && s.edges.is_empty());
        assert!(both_served || lts.stats.states > 3);
    }

    #[test]
    fn faults_respect_localization() {
        // Output localized at the receiver: the network cannot touch it.
        for kind in FaultKind::ALL {
            let lts = explore(
                "(^c)(((^m) c@(0.1)<m> | c(x).observe<x>) | 0)",
                fault_opts(FaultSpec::single(kind, "c", 1)),
            );
            assert!(
                !has_fault_edge(&lts, kind),
                "{kind} must be refused by the localized output"
            );
            assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
        }
    }

    #[test]
    fn fault_counters_are_bounded() {
        // max = 1: at most one drop along any path, so the two-message
        // system can still deliver the second message.
        let lts = explore(
            "(^c)((c<m1>.c<m2> | c(x).c(y).observe<y>) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Drop, "c", 1)),
        );
        assert!(has_fault_edge(&lts, FaultKind::Drop));
        // With both messages dropped the observer would starve; with max=1
        // the observe barb stays reachable on the no-drop path.
        assert!(lts.weak_barbs().iter().any(|b| b.chan == "observe"));
    }

    #[test]
    fn reorder_fault_buffers_and_redelivers() {
        let lts = explore(
            "(^c)((c<m1>.c<m2> | c(x).c(y).first<x>) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Reorder, "c", 1)),
        );
        assert!(has_fault_edge(&lts, FaultKind::Reorder));
        // Reordering lets m2 arrive first: some observation of m2 exists.
        let sees_m2 = lts.states.iter().any(|s| {
            s.edges.iter().any(|(l, _)| {
                l.obs()
                    .is_some_and(|ev| format!("{ev:?}").contains("m2"))
            })
        });
        assert!(sees_m2, "reordering swaps the delivery order");
    }

    #[test]
    fn replay_fault_redelivers_from_log() {
        // One send, two sequential receives on the same channel: only a
        // replay can serve the second.
        let lts = explore(
            "(^c)(((^m) c<m> | c(x).c(y).observe<y>) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Replay, "c", 1)),
        );
        assert!(has_fault_edge(&lts, FaultKind::Replay));
        assert!(
            lts.weak_barbs().iter().any(|b| b.chan == "observe"),
            "the tap+replay serves both receives"
        );
    }

    #[test]
    fn worker_panics_surface_as_errors_not_aborts() {
        // The hook panics on every state past index 0, in every engine.
        for workers in [1, 4] {
            let err = Explorer::new(ExploreOptions {
                panic_after_states: Some(1),
                workers,
                ..ExploreOptions::default()
            })
            .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
            .expect_err("the poisoned successor computation fails the run");
            match err {
                VerifyError::WorkerPanic { payload } => {
                    assert!(payload.contains("test hook"), "{payload}");
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn panic_free_prefix_is_unaffected_by_the_hook() {
        // A hook past the whole state space never fires.
        let lts = Explorer::new(ExploreOptions {
            panic_after_states: Some(usize::MAX),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("explores");
        assert!(lts.complete());
    }

    #[test]
    fn expired_deadline_cuts_off_as_wall_clock() {
        let lts = Explorer::new(ExploreOptions {
            deadline: Some(Instant::now()),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("partial result, not an error");
        assert_eq!(lts.exhausted, Some(ResourceKind::WallClock));
        assert!(!lts.complete());
        assert_eq!(lts.states.len(), 1, "only the initial state is kept");
    }

    #[test]
    fn cancel_flag_stops_the_exploration_cooperatively() {
        let flag = Arc::new(AtomicBool::new(true));
        let lts = Explorer::new(ExploreOptions {
            cancel: Some(flag),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^m)(c<m> | c(x).observe<x>)").unwrap())
        .expect("partial result");
        assert_eq!(lts.exhausted, Some(ResourceKind::WallClock));
        assert!(!lts.complete());
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let free = explore("(^m)(c<m> | c(x).observe<x>)", ExploreOptions::default());
        let timed = explore(
            "(^m)(c<m> | c(x).observe<x>)",
            ExploreOptions {
                deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
                ..ExploreOptions::default()
            },
        );
        assert_eq!(free.stats, timed.stats);
        assert!(timed.complete());
    }

    #[test]
    fn network_state_distinguishes_explored_states() {
        // Same configuration, different fault counters ⇒ different states.
        let lts = explore(
            "(^c)((c<m>.done<ok> | c(x)) | 0)",
            fault_opts(FaultSpec::single(FaultKind::Drop, "c", 1)),
        );
        assert!(lts.states.len() >= 3, "{}", lts.states.len());
    }

    const SESSIONS: &str = "!((^m)(c<m> | c(x).observe<x>))";

    fn session_opts(reduce: ReduceOptions) -> ExploreOptions {
        ExploreOptions {
            unfold_bound: 3,
            reduce,
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn symmetry_quotient_collapses_session_permutations() {
        let plain = explore(SESSIONS, session_opts(ReduceOptions::none()));
        let reduced = explore(
            SESSIONS,
            session_opts(ReduceOptions {
                symmetry: true,
                por: false,
            }),
        );
        assert!(
            reduced.stats.states * 2 <= plain.stats.states,
            "expected >=2x: {} vs {}",
            reduced.stats.states,
            plain.stats.states
        );
        assert!(reduced.stats.states_quotiented > 0);
        assert_eq!(plain.stats.por_pruned, 0);
        assert!(reduced.complete());
    }

    #[test]
    fn reduced_exploration_preserves_weak_traces() {
        use crate::traces::weak_traces;
        // The unreduced arm tracks isos too, so both sides extract the
        // *exact* raw trace set and compare without merge artifacts.
        let tracked = explore(
            SESSIONS,
            ExploreOptions {
                track_isos: true,
                ..session_opts(ReduceOptions::none())
            },
        );
        for reduce in [
            ReduceOptions {
                symmetry: true,
                por: false,
            },
            ReduceOptions {
                symmetry: false,
                por: true,
            },
            ReduceOptions::full(),
        ] {
            let reduced = explore(SESSIONS, session_opts(reduce));
            assert_eq!(
                weak_traces(&reduced, 4),
                weak_traces(&tracked, 4),
                "mode {}",
                reduce.mode()
            );
            assert_eq!(
                reduced.weak_barbs(),
                tracked.weak_barbs(),
                "mode {}",
                reduce.mode()
            );
        }
    }

    #[test]
    fn por_prunes_private_communications() {
        let src = "(^k)(k<m>.0 | k(x).0) | observe<a>";
        let plain = explore(src, ExploreOptions::default());
        let por = explore(
            src,
            ExploreOptions {
                reduce: ReduceOptions {
                    symmetry: false,
                    por: true,
                },
                ..ExploreOptions::default()
            },
        );
        assert!(por.stats.por_pruned > 0);
        assert!(por.stats.states < plain.stats.states);
        use crate::traces::weak_traces;
        let tracked = explore(
            src,
            ExploreOptions {
                track_isos: true,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(weak_traces(&por, 3), weak_traces(&tracked, 3));
    }

    #[test]
    fn reduction_is_deterministic_across_worker_counts() {
        let base = explore(
            SESSIONS,
            ExploreOptions {
                workers: 1,
                ..session_opts(ReduceOptions::full())
            },
        )
        .fingerprint();
        for workers in [2, 8] {
            let fp = explore(
                SESSIONS,
                ExploreOptions {
                    workers,
                    ..session_opts(ReduceOptions::full())
                },
            )
            .fingerprint();
            assert_eq!(fp, base, "workers={workers}");
        }
    }

    #[test]
    fn verify_symmetry_accepts_the_signature_guided_quotient() {
        // `verify_symmetry` panics if the candidate set ever misses the
        // true orbit minimum; surviving the exploration is the assertion.
        let lts = explore(
            SESSIONS,
            ExploreOptions {
                verify_symmetry: true,
                verify_keys: true,
                ..session_opts(ReduceOptions {
                    symmetry: true,
                    por: false,
                })
            },
        );
        assert!(lts.complete());
    }

    #[test]
    fn verify_symmetry_audits_successors_before_por_pruning() {
        // Regression: POR-pruned successors are never interned, so the
        // intern-time orbit check in `StateStore::canonical` never saw
        // them — `verify_symmetry` used to validate only the ample
        // survivor.  The pre-POR pass must audit the *full* successor
        // set (panicking on any orbit-invariance violation), and the
        // counter proves it ran while pruning was actually happening.
        let lts = explore(
            SESSIONS,
            ExploreOptions {
                verify_symmetry: true,
                ..session_opts(ReduceOptions::full())
            },
        );
        assert!(lts.complete());
        assert!(lts.stats.por_pruned > 0, "POR must actually prune here");
        assert!(
            lts.stats.sym_prechecked > 0,
            "the orbit check must run pre-POR, covering pruned successors"
        );
        // Without POR nothing is pruned, so nothing needs prechecking.
        let unpruned = explore(
            SESSIONS,
            ExploreOptions {
                verify_symmetry: true,
                ..session_opts(ReduceOptions {
                    symmetry: true,
                    por: false,
                })
            },
        );
        assert_eq!(unpruned.stats.sym_prechecked, 0);
    }

    #[test]
    fn track_isos_alone_keeps_the_state_space() {
        use crate::traces::weak_traces;
        let src = "(^m)(c<m> | c(x).observe<x>)";
        let plain = explore(src, ExploreOptions::default());
        let tracked = explore(
            src,
            ExploreOptions {
                track_isos: true,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(plain.stats.states, tracked.stats.states);
        assert_eq!(plain.stats.edges, tracked.stats.edges);
        assert_eq!(weak_traces(&plain, 3), weak_traces(&tracked, 3));
    }

    #[test]
    fn conflating_pseudo_quotient_is_a_real_planted_bug() {
        // The erasing pseudo-quotient must overmerge (fewer states than
        // the sound quotient on some input) — otherwise the conformance
        // oracle would have nothing to catch.
        let src = "!((^m)(^n)(c<m>.c<n> | c(x).c(y).d<x>.d<y>)) | d(z)";
        let sound = explore(
            src,
            ExploreOptions {
                unfold_bound: 3,
                reduce: ReduceOptions {
                    symmetry: true,
                    por: false,
                },
                ..ExploreOptions::default()
            },
        );
        let buggy = explore(
            src,
            ExploreOptions {
                unfold_bound: 3,
                reduce: ReduceOptions {
                    symmetry: true,
                    por: false,
                },
                sym_conflate: true,
                ..ExploreOptions::default()
            },
        );
        assert!(
            buggy.stats.states < sound.stats.states,
            "conflation merges inequivalent states: {} vs {}",
            buggy.stats.states,
            sound.stats.states
        );
    }
}
