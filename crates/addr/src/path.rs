//! Downward paths in the tree of sequential processes.

use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::{AddrError, Branch};

/// A downward path in the binary tree of sequential processes: a finite
/// string over the arc tags `{‖0, ‖1}`.
///
/// Paths are used both as *absolute positions* (the path from the root of
/// the tree down to a sequential process) and as the two components of a
/// [`RelAddr`](crate::RelAddr).
///
/// # Example
///
/// ```
/// use spi_addr::{Branch, Path};
///
/// let p: Path = "110".parse()?;            // ‖1‖1‖0, P3 in Figure 1
/// assert_eq!(p.len(), 3);
/// assert_eq!(p[0], Branch::Right);
/// assert_eq!(p.to_string(), "‖1‖1‖0");
/// assert!(Path::from_str("11")?.is_prefix_of(&p));
/// # use std::str::FromStr;
/// # Ok::<(), spi_addr::AddrError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Path {
    tags: Vec<Branch>,
}

impl Path {
    /// The empty path `ε`, denoting the root of the tree.
    #[must_use]
    pub fn root() -> Path {
        Path::default()
    }

    /// Builds a path from its arc tags, outermost first.
    #[must_use]
    pub fn new(tags: Vec<Branch>) -> Path {
        Path { tags }
    }

    /// Returns `true` when the path is `ε`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The number of arcs in the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// The first (outermost) tag, if any.
    #[must_use]
    pub fn first(&self) -> Option<Branch> {
        self.tags.first().copied()
    }

    /// The last (innermost) tag, if any.
    #[must_use]
    pub fn last(&self) -> Option<Branch> {
        self.tags.last().copied()
    }

    /// Iterates over the tags, outermost first.
    pub fn iter(&self) -> impl Iterator<Item = Branch> + '_ {
        self.tags.iter().copied()
    }

    /// Extends the path downward by one arc, in place.
    pub fn push(&mut self, b: Branch) {
        self.tags.push(b);
    }

    /// Removes and returns the innermost arc, if any.
    pub fn pop(&mut self) -> Option<Branch> {
        self.tags.pop()
    }

    /// Returns the path extended downward by one arc.
    #[must_use]
    pub fn child(&self, b: Branch) -> Path {
        let mut tags = self.tags.clone();
        tags.push(b);
        Path { tags }
    }

    /// Returns the path of the parent node, or `None` at the root.
    #[must_use]
    pub fn parent(&self) -> Option<Path> {
        if self.tags.is_empty() {
            None
        } else {
            Some(Path {
                tags: self.tags[..self.tags.len() - 1].to_vec(),
            })
        }
    }

    /// Concatenates two paths: `self` followed by `rest`.
    #[must_use]
    pub fn join(&self, rest: &Path) -> Path {
        let mut tags = self.tags.clone();
        tags.extend_from_slice(&rest.tags);
        Path { tags }
    }

    /// Returns `true` when `self` is a (possibly equal) prefix of `other`:
    /// the node at `self` is an ancestor of, or equal to, the node at
    /// `other`.
    #[must_use]
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.tags.len() >= self.tags.len() && other.tags[..self.tags.len()] == self.tags[..]
    }

    /// Returns `true` when `self` is a (possibly equal) suffix of `other`.
    #[must_use]
    pub fn is_suffix_of(&self, other: &Path) -> bool {
        other.tags.len() >= self.tags.len()
            && other.tags[other.tags.len() - self.tags.len()..] == self.tags[..]
    }

    /// The number of leading arcs shared by `self` and `other`, i.e. the
    /// depth of their minimal common ancestor.
    #[must_use]
    pub fn common_prefix_len(&self, other: &Path) -> usize {
        self.tags
            .iter()
            .zip(other.tags.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The path of the minimal common ancestor of `self` and `other`.
    #[must_use]
    pub fn common_ancestor(&self, other: &Path) -> Path {
        Path {
            tags: self.tags[..self.common_prefix_len(other)].to_vec(),
        }
    }

    /// The suffix of the path after dropping its first `n` arcs.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn suffix_from(&self, n: usize) -> Path {
        Path {
            tags: self.tags[n..].to_vec(),
        }
    }

    /// The prefix consisting of the first `n` arcs.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Path {
        Path {
            tags: self.tags[..n].to_vec(),
        }
    }

    /// Strips `prefix` from the front of the path, returning the rest, or
    /// `None` when `prefix` is not a prefix of `self`.
    #[must_use]
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if prefix.is_prefix_of(self) {
            Some(self.suffix_from(prefix.len()))
        } else {
            None
        }
    }

    /// Strips `suffix` from the back of the path, returning the front, or
    /// `None` when `suffix` is not a suffix of `self`.
    #[must_use]
    pub fn strip_suffix(&self, suffix: &Path) -> Option<Path> {
        if suffix.is_suffix_of(self) {
            Some(self.prefix(self.len() - suffix.len()))
        } else {
            None
        }
    }

    /// Renders the path as a compact bit string (`"110"` for `‖1‖1‖0`),
    /// the format accepted by [`FromStr`].  The empty path renders as
    /// `"e"` (for `ε`).
    #[must_use]
    pub fn to_bits(&self) -> String {
        let mut out = String::with_capacity(self.tags.len().max(1));
        let _ = self.write_bits(&mut out);
        out
    }

    /// Streams [`Path::to_bits`] into any [`fmt::Write`] sink without
    /// allocating — paths appear in every canonical state key, so the
    /// hot serialization paths use this directly.
    ///
    /// # Errors
    ///
    /// Propagates the sink's write error.
    pub fn write_bits<S: fmt::Write>(&self, out: &mut S) -> fmt::Result {
        if self.tags.is_empty() {
            return out.write_char('e');
        }
        for b in &self.tags {
            out.write_char(if b.bit() == 0 { '0' } else { '1' })?;
        }
        Ok(())
    }
}

impl Index<usize> for Path {
    type Output = Branch;

    fn index(&self, i: usize) -> &Branch {
        &self.tags[i]
    }
}

impl FromIterator<Branch> for Path {
    fn from_iter<I: IntoIterator<Item = Branch>>(iter: I) -> Path {
        Path {
            tags: iter.into_iter().collect(),
        }
    }
}

impl Extend<Branch> for Path {
    fn extend<I: IntoIterator<Item = Branch>>(&mut self, iter: I) {
        self.tags.extend(iter);
    }
}

impl From<Vec<Branch>> for Path {
    fn from(tags: Vec<Branch>) -> Path {
        Path { tags }
    }
}

impl fmt::Display for Path {
    /// Renders in the paper's notation: `‖1‖1‖0`; the empty path renders
    /// as `ε`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tags.is_empty() {
            return write!(f, "\u{3b5}");
        }
        for t in &self.tags {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = AddrError;

    /// Parses a compact bit string: `"0"` and `"1"` are arcs, `""` or
    /// `"e"` denote the empty path.
    fn from_str(s: &str) -> Result<Path, AddrError> {
        if s == "e" || s == "\u{3b5}" {
            return Ok(Path::root());
        }
        let mut tags = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '0' => tags.push(Branch::Left),
                '1' => tags.push(Branch::Right),
                _ => return Err(AddrError::BadPathChar { ch }),
            }
        }
        Ok(Path { tags })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path literal")
    }

    #[test]
    fn parse_and_display_round_trip() {
        let path = p("0110");
        assert_eq!(path.to_string(), "‖0‖1‖1‖0");
        assert_eq!(path.to_bits(), "0110");
        assert_eq!(p(&path.to_bits()), path);
    }

    #[test]
    fn empty_path_displays_epsilon() {
        assert_eq!(Path::root().to_string(), "\u{3b5}");
        assert_eq!(p("e"), Path::root());
        assert_eq!(p(""), Path::root());
        assert_eq!(Path::root().to_bits(), "e");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            "01x".parse::<Path>(),
            Err(AddrError::BadPathChar { ch: 'x' })
        );
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let path = p("01");
        assert_eq!(path.child(Branch::Right).parent(), Some(path));
        assert_eq!(Path::root().parent(), None);
    }

    #[test]
    fn prefix_suffix_relations() {
        let long = p("0110");
        assert!(p("01").is_prefix_of(&long));
        assert!(!p("11").is_prefix_of(&long));
        assert!(p("10").is_suffix_of(&long));
        assert!(!p("00").is_suffix_of(&long));
        assert!(Path::root().is_prefix_of(&long));
        assert!(Path::root().is_suffix_of(&long));
        assert!(long.is_prefix_of(&long));
        assert!(long.is_suffix_of(&long));
    }

    #[test]
    fn strip_prefix_and_suffix() {
        let long = p("0110");
        assert_eq!(long.strip_prefix(&p("01")), Some(p("10")));
        assert_eq!(long.strip_prefix(&p("11")), None);
        assert_eq!(long.strip_suffix(&p("10")), Some(p("01")));
        assert_eq!(long.strip_suffix(&p("11")), None);
    }

    #[test]
    fn common_ancestor_matches_figure_1() {
        // P1 at ‖0‖1, P3 at ‖1‖1‖0: common ancestor is the root.
        assert_eq!(p("01").common_ancestor(&p("110")), Path::root());
        // P2 at ‖1‖0, P3 at ‖1‖1‖0: common ancestor is the node at ‖1.
        assert_eq!(p("10").common_ancestor(&p("110")), p("1"));
        // P3 and P4 share the node at ‖1‖1.
        assert_eq!(p("110").common_ancestor(&p("111")), p("11"));
    }

    #[test]
    fn join_concatenates() {
        assert_eq!(p("01").join(&p("10")), p("0110"));
        assert_eq!(Path::root().join(&p("1")), p("1"));
        assert_eq!(p("1").join(&Path::root()), p("1"));
    }

    #[test]
    fn indexing_and_iteration() {
        let path = p("10");
        assert_eq!(path[0], Branch::Right);
        assert_eq!(path[1], Branch::Left);
        let collected: Path = path.iter().collect();
        assert_eq!(collected, path);
    }

    #[test]
    fn extend_appends() {
        let mut path = p("0");
        path.extend([Branch::Right, Branch::Left]);
        assert_eq!(path, p("010"));
    }
}
