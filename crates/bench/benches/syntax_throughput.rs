//! S3 — front-end throughput: lexing+parsing and pretty-printing of
//! generated processes, plus substitution on deep terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spi_bench::{output_chain, output_chain_source};
use spi_syntax::{parse, Term, Var};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for n in [32usize, 256, 1024] {
        let src = output_chain_source(n);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| parse(src).expect("parses"));
        });
    }
    group.finish();
}

fn bench_print(c: &mut Criterion) {
    let mut group = c.benchmark_group("print");
    for n in [32usize, 256, 1024] {
        let p = output_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| p.to_string().len());
        });
    }
    group.finish();
}

fn bench_subst(c: &mut Criterion) {
    let mut group = c.benchmark_group("subst");
    for n in [32usize, 256, 1024] {
        // A chain where x occurs in every payload.
        let mut p = spi_syntax::Process::input(Term::name("c"), "x", spi_syntax::Process::Nil);
        if let spi_syntax::Process::Input(_, _, cont) = &mut p {
            let mut body = spi_syntax::Process::Nil;
            for i in (0..n).rev() {
                body = spi_syntax::Process::output(
                    Term::name(format!("d{}", i % 7)),
                    Term::pair(Term::var("x"), Term::name("m")),
                    body,
                );
            }
            **cont = body;
        }
        // Substituting into the open body (not through the binder).
        let open = match &p {
            spi_syntax::Process::Input(_, _, cont) => (**cont).clone(),
            _ => unreachable!(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &open, |b, open| {
            let x = Var::new("x");
            let v = Term::name("value");
            b.iter(|| open.subst_var(&x, &v).size());
        });
    }
    group.finish();
}

fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplify");
    for n in [32usize, 256, 1024] {
        // A chain interleaved with trivially-true matchings.
        let mut src = String::new();
        for i in 0..n {
            src.push_str(&format!("[m = m] c{}<a>.", i % 7));
        }
        src.push('0');
        let p = parse(&src).expect("parses");
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| p.simplify().size());
        });
    }
    group.finish();
}

criterion_group!(
    syntax,
    bench_parse,
    bench_print,
    bench_subst,
    bench_simplify
);
criterion_main!(syntax);
