//! Malformed-wire-input hardening: hostile request lines must each
//! produce a structured error response on the same connection — never
//! a panic, a dropped socket, or a wedged worker slot.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use spi_server::client::Client;
use spi_server::service::{serve, VerifierEngine, MAX_LINE_BYTES};
use spi_server::ServerOptions;
use spi_verify::jsonlite::Json;

fn start() -> spi_server::ServerHandle {
    serve(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            ..ServerOptions::default()
        },
    )
    .expect("server starts")
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).expect("status")
}

/// Sends raw bytes and reads one response line over a plain socket
/// (the [`Client`] insists on UTF-8 strings, which is exactly what
/// these tests must not).
fn raw_roundtrip(stream: &mut TcpStream, payload: &[u8]) -> String {
    stream.write_all(payload).expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    line.trim_end().to_string()
}

#[test]
fn oversized_lines_get_a_structured_error_not_a_wedged_slot() {
    let handle = start();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A 10 MB request line: an order of magnitude past the cap.
    let huge = format!(r#"{{"op":"verify","concrete":"{}"}}"#, "x".repeat(10 * 1024 * 1024));
    assert!(huge.len() > MAX_LINE_BYTES);
    let resp = parsed(&client.roundtrip(&huge).unwrap());
    assert_eq!(status(&resp), "error");
    let reason = resp.get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("exceeds"), "{reason}");

    // The same connection still serves real work afterwards.
    let pong = parsed(&client.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(status(&pong), "ok");
    let verify = parsed(
        &client
            .roundtrip(r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#)
            .unwrap(),
    );
    assert_eq!(status(&verify), "ok");

    handle.join();
}

#[test]
fn invalid_utf8_is_answered_not_fatal() {
    let handle = start();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).ok();

    let mut payload = b"{\"op\":\"ping\", \"junk\":\"".to_vec();
    payload.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    payload.extend_from_slice(b"\"}\n");
    let resp = parsed(&raw_roundtrip(&mut stream, &payload));
    assert_eq!(status(&resp), "error");
    let reason = resp.get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("UTF-8"), "{reason}");

    // The connection survives the binary garbage.
    let pong = parsed(&raw_roundtrip(&mut stream, b"{\"op\":\"ping\"}\n"));
    assert_eq!(status(&pong), "ok");

    handle.join();
}

#[test]
fn truncated_json_and_unknown_ops_error_cleanly() {
    let handle = start();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    for bad in [
        r#"{"op":"verify","concrete":"0","abstr"#, // truncated mid-key
        r#"{"op":"verify","#,                      // truncated mid-object
        r#"{"op":"frobnicate"}"#,                  // unknown op
        r#"{"op":42}"#,                            // non-string op
        "]",                                       // not an object at all
    ] {
        let resp = parsed(&client.roundtrip(bad).unwrap());
        assert_eq!(status(&resp), "error", "for {bad:?}: {resp:?}");
        assert!(resp.get("reason").is_some(), "for {bad:?}");
    }

    // After the whole gauntlet, the server still does real work.
    let verify = parsed(
        &client
            .roundtrip(r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#)
            .unwrap(),
    );
    assert_eq!(status(&verify), "ok");

    handle.join();
}

#[test]
fn stats_expose_the_new_metrics_surface() {
    let handle = start();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let line = r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#;
    let _ = client.roundtrip(line).unwrap(); // miss
    let _ = client.roundtrip(line).unwrap(); // hit

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = stats.get("body").expect("body");
    for key in [
        "hits",
        "misses",
        "hit_rate_pct",
        "evictions",
        "collapsed",
        "queue_depth",
        "latency",
    ] {
        assert!(body.get(key).is_some(), "stats lacks {key:?}: {body:?}");
    }
    let pct = body.get("hit_rate_pct").and_then(Json::as_int).unwrap();
    assert!((1..=100).contains(&pct), "one hit, one miss: {pct}");
    let latency = body.get("latency").expect("latency");
    let verify = latency.get("verify").expect("per-op histogram");
    assert!(verify.get("count").and_then(Json::as_int).unwrap() >= 2);
    for q in ["p50_us", "p99_us"] {
        assert!(verify.get(q).and_then(Json::as_int).unwrap() > 0, "{q}");
    }

    handle.join();
}
