//! Run-time processes: the residuals the machine stores at tree leaves.

use spi_addr::{Path, RelAddr};
use spi_syntax::{AddrSide, ChanIndex, LocVar, Name, Process, Var};

use crate::{NameId, NameTable, RtTerm};

/// The localization index of a run-time channel.
///
/// Source indexes written as relative addresses stay relative
/// ([`RtChanIndex::At`]) until the owning prefix reaches a leaf, where the
/// machine resolves them against the leaf position into an absolute
/// partner position ([`RtChanIndex::AtAbs`]).  Location variables are
/// instantiated directly to the partner's absolute position at first
/// contact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RtChanIndex {
    /// No localization.
    Plain,
    /// A source-level relative address, not yet resolved.
    At(RelAddr),
    /// Localized at an absolute tree position.
    AtAbs(Path),
    /// An uninstantiated location variable.
    Loc(LocVar),
}

/// A run-time channel: subject term plus localization index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RtChannel {
    /// The term naming the channel.
    pub subject: RtTerm,
    /// The localization index.
    pub index: RtChanIndex,
}

/// A run-time process, mirroring [`Process`] with run-time terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RtProcess {
    /// The inert process.
    Nil,
    /// Output prefix.
    Output(RtChannel, RtTerm, Box<RtProcess>),
    /// Input prefix.
    Input(RtChannel, Var, Box<RtProcess>),
    /// Unexecuted restriction.
    Restrict(Name, Box<RtProcess>),
    /// Parallel composition (split into two leaves when placed).
    Par(Box<RtProcess>, Box<RtProcess>),
    /// Matching.
    Match(RtTerm, RtTerm, Box<RtProcess>),
    /// Address matching against another term's origin.
    AddrMatchT(RtTerm, RtTerm, Box<RtProcess>),
    /// Address matching against a literal relative address.
    AddrMatchL(RtTerm, RelAddr, Box<RtProcess>),
    /// Replication.
    Bang(Box<RtProcess>),
    /// Pair splitting (full-calculus projection).
    Split {
        /// Term to project.
        pair: RtTerm,
        /// First-component binder.
        fst: Var,
        /// Second-component binder.
        snd: Var,
        /// Continuation.
        body: Box<RtProcess>,
    },
    /// Shared-key decryption.
    Case {
        /// Term to decrypt.
        scrutinee: RtTerm,
        /// Variables bound to the decrypted components.
        binders: Vec<Var>,
        /// Decryption key.
        key: RtTerm,
        /// Continuation.
        body: Box<RtProcess>,
    },
}

impl RtChannel {
    fn from_static(ch: &spi_syntax::Channel) -> RtChannel {
        RtChannel {
            subject: RtTerm::from_static(&ch.subject),
            index: match &ch.index {
                ChanIndex::Plain => RtChanIndex::Plain,
                ChanIndex::At(a) => RtChanIndex::At(a.clone()),
                ChanIndex::Loc(l) => RtChanIndex::Loc(l.clone()),
            },
        }
    }

    fn map_terms(&self, f: &mut impl FnMut(&RtTerm) -> RtTerm) -> RtChannel {
        RtChannel {
            subject: f(&self.subject),
            index: self.index.clone(),
        }
    }

    /// Renders the channel using the table's display names.
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        let idx = match &self.index {
            RtChanIndex::Plain => String::new(),
            RtChanIndex::At(a) => format!("@({a})"),
            RtChanIndex::AtAbs(p) => format!("@[{}]", p.to_bits()),
            RtChanIndex::Loc(l) => format!("@{l}"),
        };
        format!("{}{idx}", self.subject.display(names))
    }
}

impl RtProcess {
    /// Converts a source process.  Names become symbolic
    /// ([`RtTerm::Sym`]); the configuration loader interns the free ones.
    #[must_use]
    pub fn from_static(p: &Process) -> RtProcess {
        match p {
            Process::Nil => RtProcess::Nil,
            Process::Output(ch, t, cont) => RtProcess::Output(
                RtChannel::from_static(ch),
                RtTerm::from_static(t),
                Box::new(RtProcess::from_static(cont)),
            ),
            Process::Input(ch, x, cont) => RtProcess::Input(
                RtChannel::from_static(ch),
                x.clone(),
                Box::new(RtProcess::from_static(cont)),
            ),
            Process::Restrict(n, body) => {
                RtProcess::Restrict(n.clone(), Box::new(RtProcess::from_static(body)))
            }
            Process::Par(l, r) => RtProcess::Par(
                Box::new(RtProcess::from_static(l)),
                Box::new(RtProcess::from_static(r)),
            ),
            Process::Match(a, b, cont) => RtProcess::Match(
                RtTerm::from_static(a),
                RtTerm::from_static(b),
                Box::new(RtProcess::from_static(cont)),
            ),
            Process::AddrMatch(a, side, cont) => match side {
                AddrSide::Term(b) => RtProcess::AddrMatchT(
                    RtTerm::from_static(a),
                    RtTerm::from_static(b),
                    Box::new(RtProcess::from_static(cont)),
                ),
                AddrSide::Lit(l) => RtProcess::AddrMatchL(
                    RtTerm::from_static(a),
                    l.clone(),
                    Box::new(RtProcess::from_static(cont)),
                ),
            },
            Process::Bang(body) => RtProcess::Bang(Box::new(RtProcess::from_static(body))),
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => RtProcess::Split {
                pair: RtTerm::from_static(pair),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(RtProcess::from_static(body)),
            },
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => RtProcess::Case {
                scrutinee: RtTerm::from_static(scrutinee),
                binders: binders.clone(),
                key: RtTerm::from_static(key),
                body: Box::new(RtProcess::from_static(body)),
            },
        }
    }

    /// Applies `f` to every term of the process, stopping descent when
    /// `stop` says a construct shadows what `f` substitutes.
    fn map<S, F>(&self, stop: &S, f: &mut F) -> RtProcess
    where
        S: Fn(&RtProcess) -> bool,
        F: FnMut(&RtTerm) -> RtTerm,
    {
        if stop(self) {
            return self.clone();
        }
        match self {
            RtProcess::Nil => RtProcess::Nil,
            RtProcess::Output(ch, t, cont) => {
                RtProcess::Output(ch.map_terms(f), f(t), Box::new(cont.map(stop, f)))
            }
            RtProcess::Input(ch, x, cont) => {
                RtProcess::Input(ch.map_terms(f), x.clone(), Box::new(cont.map(stop, f)))
            }
            RtProcess::Restrict(n, body) => {
                RtProcess::Restrict(n.clone(), Box::new(body.map(stop, f)))
            }
            RtProcess::Par(l, r) => {
                RtProcess::Par(Box::new(l.map(stop, f)), Box::new(r.map(stop, f)))
            }
            RtProcess::Match(a, b, cont) => {
                RtProcess::Match(f(a), f(b), Box::new(cont.map(stop, f)))
            }
            RtProcess::AddrMatchT(a, b, cont) => {
                RtProcess::AddrMatchT(f(a), f(b), Box::new(cont.map(stop, f)))
            }
            RtProcess::AddrMatchL(a, l, cont) => {
                RtProcess::AddrMatchL(f(a), l.clone(), Box::new(cont.map(stop, f)))
            }
            RtProcess::Bang(body) => RtProcess::Bang(Box::new(body.map(stop, f))),
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => RtProcess::Split {
                pair: f(pair),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(body.map(stop, f)),
            },
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => RtProcess::Case {
                scrutinee: f(scrutinee),
                binders: binders.clone(),
                key: f(key),
                body: Box::new(body.map(stop, f)),
            },
        }
    }

    /// Substitutes a (closed) message for a variable.  Messages contain no
    /// variables and no symbolic names, so no capture can occur; descent
    /// stops below binders that shadow `var` (their channel subject and
    /// scrutinee are still substituted, as they lie outside the binder's
    /// scope).
    #[must_use]
    pub fn subst_var(&self, var: &Var, value: &RtTerm) -> RtProcess {
        debug_assert!(value.is_message(), "only messages are substituted");
        match self {
            RtProcess::Nil => RtProcess::Nil,
            RtProcess::Output(ch, t, cont) => RtProcess::Output(
                ch.map_terms(&mut |x| x.subst_var(var, value)),
                t.subst_var(var, value),
                Box::new(cont.subst_var(var, value)),
            ),
            RtProcess::Input(ch, x, cont) => {
                let ch = ch.map_terms(&mut |t| t.subst_var(var, value));
                if x == var {
                    RtProcess::Input(ch, x.clone(), cont.clone())
                } else {
                    RtProcess::Input(ch, x.clone(), Box::new(cont.subst_var(var, value)))
                }
            }
            RtProcess::Restrict(n, body) => {
                RtProcess::Restrict(n.clone(), Box::new(body.subst_var(var, value)))
            }
            RtProcess::Par(l, r) => RtProcess::Par(
                Box::new(l.subst_var(var, value)),
                Box::new(r.subst_var(var, value)),
            ),
            RtProcess::Match(a, b, cont) => RtProcess::Match(
                a.subst_var(var, value),
                b.subst_var(var, value),
                Box::new(cont.subst_var(var, value)),
            ),
            RtProcess::AddrMatchT(a, b, cont) => RtProcess::AddrMatchT(
                a.subst_var(var, value),
                b.subst_var(var, value),
                Box::new(cont.subst_var(var, value)),
            ),
            RtProcess::AddrMatchL(a, l, cont) => RtProcess::AddrMatchL(
                a.subst_var(var, value),
                l.clone(),
                Box::new(cont.subst_var(var, value)),
            ),
            RtProcess::Bang(body) => RtProcess::Bang(Box::new(body.subst_var(var, value))),
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => RtProcess::Split {
                pair: pair.subst_var(var, value),
                fst: fst.clone(),
                snd: snd.clone(),
                body: if fst == var || snd == var {
                    body.clone()
                } else {
                    Box::new(body.subst_var(var, value))
                },
            },
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => RtProcess::Case {
                scrutinee: scrutinee.subst_var(var, value),
                binders: binders.clone(),
                key: key.subst_var(var, value),
                body: if binders.contains(var) {
                    body.clone()
                } else {
                    Box::new(body.subst_var(var, value))
                },
            },
        }
    }

    /// Substitutes an allocated name for a symbolic one, stopping below
    /// restrictions that rebind the same spelling.
    #[must_use]
    pub fn subst_sym(&self, sym: &Name, id: NameId) -> RtProcess {
        if let RtProcess::Restrict(n, _) = self {
            if n == sym {
                return self.clone();
            }
        }
        match self {
            RtProcess::Restrict(n, body) => {
                RtProcess::Restrict(n.clone(), Box::new(body.subst_sym(sym, id)))
            }
            _ => self.map(
                &|p| matches!(p, RtProcess::Restrict(n, _) if n == sym),
                &mut |t| t.subst_sym(sym, id),
            ),
        }
    }

    /// Instantiates a location variable with the partner's absolute
    /// position — the effect of a first contact on a channel `c_λ`.
    #[must_use]
    pub fn subst_loc(&self, lam: &LocVar, partner: &Path) -> RtProcess {
        fn fix(ch: &RtChannel, lam: &LocVar, partner: &Path) -> RtChannel {
            RtChannel {
                subject: ch.subject.clone(),
                index: match &ch.index {
                    RtChanIndex::Loc(l) if l == lam => RtChanIndex::AtAbs(partner.clone()),
                    other => other.clone(),
                },
            }
        }
        match self {
            RtProcess::Nil => RtProcess::Nil,
            RtProcess::Output(ch, t, cont) => RtProcess::Output(
                fix(ch, lam, partner),
                t.clone(),
                Box::new(cont.subst_loc(lam, partner)),
            ),
            RtProcess::Input(ch, x, cont) => RtProcess::Input(
                fix(ch, lam, partner),
                x.clone(),
                Box::new(cont.subst_loc(lam, partner)),
            ),
            RtProcess::Restrict(n, body) => {
                RtProcess::Restrict(n.clone(), Box::new(body.subst_loc(lam, partner)))
            }
            RtProcess::Par(l, r) => RtProcess::Par(
                Box::new(l.subst_loc(lam, partner)),
                Box::new(r.subst_loc(lam, partner)),
            ),
            RtProcess::Match(a, b, cont) => {
                RtProcess::Match(a.clone(), b.clone(), Box::new(cont.subst_loc(lam, partner)))
            }
            RtProcess::AddrMatchT(a, b, cont) => {
                RtProcess::AddrMatchT(a.clone(), b.clone(), Box::new(cont.subst_loc(lam, partner)))
            }
            RtProcess::AddrMatchL(a, l, cont) => {
                RtProcess::AddrMatchL(a.clone(), l.clone(), Box::new(cont.subst_loc(lam, partner)))
            }
            RtProcess::Bang(body) => RtProcess::Bang(Box::new(body.subst_loc(lam, partner))),
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => RtProcess::Split {
                pair: pair.clone(),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(body.subst_loc(lam, partner)),
            },
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => RtProcess::Case {
                scrutinee: scrutinee.clone(),
                binders: binders.clone(),
                key: key.clone(),
                body: Box::new(body.subst_loc(lam, partner)),
            },
        }
    }

    /// Renders the residual using the table's display names (for
    /// diagnostics).
    #[must_use]
    pub fn display(&self, names: &NameTable) -> String {
        match self {
            RtProcess::Nil => "0".into(),
            RtProcess::Output(ch, t, cont) => format!(
                "{}<{}>.{}",
                ch.display(names),
                t.display(names),
                cont.display(names)
            ),
            RtProcess::Input(ch, x, cont) => {
                format!("{}({x}).{}", ch.display(names), cont.display(names))
            }
            RtProcess::Restrict(n, body) => format!("(^{n}){}", body.display(names)),
            RtProcess::Par(l, r) => format!("({} | {})", l.display(names), r.display(names)),
            RtProcess::Match(a, b, cont) => format!(
                "[{} = {}]{}",
                a.display(names),
                b.display(names),
                cont.display(names)
            ),
            RtProcess::AddrMatchT(a, b, cont) => format!(
                "[{} ~ {}]{}",
                a.display(names),
                b.display(names),
                cont.display(names)
            ),
            RtProcess::AddrMatchL(a, l, cont) => {
                format!("[{} ~ @({l})]{}", a.display(names), cont.display(names))
            }
            RtProcess::Bang(body) => format!("!{}", body.display(names)),
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => format!(
                "let ({fst}, {snd}) = {} in {}",
                pair.display(names),
                body.display(names)
            ),
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                let bs: Vec<String> = binders.iter().map(ToString::to_string).collect();
                format!(
                    "case {} of {{{}}}{} in {}",
                    scrutinee.display(names),
                    bs.join(", "),
                    key.display(names),
                    body.display(names)
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    fn rt(src: &str) -> RtProcess {
        RtProcess::from_static(&parse(src).expect("parses"))
    }

    #[test]
    fn conversion_mirrors_shape() {
        let p = rt("(^m) c<{m}k> | d(x)");
        assert!(matches!(p, RtProcess::Par(_, _)));
    }

    #[test]
    fn subst_sym_respects_shadowing() {
        let mut names = NameTable::new();
        let id = names.intern_free(&Name::new("m"));
        let p = rt("c<m>.(^m) d<m>");
        let q = p.subst_sym(&Name::new("m"), id);
        match q {
            RtProcess::Output(_, payload, cont) => {
                assert_eq!(payload, RtTerm::Id(id));
                match *cont {
                    RtProcess::Restrict(_, body) => match *body {
                        RtProcess::Output(_, inner, _) => {
                            assert_eq!(inner, RtTerm::Sym(Name::new("m")), "shadowed m untouched");
                        }
                        other => panic!("unexpected {other:?}"),
                    },
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_var_respects_shadowing() {
        let mut names = NameTable::new();
        let id = names.intern_free(&Name::new("v"));
        // c(x).d<x> — substituting for x outside must not touch the bound one.
        let p = rt("c(x).d<x>");
        let q = p.subst_var(&Var::new("x"), &RtTerm::Id(id));
        assert_eq!(q, p, "x is bound at the top level");
    }

    #[test]
    fn subst_var_replaces_in_open_continuation() {
        let mut names = NameTable::new();
        let id = names.intern_free(&Name::new("v"));
        // Build d<x> directly (x free).
        let open = RtProcess::Output(
            RtChannel {
                subject: RtTerm::Sym(Name::new("d")),
                index: RtChanIndex::Plain,
            },
            RtTerm::Var(Var::new("x")),
            Box::new(RtProcess::Nil),
        );
        let q = open.subst_var(&Var::new("x"), &RtTerm::Id(id));
        match q {
            RtProcess::Output(_, payload, _) => assert_eq!(payload, RtTerm::Id(id)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subst_loc_instantiates_to_absolute_position() {
        let p = rt("c@lam(x).c@lam<x>");
        let partner: Path = "00".parse().unwrap();
        let q = p.subst_loc(&LocVar::new("lam"), &partner);
        match q {
            RtProcess::Input(ch, _, cont) => {
                assert_eq!(ch.index, RtChanIndex::AtAbs(partner.clone()));
                match *cont {
                    RtProcess::Output(ch2, _, _) => {
                        assert_eq!(ch2.index, RtChanIndex::AtAbs(partner));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_is_readable() {
        let names = NameTable::new();
        let p = rt("(^m) c<{m}k>");
        let shown = p.display(&names);
        assert!(shown.contains("(^m)"));
        assert!(shown.contains("^c"), "unresolved names marked: {shown}");
    }
}
