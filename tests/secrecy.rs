//! Secrecy checks across the protocol suite — the paper's Section 5.1
//! remark ("locating the output of M in A would give a secrecy guarantee
//! on the message") plus the classic protocols.

use spi_auth_repro::auth::Verifier;
use spi_auth_repro::protocols::compile::CompileOptions;
use spi_auth_repro::protocols::{extra, multi, single};
use spi_auth_repro::syntax::{parse, Name};

fn names(xs: &[&str]) -> Vec<Name> {
    xs.iter().map(Name::new).collect()
}

#[test]
fn p1_leaks_its_payload_but_p2_does_not() {
    let verifier = Verifier::new(["c"]);
    let report = verifier
        .check_secrecy(&single::plaintext("c", "observe"), &names(&["m"]))
        .unwrap();
    assert!(!report.holds(), "plaintext m is interceptable");

    let report = verifier
        .check_secrecy(&single::shared_key("c", "observe"), &names(&["m", "kAB"]))
        .unwrap();
    assert!(report.holds(), "{:?}", report.leaks);
}

#[test]
fn the_abstract_protocol_leaks_m_unless_the_output_is_localized() {
    // In the abstract P, A's output is NOT localized: E can intercept M
    // (the paper's point is authentication, not secrecy).
    let verifier = Verifier::new(["c"]);
    let p = single::abstract_protocol("c", "observe").unwrap();
    let report = verifier.check_secrecy(&p, &names(&["m"])).unwrap();
    assert!(!report.holds(), "the paper's P protects authenticity only");

    // Localizing the output (the paper's A′) adds secrecy.
    let localized = parse("(^s)(s<s>.(^m)c@(0.1)<m> | s@lamB(x_s).c@lamB(z).observe<z>)").unwrap();
    let report = verifier.check_secrecy(&localized, &names(&["m"])).unwrap();
    assert!(report.holds(), "{:?}", report.leaks);
}

#[test]
fn multisession_protocols_keep_their_keys() {
    let verifier = Verifier::new(["c"]).sessions(2);
    for p in [
        multi::shared_key("c", "observe"),
        multi::challenge_response("c", "observe"),
    ] {
        let report = verifier.check_secrecy(&p, &names(&["kAB", "m"])).unwrap();
        assert!(report.holds(), "{:?}", report.leaks);
    }
}

#[test]
fn wide_mouthed_frog_protects_key_and_payload() {
    let verifier = Verifier::new(["c"])
        .roles([("A", "00"), ("B", "01"), ("S", "1")])
        .sessions(1);
    let wmf = extra::wide_mouthed_frog(&CompileOptions::default()).unwrap();
    let report = verifier
        .check_secrecy(&wmf, &names(&["kas", "kbs", "kab", "m"]))
        .unwrap();
    assert!(report.holds(), "{:?}", report.leaks);
}

#[test]
fn needham_schroeder_protects_key_and_payload() {
    let verifier = Verifier::new(["c"])
        .roles([("A", "00"), ("B", "01"), ("S", "1")])
        .sessions(1)
        .max_states(400_000);
    let ns = extra::needham_schroeder(&CompileOptions::default()).unwrap();
    let report = verifier
        .check_secrecy(&ns, &names(&["kas", "kbs", "kab", "m"]))
        .unwrap();
    assert!(report.holds(), "{:?}", report.leaks);
    // The nonce na travels in clear by design — it must leak, proving the
    // check is not vacuous on this system.
    let report = verifier.check_secrecy(&ns, &names(&["na"])).unwrap();
    assert!(!report.holds());
}

#[test]
fn otway_rees_protects_its_secrets() {
    let verifier = Verifier::new(["c"])
        .roles([("A", "00"), ("B", "01"), ("S", "1")])
        .sessions(1)
        .max_states(800_000);
    let or = extra::otway_rees(&CompileOptions::default()).unwrap();
    let report = verifier
        .check_secrecy(&or, &names(&["kas", "kbs", "kab", "m"]))
        .unwrap();
    assert!(report.holds(), "{:?}", report.leaks);
    // The run identifier i travels in clear by design.
    let report = verifier.check_secrecy(&or, &names(&["i"])).unwrap();
    assert!(!report.holds());
}

#[test]
fn otway_rees_completes_honestly() {
    use spi_auth_repro::semantics::Barb;
    use spi_auth_repro::verify::{may_exhibit, ExploreOptions};
    let or = extra::otway_rees(&CompileOptions::default()).unwrap();
    let beta = Barb {
        chan: Name::new("observe"),
        output: true,
    };
    let witness = may_exhibit(&or, &beta, &ExploreOptions::default())
        .unwrap()
        .expect("Otway-Rees completes");
    assert_eq!(
        witness
            .steps
            .iter()
            .filter(|s| s.starts_with("comm"))
            .count(),
        5,
        "five messages"
    );
}

#[test]
fn needham_schroeder_completes_honestly() {
    use spi_auth_repro::semantics::Barb;
    use spi_auth_repro::verify::{may_exhibit, ExploreOptions};
    let ns = extra::needham_schroeder(&CompileOptions::default()).unwrap();
    let beta = Barb {
        chan: Name::new("observe"),
        output: true,
    };
    let witness = may_exhibit(&ns, &beta, &ExploreOptions::default())
        .unwrap()
        .expect("NSSK completes");
    // Four messages: tuple to S, ticket+key to A, ticket to B, payload.
    assert_eq!(
        witness
            .steps
            .iter()
            .filter(|s| s.starts_with("comm"))
            .count(),
        4
    );
}
