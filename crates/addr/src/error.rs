//! Error type for address operations.

use std::error::Error;
use std::fmt;

use crate::Path;

/// Errors raised by the relative-address algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AddrError {
    /// A relative address violated the minimality invariant of
    /// Definition 1: the two components start with the same tag, so the
    /// alleged common ancestor is not minimal.
    NotMinimal {
        /// The observer component `ϑ₀`.
        observer: Path,
        /// The target component `ϑ₁`.
        target: Path,
    },
    /// Two relative addresses could not be composed because they do not
    /// describe the position of a shared intermediate process: the pivot
    /// components are not suffix-compatible.
    IncoherentComposition {
        /// The pivot component of the datum tag (ancestor → forwarder).
        tag_pivot: Path,
        /// The pivot component of the communication address
        /// (ancestor → forwarder).
        comm_pivot: Path,
    },
    /// A relative address could not be resolved against an absolute
    /// position because the observer component is not a suffix of that
    /// position.
    UnresolvableAt {
        /// The absolute position of the process holding the address.
        position: Path,
        /// The observer component that failed to match.
        observer: Path,
    },
    /// A character other than `0` or `1` occurred while parsing a path.
    BadPathChar {
        /// The offending character.
        ch: char,
    },
    /// A relative address string was missing the `•` separator.
    MissingSeparator,
    /// A tree path pointed below a leaf or above the root.
    PathOutOfTree {
        /// The path that fell off the tree.
        path: Path,
    },
}

impl fmt::Display for AddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrError::NotMinimal { observer, target } => write!(
                f,
                "relative address {observer}\u{2022}{target} is not minimal: both components start with the same tag"
            ),
            AddrError::IncoherentComposition {
                tag_pivot,
                comm_pivot,
            } => write!(
                f,
                "addresses cannot be composed: pivot paths {tag_pivot} and {comm_pivot} are not suffix-compatible"
            ),
            AddrError::UnresolvableAt { position, observer } => write!(
                f,
                "address observer component {observer} is not a suffix of position {position}"
            ),
            AddrError::BadPathChar { ch } => {
                write!(f, "invalid path character {ch:?}, expected 0 or 1")
            }
            AddrError::MissingSeparator => {
                write!(f, "relative address is missing the \u{2022} separator")
            }
            AddrError::PathOutOfTree { path } => {
                write!(f, "path {path} does not denote a node of the tree")
            }
        }
    }
}

impl Error for AddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<AddrError> = vec![
            AddrError::NotMinimal {
                observer: Path::default(),
                target: Path::default(),
            },
            AddrError::MissingSeparator,
            AddrError::BadPathChar { ch: 'x' },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(AddrError::MissingSeparator);
    }
}
