//! The second decision procedure: on-the-fly hedged bisimulation.
//!
//! [`crate::trace_preorder`] decides "P securely implements P′" by
//! *enumerating* both weak trace sets and taking a set difference.  This
//! module decides the same relation by a genuinely different road,
//! following the on-the-fly style of Mansutti–Miculan ("Deciding Hedged
//! Bisimilarity") with Tiu's trace-based open bisimulation as the guide
//! for environment-indexed knowledge: a lazy refinement over *pairs of
//! configurations*, driven from the initial state pair, where each
//! configuration member carries its own hedge ([`EnvKnowledge`]) mapping
//! the run's raw fresh names to canonical environment names.
//!
//! A configuration is the set of `(state, iso, hedge)` members reachable
//! under one canonical observation sequence — the subset construction
//! over the weak LTS, with the iso-tracking machinery of
//! [`crate::iso`]/`explore` mapping each merged state's local
//! coordinates back to the true run (exactly as the trace extractor's
//! walker does).  The implementation configuration must be able to match
//! every canonical observation the environment can provoke with one from
//! the specification configuration; a canonical event the specification
//! configuration cannot match is a distinguishing experiment, and the
//! breadth-first schedule makes the first one found a *shortest*
//! distinguishing trace.  Visited configuration pairs are memoized, so
//! subtrees the trace comparison would re-enumerate are pruned — this is
//! the speed play behind the campaign early-reject path.
//!
//! **Agreement.**  Because configurations are exactly the determinized
//! weak LTS under canonical observations, a distinguishing trace exists
//! iff the bounded weak-trace inclusion of [`crate::trace_preorder`]
//! fails, with the same minimal length; and the truncation soundness
//! rules of [`bisim_preorder_sound`] mirror
//! [`crate::trace_preorder_sound`] clause for clause.  The two engines
//! must therefore agree on every input — `--engine both` and the
//! `engines` conformance oracle turn that theorem into a continuously
//! checked invariant.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

use crate::hedges::EnvKnowledge;
use crate::iso::IsoTable;
use crate::{Label, Lts, ResourceKind, TraceSet, TraceVerdict};

/// Which decision procedure(s) a verification run uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Engine {
    /// The bounded weak-trace-inclusion check (the original engine).
    #[default]
    Trace,
    /// The on-the-fly hedged-bisimulation check from this module.
    Bisim,
    /// Run both and fail loudly if they ever disagree; campaigns use
    /// the bisimulation verdict to early-reject attack schedules.
    Both,
}

impl Engine {
    /// The flag spelling, as accepted by [`Engine::parse`].
    #[must_use]
    pub fn mode(self) -> &'static str {
        match self {
            Engine::Trace => "trace",
            Engine::Bisim => "bisim",
            Engine::Both => "both",
        }
    }

    /// Parses a `--engine` argument.
    #[must_use]
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "trace" => Some(Engine::Trace),
            "bisim" => Some(Engine::Bisim),
            "both" => Some(Engine::Both),
            _ => None,
        }
    }

    /// Returns `true` when the trace engine runs.
    #[must_use]
    pub fn runs_trace(self) -> bool {
        matches!(self, Engine::Trace | Engine::Both)
    }

    /// Returns `true` when the bisimulation engine runs.
    #[must_use]
    pub fn runs_bisim(self) -> bool {
        matches!(self, Engine::Bisim | Engine::Both)
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mode())
    }
}

/// Options for the bisimulation checker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BisimOptions {
    /// Planted bug for the `engines` conformance oracle: skip the
    /// ciphertext analysis rule so the hedge under-closes.  Never set
    /// outside fault-injection runs.
    #[doc(hidden)]
    pub skip_analysis: bool,
}

impl BisimOptions {
    fn knowledge(self) -> EnvKnowledge {
        if self.skip_analysis {
            EnvKnowledge::with_skipped_analysis()
        } else {
            EnvKnowledge::new()
        }
    }
}

/// One member of a configuration: a state, the composed iso mapping its
/// local coordinates to the true run, and the environment's hedge for
/// the canonical prefix that reached it.
type Member = (usize, u32, EnvKnowledge);

/// A configuration: the members reachable under one canonical
/// observation sequence (sorted and deduplicated, so equal
/// configurations compare equal).
type Cfg = Vec<Member>;

/// A memoized τ-closure: `(state, composed iso)` pairs, shared between
/// every configuration that reaches the state.
type TauClosure = Arc<Vec<(usize, u32)>>;

/// Iso-aware weak-transition walker — the same memoized τ-closure and
/// edge-iso composition discipline as the trace extractor's walk.
struct Walk<'l> {
    lts: &'l Lts,
    table: IsoTable,
    closure0: Vec<Option<TauClosure>>,
}

impl<'l> Walk<'l> {
    fn new(lts: &'l Lts) -> Walk<'l> {
        Walk {
            lts,
            table: IsoTable::from_isos(lts.isos.clone()),
            closure0: vec![None; lts.states.len()],
        }
    }

    fn edge_iso(&self, state: usize, edge: usize) -> u32 {
        self.lts.edge_isos.get(&(state, edge)).copied().unwrap_or(0)
    }

    /// Memoized identity-rooted τ-closure of `s`.
    fn closure0(&mut self, s: usize) -> Arc<Vec<(usize, u32)>> {
        if let Some(c) = &self.closure0[s] {
            return Arc::clone(c);
        }
        let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
        seen.insert((s, 0));
        let mut work = vec![(s, 0u32)];
        while let Some((v, g)) = work.pop() {
            let lts = self.lts;
            for (e, (label, tgt)) in lts.states[v].edges.iter().enumerate() {
                if matches!(label, Label::Tau(_)) {
                    let h = self.edge_iso(v, e);
                    let k = self.table.compose_ids(h, g);
                    if seen.insert((*tgt, k)) {
                        work.push((*tgt, k));
                    }
                }
            }
        }
        let arc: Arc<Vec<(usize, u32)>> = Arc::new(seen.into_iter().collect());
        self.closure0[s] = Some(Arc::clone(&arc));
        arc
    }

    /// τ-closure of `s` with every member's iso composed with `g`.
    fn closure(&mut self, s: usize, g: u32) -> Vec<(usize, u32)> {
        let base = self.closure0(s);
        base.iter()
            .map(|&(t, k)| (t, self.table.compose_ids(k, g)))
            .collect()
    }

    /// All canonical observations enabled from `cfg`, each with the
    /// configuration it leads to.  Members whose raw events render to
    /// the same canonical string merge — the environment cannot tell
    /// those branches apart, so their futures pool.
    fn successors(&mut self, cfg: &Cfg) -> BTreeMap<String, Cfg> {
        let mut out: BTreeMap<String, BTreeSet<Member>> = BTreeMap::new();
        for (s, g, knowledge) in cfg {
            let lts = self.lts;
            for (e, (label, tgt)) in lts.states[*s].edges.iter().enumerate() {
                if let Label::Obs(ev, _) = label {
                    let true_ev = self.table.get(*g).apply_event(ev);
                    let mut k = knowledge.clone();
                    let canon = k.observe(&true_ev);
                    let h = self.edge_iso(*s, e);
                    let g_tgt = self.table.compose_ids(h, *g);
                    let members = self.closure(*tgt, g_tgt);
                    let set = out.entry(canon).or_default();
                    set.extend(members.into_iter().map(|(t, gi)| (t, gi, k.clone())));
                }
            }
        }
        out.into_iter()
            .map(|(c, set)| (c, set.into_iter().collect()))
            .collect()
    }

    fn initial(&mut self, knowledge: &EnvKnowledge) -> Cfg {
        let set: BTreeSet<Member> = self
            .closure(0, 0)
            .into_iter()
            .map(|(s, g)| (s, g, knowledge.clone()))
            .collect();
        set.into_iter().collect()
    }
}

/// Checks `implementation ⊑ specification` by on-the-fly hedged
/// bisimulation up to `max_visible` observations, with `opts` selecting
/// fault-injection behaviour.
///
/// This is the *raw* bounded comparison; it never answers
/// [`TraceVerdict::Inconclusive`].  When either LTS may be truncated,
/// use [`bisim_preorder_sound`].
#[must_use]
pub fn bisim_preorder_with(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
    opts: &BisimOptions,
) -> TraceVerdict {
    let mut iw = Walk::new(implementation);
    let mut sw = Walk::new(specification);
    let k0 = opts.knowledge();
    let start = (iw.initial(&k0), sw.initial(&k0));
    // The empty experiment always matches.
    let mut checked = 1usize;
    let mut visited: HashMap<(Cfg, Cfg), usize> = HashMap::new();
    visited.insert(start.clone(), max_visible);
    let mut queue: VecDeque<(Cfg, Cfg, usize, Vec<String>)> = VecDeque::new();
    queue.push_back((start.0, start.1, max_visible, Vec::new()));
    while let Some((ic, sc, remaining, prefix)) = queue.pop_front() {
        if remaining == 0 {
            continue;
        }
        let igroups = iw.successors(&ic);
        if igroups.is_empty() {
            continue;
        }
        let sgroups = sw.successors(&sc);
        for (canon, inext) in igroups {
            checked += 1;
            let Some(snext) = sgroups.get(&canon) else {
                // The specification cannot match this experiment: a
                // distinguishing trace, shortest because the schedule
                // is breadth-first.
                let mut witness = prefix;
                witness.push(canon);
                return TraceVerdict::Fails { witness };
            };
            let key = (inext, snext.clone());
            // Revisits arrive with at most the stored budget (BFS is
            // level-ordered), so a seen pair is a pruned subtree.
            if visited.get(&key).is_none_or(|&r| r < remaining - 1) {
                visited.insert(key.clone(), remaining - 1);
                let mut next_prefix = prefix.clone();
                next_prefix.push(canon);
                queue.push_back((key.0, key.1, remaining - 1, next_prefix));
            }
        }
    }
    TraceVerdict::Holds { checked }
}

/// [`bisim_preorder_with`] with default options.
#[must_use]
pub fn bisim_preorder(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
) -> TraceVerdict {
    bisim_preorder_with(implementation, specification, max_visible, &BisimOptions::default())
}

/// [`bisim_preorder_with`] under the same truncation soundness rules as
/// [`crate::trace_preorder_sound`]: a *Holds* needs a complete
/// implementation side, a *Fails* a complete specification side, and
/// anything else is inconclusive, blaming the exhausted side.
#[must_use]
pub fn bisim_preorder_sound_with(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
    opts: &BisimOptions,
) -> TraceVerdict {
    let raw = bisim_preorder_with(implementation, specification, max_visible, opts);
    let blame = |lts: &Lts| TraceVerdict::Inconclusive {
        exhausted: lts.exhausted.unwrap_or(ResourceKind::Fuel),
    };
    match raw {
        TraceVerdict::Holds { .. } if !implementation.complete() => blame(implementation),
        TraceVerdict::Fails { .. } if !specification.complete() => blame(specification),
        decided => decided,
    }
}

/// [`bisim_preorder_sound_with`] with default options.
#[must_use]
pub fn bisim_preorder_sound(
    implementation: &Lts,
    specification: &Lts,
    max_visible: usize,
) -> TraceVerdict {
    bisim_preorder_sound_with(implementation, specification, max_visible, &BisimOptions::default())
}

/// The canonical observation sequences the bisimulation engine's
/// configuration graph spells out, up to `max_visible` observations.
///
/// With full analysis this is provably the weak trace set of
/// [`crate::weak_traces`] — the differential surface the `engines`
/// conformance oracle compares string for string, which is what makes
/// an under-closing hedge (the `bisim-skip-analysis` planted bug)
/// observable even on a single system.
#[must_use]
pub fn bisim_traces(lts: &Lts, max_visible: usize, opts: &BisimOptions) -> TraceSet {
    let mut walk = Walk::new(lts);
    let start = walk.initial(&opts.knowledge());
    let mut out = TraceSet::new();
    let mut stack = vec![(start, max_visible, Vec::new())];
    while let Some((cfg, remaining, prefix)) = stack.pop() {
        out.insert(prefix.clone());
        if remaining == 0 {
            continue;
        }
        for (canon, next) in walk.successors(&cfg) {
            let mut p = prefix.clone();
            p.push(canon);
            stack.push((next, remaining - 1, p));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        trace_preorder, trace_preorder_sound, weak_traces, Budget, ExploreOptions, Explorer,
        ReduceOptions,
    };
    use spi_syntax::parse;

    fn lts(src: &str) -> Lts {
        Explorer::new(ExploreOptions::default())
            .explore(&parse(src).expect("parses"))
            .expect("explores")
    }

    fn lts_with(src: &str, o: ExploreOptions) -> Lts {
        Explorer::new(o).explore(&parse(src).expect("parses")).expect("explores")
    }

    #[test]
    fn agrees_with_the_trace_engine_on_simple_inclusions() {
        let small = lts("observe<a>");
        let big = lts("observe<a> | observe<b>");
        assert!(bisim_preorder(&small, &big, 3).holds());
        assert!(!bisim_preorder(&big, &small, 3).holds());
        assert_eq!(
            bisim_preorder(&big, &small, 3).holds(),
            trace_preorder(&big, &small, 3).holds()
        );
    }

    #[test]
    fn witness_is_shortest_and_rejected_by_the_trace_engine() {
        let impl_ = lts("observe<a>.observe<bad>");
        let spec = lts("observe<a>");
        match bisim_preorder(&impl_, &spec, 4) {
            TraceVerdict::Fails { witness } => {
                assert_eq!(witness.len(), 2, "shortest counterexample");
                assert!(witness[1].contains("bad"));
                // Replay: the distinguishing trace is an implementation
                // trace the specification lacks.
                assert!(weak_traces(&impl_, 4).contains(&witness));
                assert!(!weak_traces(&spec, 4).contains(&witness));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn fresh_name_linking_distinguishes_replays() {
        let twice = lts("(^m)(observe<m>.observe<m>)");
        let two = lts("(^m)(^n)(observe<m>.observe<n>)");
        assert!(!bisim_preorder(&twice, &two, 3).holds());
        assert!(!bisim_preorder(&two, &twice, 3).holds());
        // And alpha-variants are identified.
        let a = lts("(^m) observe<m>");
        let b = lts("(^n) observe<n>");
        assert!(bisim_preorder(&a, &b, 2).holds());
        assert!(bisim_preorder(&b, &a, 2).holds());
    }

    #[test]
    fn configuration_trace_language_equals_weak_traces() {
        for src in [
            "(^m)(c<m> | c(x).observe<x>)",
            "observe<a> | observe<b>",
            "(^kAB)((^m)c<{m}kAB> | c(z).case z of {w}kAB in observe<w>)",
        ] {
            let l = lts(src);
            assert_eq!(
                bisim_traces(&l, 4, &BisimOptions::default()),
                weak_traces(&l, 4),
                "on {src}"
            );
        }
    }

    #[test]
    fn agreement_holds_on_reduced_iso_tracked_explorations() {
        let concrete = "(^kAB)(!(^m)c<{m}kAB> | !c(z).case z of {w}kAB in observe<w>)";
        let spec = "(^s)(!s<s>.(^m)c<m> | !s@lamB(x_s).c@lamB(z).observe<z>)";
        let o = |reduce| ExploreOptions {
            unfold_bound: 2,
            budget: Budget::unlimited().states(20_000),
            reduce,
            ..ExploreOptions::default()
        };
        let ci = lts_with(concrete, o(ReduceOptions::full()));
        let si = lts_with(spec, o(ReduceOptions::full()));
        let t = trace_preorder_sound(&ci, &si, 4);
        let b = bisim_preorder_sound(&ci, &si, 4);
        assert_eq!(
            std::mem::discriminant(&t),
            std::mem::discriminant(&b),
            "engines disagree on reduced pm2: trace={t:?} bisim={b:?}"
        );
        assert_eq!(
            bisim_traces(&ci, 4, &BisimOptions::default()),
            weak_traces(&ci, 4),
            "configuration language diverged on a reduced LTS"
        );
    }

    #[test]
    fn truncation_soundness_mirrors_the_trace_engine() {
        let truncated = |src: &str| {
            Explorer::new(ExploreOptions {
                budget: Budget::unlimited().states(1),
                ..ExploreOptions::default()
            })
            .explore(&parse(src).expect("parses"))
            .expect("partial")
        };
        let small = lts("observe<a>");
        let big = lts("observe<a> | observe<b>");
        assert!(bisim_preorder_sound(&small, &big, 3).holds());
        let cut = truncated("observe<a>");
        assert!(!cut.complete());
        assert!(!bisim_preorder_sound(&cut, &big, 3).decided());
        assert!(!bisim_preorder_sound(&big, &truncated("observe<a>"), 3).decided());
        let empty = lts("0");
        assert!(bisim_preorder_sound(&empty, &truncated("observe<a>"), 3).holds());
    }

    #[test]
    fn the_planted_under_closure_is_visible_in_the_trace_language() {
        // Two distinct nonces under one key vs one nonce twice: the
        // full hedge separates them, the under-closed one cannot.
        let l = lts("(^k)(^m)(^n)(c<{m}k>.c<{n}k>)");
        let bug = BisimOptions {
            skip_analysis: true,
        };
        assert_eq!(bisim_traces(&l, 4, &BisimOptions::default()), weak_traces(&l, 4));
        assert_ne!(bisim_traces(&l, 4, &bug), weak_traces(&l, 4));
    }

    #[test]
    fn engine_flag_round_trips() {
        for e in [Engine::Trace, Engine::Bisim, Engine::Both] {
            assert_eq!(Engine::parse(e.mode()), Some(e));
            assert_eq!(e.to_string(), e.mode());
        }
        assert_eq!(Engine::parse("x"), None);
        assert_eq!(Engine::default(), Engine::Trace);
        assert!(Engine::Both.runs_trace() && Engine::Both.runs_bisim());
        assert!(!Engine::Trace.runs_bisim() && !Engine::Bisim.runs_trace());
    }
}
