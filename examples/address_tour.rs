//! A tour of relative addresses — Figure 1 and Section 3 of the paper.
//!
//! ```sh
//! cargo run --example address_tour
//! ```
//!
//! Reconstructs the paper's Figure 1 tree, computes the addresses the
//! paper quotes, demonstrates the composition law used when located
//! datums are forwarded, and runs the message-authentication machinery on
//! the forwarding example of Section 3.2.

use spi_auth::addr::{Path, ProcTree, RelAddr};
use spi_auth::semantics::{Action, Config};
use spi_auth::syntax::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Figure 1 -------------------------------------------------------
    let fig1 = ProcTree::node(
        ProcTree::node(ProcTree::leaf("P0"), ProcTree::leaf("P1")),
        ProcTree::node(
            ProcTree::leaf("P2"),
            ProcTree::node(ProcTree::leaf("P3"), ProcTree::leaf("P4")),
        ),
    );
    println!("Figure 1: the tree of {fig1}\n");
    for (path, name) in fig1.leaves() {
        println!("  {name} sits at {path}");
    }

    let p1: Path = "01".parse()?;
    let p2: Path = "10".parse()?;
    let p3: Path = "110".parse()?;
    let l = RelAddr::between(&p1, &p3);
    println!("\nthe address of P3 relative to P1 is l = {l}");
    println!("its inverse (P1 relative to P3)  is l⁻¹ = {}", l.inverse());
    println!(
        "compatibility: l⁻¹ compatible with l? {}",
        l.is_compatible(&l.inverse())
    );

    // ---- The forwarding composition (Section 3.2) -----------------------
    // P3 creates n and sends it to P1; P1 forwards it to P2.  The tag is
    // updated by composition so it keeps pointing at P3.
    let tag_at_p1 = RelAddr::between(&p1, &p3);
    let comm = RelAddr::between(&p2, &p1);
    let tag_at_p2 = tag_at_p1.compose(&comm)?;
    println!("\nforwarding P3's n from P1 to P2 rewrites the tag:");
    println!("  at P1: {tag_at_p1}");
    println!("  communication address (P1 as seen from P2): {comm}");
    println!(
        "  at P2: {tag_at_p2}   (= address of P3 relative to P2: {})",
        RelAddr::between(&p2, &p3)
    );

    // ---- The same, run by the machine -----------------------------------
    // A five-component system shaped exactly like Figure 1, where P3
    // sends a fresh n to P1 and P1 forwards it to P2.
    let system = parse("(0 | a(x).b<x>) | (b(y).observe<y> | ((^n) a<n> | 0))")?;
    let mut cfg = Config::from_process(&system)?;
    cfg.fire(&Action::Comm {
        out_path: "110".parse()?, // P3 sends n
        in_path: "01".parse()?,   // P1 receives
    })?;
    cfg.fire(&Action::Comm {
        out_path: "01".parse()?, // P1 forwards
        in_path: "10".parse()?,  // P2 receives
    })?;
    // P2 now holds n; ask the machine for its located view.
    let spi_auth::semantics::LeafState::Out { payload, .. } = cfg.tree().leaf_at(&"10".parse()?)?
    else {
        unreachable!("P2 is about to reveal y");
    };
    let loc = payload
        .location_at(&"10".parse()?, cfg.names())
        .expect("n is located");
    println!(
        "\nmachine-run forwarding: P2 sees n as [{loc}]{}",
        payload.display(cfg.names())
    );
    println!(
        "which resolves back to P3's position: {}",
        loc.resolve_at(&p2)?
    );
    Ok(())
}
