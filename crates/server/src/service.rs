//! The daemon: epoll reactor front end, worker pool, admission
//! control, drain.
//!
//! ```text
//! clients ──TCP──▶ reactor (epoll readiness loop, one thread)
//!                    │  per-connection: incremental line cap,
//!                    │  read deadline on partial lines (slowloris),
//!                    │  bounded write buffer (backpressure)
//!                    ▼
//!                  cache probe ──hit──▶ reply (cached:true)
//!                    │ miss
//!                    ▼ admission: tenant token bucket, then
//!                    │            Governor over queue depth
//!                  two-priority queue ──▶ worker pool ──▶ singleflight
//!                    │ quota/queue full        │ leader        │
//!                    ▼                         ▼               ▼
//!            reply (rejected +        progress heartbeats   engine run
//!             retry_after_ms)         via eventfd wake      ──▶ cache
//! ```
//!
//! The front end is a single **readiness loop**: every connection is
//! non-blocking and owned by one reactor thread, so ten thousand idle
//! connections cost two file descriptors each and zero threads.  Jobs
//! execute on the fixed worker pool exactly as before; completions
//! travel back through a queue the workers nudge with the poller's
//! eventfd.  While a job runs, its connection may subscribe to
//! `{"status":"progress",…}` heartbeat lines (wire `progress_ms`), fed
//! by the verifier's live states-explored / schedules-classified
//! counters — so a caller (or a hedging fleet coordinator) can tell
//! *working* from *dead* without killing long campaigns.
//!
//! Graceful drain (a `shutdown` request, or stdin-close in the CLI
//! front-end): stop accepting, reject new jobs, cancel in-flight
//! explorations through the shared cooperative cancel flag (they
//! answer *inconclusive*, never silently partial), and flush the
//! snapshot.  Snapshots are also written eagerly after every fresh
//! cache fill, so even an abrupt SIGTERM kill leaves the latest
//! completed results on disk for the next start.  Established
//! connections keep getting cache hits and structured rejections until
//! the handle is joined.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spi_verify::jsonlite::Json;
use spi_verify::{Budget, Governor, ResourceKind, Verdict, Verifier};

use crate::admission::{Priority, TenantQuotas};
use crate::cache::ResultCache;
use crate::flight::Singleflight;
use crate::protocol::{
    campaign_body, error_response, ok_response, parse_request, parse_source, progress_response,
    rejected_response, shed_response, verify_body, JobRequest, Mode, Request,
};
use crate::reactor::{Event, Poller, WAKE_TOKEN};
use crate::snapshot::{load_snapshot, write_snapshot};

/// Execution control handed to an [`Engine`] run: the per-request
/// deadline plus the server-wide cooperative cancel flag (tripped on
/// drain), plus the live progress counters a heartbeating connection
/// subscribes to.
#[derive(Debug, Clone)]
pub struct RunControl {
    /// Wall-clock cut-off for this request, if any (the tighter of the
    /// request's `timeout_secs` and its wire `deadline_ms`).
    pub deadline: Option<Instant>,
    /// The drain flag shared by every in-flight run.
    pub cancel: Arc<AtomicBool>,
    /// Live `(states_explored, schedules_classified)` counters the
    /// engine should bump while it runs, when the requester asked for
    /// progress heartbeats.  `None` streams nothing and costs nothing.
    pub progress: Option<(Arc<AtomicU64>, Arc<AtomicU64>)>,
}

impl RunControl {
    /// Returns `true` once the run was cancelled or timed out — results
    /// produced after a trip are truncated and must not be cached.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// What an engine run produced.
#[derive(Debug)]
pub struct EngineOutcome {
    /// The response body, or an error reason.
    pub body: Result<Json, String>,
    /// Whether the body may be cached.  Wall-clock-truncated and
    /// errored runs are not cacheable — rerunning them could give a
    /// different (better) answer; deterministic-budget verdicts are.
    pub cacheable: bool,
}

impl EngineOutcome {
    /// A non-cacheable error outcome.
    #[must_use]
    pub fn error(reason: impl Into<String>) -> EngineOutcome {
        EngineOutcome {
            body: Err(reason.into()),
            cacheable: false,
        }
    }
}

/// The pluggable execution back-end.  [`VerifierEngine`] handles
/// verify and campaign; the `spi` binary assembles a full engine that
/// adds conformance replay; tests plug in stubs.
pub trait Engine: Send + Sync {
    /// Executes one job under the given control.
    fn run(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome;
}

/// The standard engine: builds a [`Verifier`] from the job options and
/// runs checks and campaigns.
#[derive(Debug, Clone, Default)]
pub struct VerifierEngine {
    /// Worker threads per exploration (`None` = the verifier default).
    /// A busy daemon usually wants a small value here so parallelism
    /// comes from the request pool, not from each exploration.
    pub explore_workers: Option<usize>,
}

impl VerifierEngine {
    /// An engine with default exploration parallelism.
    #[must_use]
    pub fn new() -> VerifierEngine {
        VerifierEngine::default()
    }

    fn build_verifier(&self, job: &JobRequest, ctl: &RunControl) -> Verifier {
        let mut v = Verifier::new(job.channels.iter().map(String::as_str))
            .sessions(job.sessions)
            .max_visible(job.visible)
            .budget(job.budget)
            .cancel(Arc::clone(&ctl.cancel));
        if let Some(d) = ctl.deadline {
            v = v.deadline(d);
        }
        if let Some((states, schedules)) = &ctl.progress {
            v = v.progress(Arc::clone(states), Arc::clone(schedules));
        }
        if let Some(w) = self.explore_workers {
            v = v.workers(w);
        }
        if let Some(f) = &job.faults {
            v = v.faults(f.clone());
        }
        if !job.intruder {
            v = v.no_intruder();
        }
        v.reduce(job.reduce).engine(job.engine)
    }
}

impl Engine for VerifierEngine {
    fn run(&self, job: &JobRequest, ctl: &RunControl) -> EngineOutcome {
        let verifier = self.build_verifier(job, ctl);
        match job.mode {
            Mode::Verify => {
                let concrete = match parse_source(&job.concrete) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let spec = match parse_source(&job.abstract_spec) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                match verifier.check(&concrete, &spec) {
                    Ok(report) => {
                        let truncated = matches!(
                            report.verdict,
                            Verdict::Inconclusive {
                                exhausted: ResourceKind::WallClock,
                                ..
                            }
                        );
                        EngineOutcome {
                            body: Ok(verify_body(&report)),
                            cacheable: !truncated,
                        }
                    }
                    Err(e) => EngineOutcome::error(e.to_string()),
                }
            }
            Mode::Campaign => {
                let concrete = match parse_source(&job.concrete) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let spec = match parse_source(&job.abstract_spec) {
                    Ok(p) => p,
                    Err(e) => return EngineOutcome::error(e),
                };
                let mut opts = verifier.campaign_options(job.faults_depth);
                // A fleet work unit restricts this run to a contiguous
                // index range of the (deterministic) enumeration; the
                // coordinator stitches unit results back together.
                opts.schedule_range = job.unit;
                match verifier.run_campaign(&concrete, &spec, &opts) {
                    Ok(report) => EngineOutcome {
                        cacheable: !report.interrupted && !ctl.tripped(),
                        body: Ok(campaign_body(&report)),
                    },
                    Err(e) => EngineOutcome::error(e.to_string()),
                }
            }
            Mode::ConformanceReplay => EngineOutcome::error(
                "conformance-replay needs the full engine assembled by the spi binary",
            ),
        }
    }
}

/// Server configuration (the `spi serve` flags).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Snapshot path; `None` disables persistence.
    pub snapshot: Option<PathBuf>,
    /// Bounded-queue capacity; a full queue rejects new jobs.
    pub queue_cap: usize,
    /// Default per-request timeout applied when a request names none.
    pub default_timeout_secs: Option<u64>,
    /// How long a connection may sit on a *partial* request line before
    /// it is reaped (the slowloris defense).  Idle connections with no
    /// buffered bytes are never reaped.  `0` disables the deadline.
    pub read_deadline_ms: u64,
    /// Cap on a connection's buffered-but-unsent output.  A client
    /// that stops reading while replies accumulate past this cap is
    /// disconnected instead of growing the heap.
    pub write_buf_bytes: usize,
    /// Per-tenant admission rate in jobs/second (token-bucket refill).
    /// `0` disables quotas.
    pub quota_rate: u64,
    /// Per-tenant burst capacity (bucket size) when quotas are on.
    pub quota_burst: u64,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:7970".into(),
            workers: 2,
            cache_bytes: 8 * 1024 * 1024,
            snapshot: None,
            queue_cap: 16,
            default_timeout_secs: None,
            read_deadline_ms: 10_000,
            write_buf_bytes: 16 * 1024 * 1024,
            quota_rate: 0,
            quota_burst: 8,
        }
    }
}

struct Ticket {
    digest: String,
    job: JobRequest,
    /// The reactor connection waiting for the reply.
    conn: u64,
    /// When the job was admitted — the base of `deadline_ms` and the
    /// latency sample.
    accepted: Instant,
    /// Shared progress counters, when the requester subscribed.
    progress: Option<(Arc<AtomicU64>, Arc<AtomicU64>)>,
}

/// The two-priority job queue: interactive verifies pop ahead of batch
/// campaign / conformance work.  Priority reorders; it never preempts
/// a running job.
#[derive(Default)]
struct JobQueues {
    interactive: VecDeque<Ticket>,
    batch: VecDeque<Ticket>,
}

impl JobQueues {
    fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn push(&mut self, ticket: Ticket) {
        match Priority::of(ticket.job.mode) {
            Priority::Interactive => self.interactive.push_back(ticket),
            Priority::Batch => self.batch.push_back(ticket),
        }
    }

    fn pop(&mut self) -> Option<Ticket> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }
}

/// Per-op request-latency histogram over power-of-two microsecond
/// buckets.  Quantiles report the bucket's upper bound — coarse, but
/// lock-free to record and honest about its resolution.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; 32],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = (64 - u64::leading_zeros(us) as usize).min(self.counts.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The `pct`-th percentile in microseconds (upper bucket bound);
    /// zero when nothing was recorded.
    #[must_use]
    pub fn percentile_us(&self, pct: u64) -> u64 {
        let counts = self.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (total * pct).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << idx;
            }
        }
        1u64 << (counts.len() - 1)
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "count".to_string(),
                Json::count(usize::try_from(self.count()).unwrap_or(usize::MAX)),
            ),
            (
                "p50_us".to_string(),
                Json::count(usize::try_from(self.percentile_us(50)).unwrap_or(usize::MAX)),
            ),
            (
                "p99_us".to_string(),
                Json::count(usize::try_from(self.percentile_us(99)).unwrap_or(usize::MAX)),
            ),
        ])
    }
}

/// One histogram per job op plus one for control ops.
#[derive(Debug, Default)]
struct Latency {
    verify: Histogram,
    campaign: Histogram,
    replay: Histogram,
    control: Histogram,
}

impl Latency {
    fn for_op(&self, op: &str) -> &Histogram {
        match op {
            "verify" => &self.verify,
            "campaign" => &self.campaign,
            "conformance-replay" => &self.replay,
            _ => &self.control,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("verify".to_string(), self.verify.to_json()),
            ("campaign".to_string(), self.campaign.to_json()),
            ("conformance-replay".to_string(), self.replay.to_json()),
            ("control".to_string(), self.control.to_json()),
        ])
    }
}

struct Shared {
    engine: Arc<dyn Engine>,
    opts: ServerOptions,
    addr: SocketAddr,
    cache: Mutex<ResultCache>,
    flight: Singleflight,
    queue: Mutex<JobQueues>,
    queue_cv: Condvar,
    /// Queue admission rides the Budget states dimension: the governor
    /// admits one more queued job iff the current depth is under cap.
    admission: Mutex<Governor>,
    /// Per-tenant token buckets (reactor-thread only, but behind a
    /// mutex so the handle types stay `Sync`).
    quotas: Mutex<TenantQuotas>,
    /// Finished-job replies waiting for the reactor to deliver:
    /// `(connection token, response line)`.
    completions: Mutex<Vec<(u64, String)>>,
    poller: Poller,
    draining: AtomicBool,
    /// Set by [`ServerHandle::join`] after the workers exited: the
    /// reactor delivers what is left and closes every connection.
    stopping: AtomicBool,
    cancel: Arc<AtomicBool>,
    inflight: AtomicUsize,
    executions: AtomicU64,
    rejected: AtomicU64,
    /// Load-shed answers: queue-full rejections carrying a
    /// `retry_after_ms` hint (a subset of `rejected`).
    shed: AtomicU64,
    /// Tenant-quota rejections (also a subset of `rejected`).
    quota_denied: AtomicU64,
    /// Progress heartbeat lines written to subscribed connections.
    heartbeats_sent: AtomicU64,
    /// Connections currently registered with the reactor.
    active_connections: AtomicUsize,
    /// Duplicate in-flight requests collapsed by singleflight (a parked
    /// follower answered from the leader's cache fill).
    collapsed: AtomicU64,
    /// Cumulative reduction counters across every fresh engine run (the
    /// `stats` op reports them so operators can see what the configured
    /// `reduce` modes are saving fleet-wide).
    quotiented: AtomicU64,
    pruned: AtomicU64,
    latency: Latency,
}

/// A running server.  Dropping the handle does **not** stop it; call
/// [`ServerHandle::join`] (or send a `shutdown` request) to drain.
pub struct ServerHandle {
    shared: Arc<Shared>,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// How many engine runs actually executed — the singleflight /
    /// cache probe counter tests assert on.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.shared.executions.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: stop accepting, reject new jobs, cancel
    /// in-flight explorations.  Idempotent; returns immediately.
    pub fn shutdown(&self) {
        trigger_drain(&self.shared);
    }

    /// Whether a drain has been triggered (by [`ServerHandle::shutdown`],
    /// a `shutdown` request, or a [`ShutdownHandle`]).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Merges gossiped `(key, op, body)` cache entries into this
    /// node's result cache (insertion is idempotent: existing keys are
    /// refreshed, never corrupted).  Returns how many entries were
    /// offered to the cache.
    pub fn absorb(&self, entries: Vec<(String, String, String)>) -> usize {
        absorb_entries(&self.shared, entries)
    }

    /// The current cache contents in LRU order — the gossip payload.
    #[must_use]
    pub fn cache_entries(&self) -> Vec<(String, String, String)> {
        self.shared.cache.lock().expect("cache lock").entries_lru()
    }

    /// A cheap cloneable handle another thread can use to trigger the
    /// drain (e.g. the CLI's stdin watcher).
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A cheap handle another thread can use to warm this node's cache
    /// with gossiped entries (the `--join` heartbeat warms through it
    /// after a rejoin acknowledgement) or to read the entries back (the
    /// drain-announce handoff).
    #[must_use]
    pub fn cache_handle(&self) -> CacheHandle {
        CacheHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until *something* triggers the drain — a `shutdown`
    /// request over the wire, a [`ShutdownHandle`], or a prior
    /// [`ServerHandle::shutdown`] — then joins and flushes the final
    /// snapshot.
    pub fn join_on_drain(self) {
        while !self.draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }

    /// Drains and waits for every worker to finish, then flushes the
    /// final snapshot.  Open connections receive their pending replies
    /// and are closed.
    pub fn join(self) {
        self.shutdown();
        for w in self.workers {
            let _ = w.join();
        }
        // Workers are gone, so every completion is posted; tell the
        // reactor to deliver the leftovers and wind down.
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.poller.wake();
        let _ = self.reactor.join();
        persist_snapshot(&self.shared);
    }
}

/// Triggers a server's drain from any thread (see
/// [`ServerHandle::shutdown_handle`]).
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begins the graceful drain.  Idempotent.
    pub fn shutdown(&self) {
        trigger_drain(&self.shared);
    }
}

/// Feeds gossiped entries into a running server's cache from another
/// thread (see [`ServerHandle::cache_handle`]).
pub struct CacheHandle {
    shared: Arc<Shared>,
}

impl CacheHandle {
    /// See [`ServerHandle::absorb`].
    pub fn absorb(&self, entries: Vec<(String, String, String)>) -> usize {
        absorb_entries(&self.shared, entries)
    }

    /// The current cache contents in LRU order — what a draining
    /// worker hands off in its `leave` announcement.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, String, String)> {
        self.shared.cache.lock().expect("cache lock").entries_lru()
    }

    /// Whether the server is draining — the heartbeat loop's exit cue.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }
}

fn absorb_entries(shared: &Arc<Shared>, entries: Vec<(String, String, String)>) -> usize {
    let offered = entries.len();
    {
        let mut cache = shared.cache.lock().expect("cache lock");
        for (key, op, body) in entries {
            cache.insert(key, op, body);
        }
    }
    persist_snapshot(shared);
    offered
}

fn trigger_drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.cancel.store(true, Ordering::Relaxed);
    shared.queue_cv.notify_all();
    // Nudge the reactor so it stops accepting immediately.
    shared.poller.wake();
}

fn persist_snapshot(shared: &Shared) {
    let Some(path) = &shared.opts.snapshot else {
        return;
    };
    let entries = shared.cache.lock().expect("cache lock").entries_lru();
    if let Err(e) = write_snapshot(path, &entries) {
        eprintln!("spi-serve: snapshot write failed: {e}");
    }
}

/// Starts a server.  The listener is bound before this returns, so the
/// caller may connect to [`ServerHandle::addr`] immediately.
///
/// # Errors
///
/// Fails when the address cannot be bound or the epoll instance cannot
/// be created.
pub fn serve(engine: Arc<dyn Engine>, opts: ServerOptions) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&opts.addr)
        .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot unblock the listener: {e}"))?;
    let poller = Poller::new().map_err(|e| format!("cannot create the epoll reactor: {e}"))?;

    let mut cache = ResultCache::new(opts.cache_bytes);
    if let Some(path) = &opts.snapshot {
        if path.exists() {
            match load_snapshot(path) {
                Ok(entries) => {
                    for (key, op, body) in entries {
                        cache.insert(key, op, body);
                    }
                }
                Err(e) => eprintln!("spi-serve: ignoring snapshot: {e}"),
            }
        }
    }

    let queue_cap = opts.queue_cap.max(1);
    let workers = opts.workers.max(1);
    let quotas = TenantQuotas::new(opts.quota_rate, opts.quota_burst);
    let shared = Arc::new(Shared {
        engine,
        addr,
        cache: Mutex::new(cache),
        flight: Singleflight::new(),
        queue: Mutex::new(JobQueues::default()),
        queue_cv: Condvar::new(),
        admission: Mutex::new(Governor::new(Budget::unlimited().states(queue_cap))),
        quotas: Mutex::new(quotas),
        completions: Mutex::new(Vec::new()),
        poller,
        draining: AtomicBool::new(false),
        stopping: AtomicBool::new(false),
        cancel: Arc::new(AtomicBool::new(false)),
        inflight: AtomicUsize::new(0),
        executions: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        quota_denied: AtomicU64::new(0),
        heartbeats_sent: AtomicU64::new(0),
        active_connections: AtomicUsize::new(0),
        collapsed: AtomicU64::new(0),
        quotiented: AtomicU64::new(0),
        pruned: AtomicU64::new(0),
        latency: Latency::default(),
        opts,
    });

    let worker_handles: Vec<JoinHandle<()>> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let reactor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || Reactor::new(shared, listener).run())
    };

    Ok(ServerHandle {
        shared,
        reactor,
        workers: worker_handles,
    })
}

/// The longest request line a connection may send.  Anything larger is
/// answered with a structured error — the oversized bytes are streamed
/// past (never buffered whole), so a hostile 10 MB line costs one
/// error response, not a worker slot or an allocation spike.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Reads one newline-terminated line with a byte cap (the blocking
/// variant the fleet coordinator's connection threads use; the
/// reactor enforces the same cap incrementally).
///
/// Returns `Ok(None)` on clean EOF, `Ok(Some(Err(reason)))` for an
/// oversized or non-UTF-8 line (the offending bytes are consumed so
/// the connection stays usable), and `Ok(Some(Ok(line)))` otherwise.
pub(crate) fn read_line_capped(
    reader: &mut impl BufRead,
) -> std::io::Result<Option<Result<String, String>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    let mut saw_any = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflowed {
            if buf.len() + take <= MAX_LINE_BYTES {
                buf.extend_from_slice(&chunk[..take]);
            } else {
                overflowed = true;
                buf.clear();
            }
        }
        let consumed = newline.map_or(take, |p| p + 1);
        reader.consume(consumed);
        if newline.is_some() {
            break;
        }
    }
    if overflowed {
        return Ok(Some(Err(format!(
            "request line exceeds {MAX_LINE_BYTES} bytes"
        ))));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err("request line is not valid UTF-8".to_string()))),
    }
}

/// A connection's progress subscription: emit a heartbeat from the
/// shared counters every `interval`.
struct ProgressSub {
    states: Arc<AtomicU64>,
    schedules: Arc<AtomicU64>,
    interval: Duration,
    due: Instant,
}

/// The job a connection is waiting on (one at a time per connection —
/// the reactor stops reading a connection while its job runs, so the
/// kernel socket buffer is the pipeline bound).
struct ActiveJob {
    op: &'static str,
    digest: String,
    accepted: Instant,
    progress: Option<ProgressSub>,
}

/// One reactor-owned connection.
struct Conn {
    stream: TcpStream,
    peer: String,
    /// Partial-line input buffer, capped incrementally.
    rbuf: Vec<u8>,
    /// An oversized line is being discarded up to its newline.
    overflow: bool,
    /// Buffered-but-unsent output (already-attempted writes first).
    wbuf: Vec<u8>,
    /// Armed only while `rbuf` holds a partial line — slowloris reap.
    read_deadline: Option<Instant>,
    active: Option<ActiveJob>,
    /// Close once `wbuf` flushes (EOF seen or cap tripped).
    closing: bool,
    /// Last interest registered with the poller (readable, writable).
    interest: (bool, bool),
}

/// What processing one input line produced.
enum LineOutcome {
    /// The reply was written (or nothing needed writing).
    Done,
    /// A job was queued; stop pumping this connection until the
    /// completion arrives.
    JobPending,
}

const LISTENER_TOKEN: u64 = u64::MAX - 1;
/// How long the stopping reactor keeps trying to flush write buffers.
const STOP_FLUSH_GRACE: Duration = Duration::from_secs(2);

struct Reactor {
    shared: Arc<Shared>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Tickets dispatched to workers whose completions have not been
    /// processed yet (whether or not the connection still exists).
    outstanding: usize,
    accepting: bool,
}

impl Reactor {
    fn new(shared: Arc<Shared>, listener: TcpListener) -> Reactor {
        Reactor {
            shared,
            listener,
            conns: HashMap::new(),
            next_token: 1,
            outstanding: 0,
            accepting: false,
        }
    }

    fn run(mut self) {
        if self
            .shared
            .poller
            .register(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false)
            .is_err()
        {
            return;
        }
        self.accepting = true;
        let mut events: Vec<Event> = Vec::new();
        let mut stop_flush_from: Option<Instant> = None;
        loop {
            let timeout = self.next_timeout(stop_flush_from);
            if self.shared.poller.wait(timeout, &mut events).is_err() {
                break;
            }
            let fired = std::mem::take(&mut events);
            for ev in &fired {
                match ev.token {
                    WAKE_TOKEN => {}
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
            }
            events = fired;
            self.deliver_completions();
            self.tick_timers();
            if self.shared.draining.load(Ordering::SeqCst) && self.accepting {
                self.shared.poller.deregister(self.listener.as_raw_fd());
                self.accepting = false;
            }
            if self.shared.stopping.load(Ordering::SeqCst) {
                let started = *stop_flush_from.get_or_insert_with(Instant::now);
                // Deliver leftovers, then hold the door briefly for
                // unflushed output; a peer that will not read forfeits
                // the tail.
                let flushed = self
                    .conns
                    .values()
                    .all(|c| c.wbuf.is_empty());
                if (self.outstanding == 0 && flushed)
                    || started.elapsed() >= STOP_FLUSH_GRACE
                {
                    break;
                }
            }
        }
        for (_, conn) in self.conns.drain() {
            self.shared.poller.deregister(conn.stream.as_raw_fd());
        }
        self.shared.active_connections.store(0, Ordering::SeqCst);
    }

    /// The epoll timeout: the soonest read deadline or heartbeat, or
    /// block forever when nothing is scheduled (drains and completions
    /// arrive via the wake eventfd).
    fn next_timeout(&self, stop_flush_from: Option<Instant>) -> Option<u64> {
        let now = Instant::now();
        let mut soonest: Option<Instant> = stop_flush_from.map(|s| s + STOP_FLUSH_GRACE);
        for conn in self.conns.values() {
            if let Some(d) = conn.read_deadline {
                soonest = Some(soonest.map_or(d, |s| s.min(d)));
            }
            if let Some(p) = conn.active.as_ref().and_then(|a| a.progress.as_ref()) {
                soonest = Some(soonest.map_or(p.due, |s| s.min(p.due)));
            }
        }
        soonest.map(|s| {
            let until = s.saturating_duration_since(now);
            if until.is_zero() {
                0
            } else {
                // Round up: truncating to 0ms would spin until the
                // sub-millisecond remainder elapses.
                u64::try_from(until.as_millis())
                    .unwrap_or(u64::MAX)
                    .saturating_add(1)
            }
        })
    }

    fn accept_ready(&mut self) {
        if !self.accepting || self.shared.draining.load(Ordering::SeqCst) {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Line-sized writes; without NODELAY the
                    // Nagle/delayed-ACK interaction costs tens of
                    // milliseconds per response.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .shared
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            peer: peer.ip().to_string(),
                            rbuf: Vec::new(),
                            overflow: false,
                            wbuf: Vec::new(),
                            read_deadline: None,
                            active: None,
                            closing: false,
                            interest: (true, false),
                        },
                    );
                    self.shared
                        .active_connections
                        .store(self.conns.len(), Ordering::SeqCst);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: &Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return; // stale event for a closed connection
        };
        if ev.hangup {
            self.close(token);
            return;
        }
        if ev.writable && !flush(conn) {
            self.close(token);
            return;
        }
        if ev.readable && !Self::fill(&self.shared, conn) {
            self.close(token);
            return;
        }
        self.pump(token);
    }

    /// Reads everything available.  Returns `false` when the
    /// connection is dead.
    fn fill(shared: &Shared, conn: &mut Conn) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                    return conn.active.is_some() || !conn.wbuf.is_empty();
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    // The incremental line cap: discard an oversized
                    // line's bytes as they stream in, remembering only
                    // that it overflowed.
                    if !conn.overflow
                        && conn.rbuf.len() > MAX_LINE_BYTES
                        && !conn.rbuf.contains(&b'\n')
                    {
                        conn.overflow = true;
                        conn.rbuf.clear();
                    } else if conn.overflow {
                        if let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
                            conn.rbuf.drain(..pos);
                        } else {
                            conn.rbuf.clear();
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        // A partial line arms the slowloris deadline; a completed (or
        // absent) line disarms it.
        let partial = !conn.rbuf.is_empty() && !conn.rbuf.contains(&b'\n');
        conn.read_deadline = if (partial || conn.overflow) && shared.opts.read_deadline_ms > 0 {
            conn.read_deadline
                .or_else(|| Some(Instant::now() + Duration::from_millis(shared.opts.read_deadline_ms)))
        } else {
            None
        };
        true
    }

    /// Processes buffered complete lines until a job is dispatched or
    /// input runs dry, then re-arms interest.
    fn pump(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.active.is_some()
                || conn.closing
                || conn.wbuf.len() > self.shared.opts.write_buf_bytes
            {
                break;
            }
            let Some(line) = next_line(conn) else { break };
            let outcome = match line {
                Err(reason) => {
                    let reply = error_response("request", &reason).render_compact();
                    send_line(conn, &reply);
                    LineOutcome::Done
                }
                Ok(line) if line.trim().is_empty() => LineOutcome::Done,
                Ok(line) => self.dispatch_line(token, &line),
            };
            if matches!(outcome, LineOutcome::JobPending) {
                break;
            }
        }
        self.after_io(token);
    }

    /// Re-arms poller interest after any I/O or state change, and
    /// closes connections that finished flushing or tripped the write
    /// cap.
    fn after_io(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.wbuf.len() > self.shared.opts.write_buf_bytes {
            // The peer stopped reading while output accumulated:
            // disconnect rather than grow without bound.
            self.close(token);
            return;
        }
        if conn.closing && conn.wbuf.is_empty() && conn.active.is_none() {
            self.close(token);
            return;
        }
        let want = (
            !conn.closing && conn.active.is_none(),
            !conn.wbuf.is_empty(),
        );
        if want != conn.interest {
            conn.interest = want;
            let _ = self
                .shared
                .poller
                .rearm(conn.stream.as_raw_fd(), token, want.0, want.1);
        }
    }

    /// Handles one complete request line on connection `token`.
    fn dispatch_line(&mut self, token: u64, line: &str) -> LineOutcome {
        let started = Instant::now();
        let parsed = parse_request(line);
        if let Ok(Request::Job(job)) = parsed {
            return self.dispatch_job(token, *job, started);
        }
        let (op, reply) = match parsed {
            Err(e) => ("request", error_response("request", &e)),
            Ok(Request::Ping) => ("ping", ok_response("ping", None, false, Json::Obj(vec![]))),
            Ok(Request::Stats) => ("stats", stats_response(&self.shared)),
            Ok(Request::Shutdown) => {
                trigger_drain(&self.shared);
                (
                    "shutdown",
                    ok_response("shutdown", None, false, Json::Obj(vec![])),
                )
            }
            Ok(Request::Join { .. }) => (
                "join",
                error_response(
                    "join",
                    "this node is not a coordinator (join a fleet started with `spi fleet`)",
                ),
            ),
            Ok(Request::Leave { .. }) => (
                "leave",
                error_response(
                    "leave",
                    "this node is not a coordinator (leave announces a drain to `spi fleet`)",
                ),
            ),
            Ok(Request::Gossip) => ("gossip", gossip_response(&self.shared)),
            Ok(Request::GossipPush { cache }) => (
                "gossip-push",
                match crate::gossip::parse_gossip(&cache) {
                    Ok(entries) => {
                        let merged = absorb_entries(&self.shared, entries);
                        ok_response(
                            "gossip-push",
                            None,
                            false,
                            Json::Obj(vec![("merged".into(), Json::count(merged))]),
                        )
                    }
                    Err(e) => error_response("gossip-push", &e),
                },
            ),
            Ok(Request::Job(_)) => unreachable!("handled above"),
        };
        let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.shared.latency.for_op(op).record_us(elapsed);
        if let Some(conn) = self.conns.get_mut(&token) {
            send_line(conn, &reply.render_compact());
        }
        LineOutcome::Done
    }

    /// Admits one job: cache probe, drain check, tenant quota, queue
    /// depth — then either replies immediately or queues a ticket.
    fn dispatch_job(&mut self, token: u64, job: JobRequest, accepted: Instant) -> LineOutcome {
        let shared = Arc::clone(&self.shared);
        let op = job.mode.keyword();
        let record = |resp: &str| {
            let elapsed = u64::try_from(accepted.elapsed().as_micros()).unwrap_or(u64::MAX);
            shared.latency.for_op(op).record_us(elapsed);
            resp.to_string()
        };
        let digest = match job.digest() {
            Ok(d) => d,
            Err(e) => {
                let reply = record(&error_response(op, &e).render_compact());
                if let Some(conn) = self.conns.get_mut(&token) {
                    send_line(conn, &reply);
                }
                return LineOutcome::Done;
            }
        };
        let immediate: Option<String> = (|| {
            if !job.no_cache {
                if let Some((_, body)) = shared.cache.lock().expect("cache lock").get(&digest) {
                    return Some(cached_reply(op, &digest, &body));
                }
            }
            if shared.draining.load(Ordering::SeqCst) {
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                return Some(rejected_response(op, "server is draining").render_compact());
            }
            let tenant = job
                .tenant
                .clone()
                .unwrap_or_else(|| self.conns.get(&token).map_or_else(String::new, |c| c.peer.clone()));
            {
                let mut quotas = shared.quotas.lock().expect("quota lock");
                if quotas.enabled() {
                    if let Err(retry_ms) = quotas.admit(&tenant, Instant::now()) {
                        shared.rejected.fetch_add(1, Ordering::SeqCst);
                        shared.quota_denied.fetch_add(1, Ordering::SeqCst);
                        return Some(
                            shed_response(
                                op,
                                &format!("tenant {tenant:?} is over its admission quota"),
                                retry_ms,
                            )
                            .render_compact(),
                        );
                    }
                }
            }
            None
        })();
        if let Some(reply) = immediate {
            let reply = record(&reply);
            if let Some(conn) = self.conns.get_mut(&token) {
                send_line(conn, &reply);
            }
            return LineOutcome::Done;
        }
        // Queue admission rides the governor over queue depth.
        let queued: Result<Option<ProgressSub>, String> = {
            let mut queue = shared.queue.lock().expect("queue lock");
            let depth = queue.depth();
            if !shared
                .admission
                .lock()
                .expect("admission lock")
                .admit_state(depth)
            {
                shared.rejected.fetch_add(1, Ordering::SeqCst);
                shared.shed.fetch_add(1, Ordering::SeqCst);
                // The hint scales with how much work is already ahead
                // of the caller.
                let retry_ms = (u64::try_from(depth).unwrap_or(u64::MAX))
                    .saturating_mul(50)
                    .clamp(50, 5_000);
                Err(
                    shed_response(op, &format!("queue full ({depth} pending)"), retry_ms)
                        .render_compact(),
                )
            } else {
                let progress = job.progress_ms.filter(|&ms| ms > 0).map(|ms| {
                    let interval = Duration::from_millis(ms.max(10));
                    ProgressSub {
                        states: Arc::new(AtomicU64::new(0)),
                        schedules: Arc::new(AtomicU64::new(0)),
                        interval,
                        due: Instant::now() + interval,
                    }
                });
                queue.push(Ticket {
                    digest: digest.clone(),
                    job,
                    conn: token,
                    accepted,
                    progress: progress
                        .as_ref()
                        .map(|p| (Arc::clone(&p.states), Arc::clone(&p.schedules))),
                });
                shared.queue_cv.notify_one();
                Ok(progress)
            }
        };
        match queued {
            Err(reply) => {
                let reply = record(&reply);
                if let Some(conn) = self.conns.get_mut(&token) {
                    send_line(conn, &reply);
                }
                LineOutcome::Done
            }
            Ok(progress) => {
                self.outstanding += 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.active = Some(ActiveJob {
                        op,
                        digest,
                        accepted,
                        progress,
                    });
                }
                LineOutcome::JobPending
            }
        }
    }

    /// Delivers worker completions to their connections.
    fn deliver_completions(&mut self) {
        let done: Vec<(u64, String)> =
            std::mem::take(&mut *self.shared.completions.lock().expect("completions lock"));
        for (token, reply) in done {
            self.outstanding = self.outstanding.saturating_sub(1);
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // client vanished; the work is cached anyway
            };
            if let Some(active) = conn.active.take() {
                let elapsed =
                    u64::try_from(active.accepted.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.shared.latency.for_op(active.op).record_us(elapsed);
            }
            send_line(conn, &reply);
            // The connection may have pipelined more requests while the
            // job ran; serve them now.
            self.pump(token);
        }
    }

    /// Read-deadline reaping and progress heartbeats.
    fn tick_timers(&mut self) {
        let now = Instant::now();
        let reap: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.read_deadline.is_some_and(|d| now >= d))
            .map(|(&t, _)| t)
            .collect();
        for token in reap {
            // A partial line outstayed its welcome: slowloris reap.
            self.close(token);
        }
        let mut beats = 0u64;
        let mut touched: Vec<u64> = Vec::new();
        for (&token, conn) in &mut self.conns {
            let Some(active) = conn.active.as_mut() else {
                continue;
            };
            let (op, digest) = (active.op, active.digest.clone());
            let Some(p) = active.progress.as_mut() else {
                continue;
            };
            if now < p.due {
                continue;
            }
            p.due = now + p.interval;
            let line = progress_response(
                op,
                Some(&digest),
                p.states.load(Ordering::Relaxed),
                p.schedules.load(Ordering::Relaxed),
            )
            .render_compact();
            send_line(conn, &line);
            beats += 1;
            touched.push(token);
        }
        if beats > 0 {
            self.shared.heartbeats_sent.fetch_add(beats, Ordering::SeqCst);
        }
        for token in touched {
            self.after_io(token);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.shared.poller.deregister(conn.stream.as_raw_fd());
            self.shared
                .active_connections
                .store(self.conns.len(), Ordering::SeqCst);
        }
    }
}

/// Extracts the next complete line from the connection buffer.
/// `Some(Err(reason))` reports an oversized or non-UTF-8 line (the
/// bytes are consumed; the connection stays usable).
fn next_line(conn: &mut Conn) -> Option<Result<String, String>> {
    let pos = conn.rbuf.iter().position(|&b| b == b'\n')?;
    let mut line: Vec<u8> = conn.rbuf.drain(..=pos).collect();
    line.pop(); // the newline
    conn.read_deadline = None;
    if conn.overflow {
        conn.overflow = false;
        return Some(Err(format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    if line.len() > MAX_LINE_BYTES {
        return Some(Err(format!("request line exceeds {MAX_LINE_BYTES} bytes")));
    }
    match String::from_utf8(line) {
        Ok(s) => Some(Ok(s)),
        Err(_) => Some(Err("request line is not valid UTF-8".to_string())),
    }
}

/// Appends a reply line and flushes as much as the socket accepts.
fn send_line(conn: &mut Conn, line: &str) {
    conn.wbuf.extend_from_slice(line.as_bytes());
    conn.wbuf.push(b'\n');
    if !flush(conn) {
        conn.closing = true;
        conn.wbuf.clear();
        conn.active = None;
    }
}

/// Writes buffered output until the socket blocks.  Returns `false`
/// when the connection errored.
fn flush(conn: &mut Conn) -> bool {
    let mut written = 0usize;
    let ok = loop {
        if written >= conn.wbuf.len() {
            break true;
        }
        match conn.stream.write(&conn.wbuf[written..]) {
            Ok(0) => break false,
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break false,
        }
    };
    conn.wbuf.drain(..written);
    ok
}

fn gossip_response(shared: &Shared) -> Json {
    let entries = shared.cache.lock().expect("cache lock").entries_lru();
    ok_response("gossip", None, false, crate::gossip::gossip_body(&entries))
}

fn stats_response(shared: &Shared) -> Json {
    let cache = shared.cache.lock().expect("cache lock");
    let queue_depth = shared.queue.lock().expect("queue lock").depth();
    // Integer percent: the wire JSON has no floats.
    let lookups = cache.hits + cache.misses;
    let hit_rate_pct = (cache.hits * 100)
        .checked_div(lookups)
        .and_then(|p| usize::try_from(p).ok())
        .unwrap_or(0);
    let count_of = |ctr: &AtomicU64| {
        Json::count(usize::try_from(ctr.load(Ordering::SeqCst)).unwrap_or(0))
    };
    let body = Json::Obj(vec![
        ("hits".into(), Json::count(usize::try_from(cache.hits).unwrap_or(usize::MAX))),
        (
            "misses".into(),
            Json::count(usize::try_from(cache.misses).unwrap_or(usize::MAX)),
        ),
        (
            "evictions".into(),
            Json::count(usize::try_from(cache.evictions).unwrap_or(usize::MAX)),
        ),
        ("hit_rate_pct".into(), Json::count(hit_rate_pct)),
        ("entries".into(), Json::count(cache.len())),
        ("cache_bytes".into(), Json::count(cache.used_bytes())),
        ("cache_bytes_max".into(), Json::count(cache.max_bytes())),
        (
            "inflight".into(),
            Json::count(shared.inflight.load(Ordering::SeqCst)),
        ),
        ("queue_depth".into(), Json::count(queue_depth)),
        ("executions".into(), count_of(&shared.executions)),
        ("rejected".into(), count_of(&shared.rejected)),
        ("shed".into(), count_of(&shared.shed)),
        ("quota_denied".into(), count_of(&shared.quota_denied)),
        (
            "active_connections".into(),
            Json::count(shared.active_connections.load(Ordering::SeqCst)),
        ),
        ("heartbeats_sent".into(), count_of(&shared.heartbeats_sent)),
        ("collapsed".into(), count_of(&shared.collapsed)),
        ("states_quotiented".into(), count_of(&shared.quotiented)),
        ("por_pruned".into(), count_of(&shared.pruned)),
        ("latency".into(), shared.latency.to_json()),
        ("workers".into(), Json::count(shared.opts.workers)),
        (
            "draining".into(),
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
    ]);
    ok_response("stats", None, false, body)
}

/// Serves a cached `(op, body)` pair as a `cached:true` envelope.
fn cached_reply(op: &str, digest: &str, body: &str) -> String {
    match Json::parse(body) {
        Ok(parsed) => ok_response(op, Some(digest), true, parsed).render_compact(),
        // A cache body that fails to re-parse is a bug; answer it as an
        // error rather than emitting a malformed line.
        Err(e) => error_response(op, &format!("corrupt cache entry: {e}")).render_compact(),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let ticket = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(t) = queue.pop() {
                    break t;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock");
            }
        };
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let response = execute(shared, &ticket);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared
            .completions
            .lock()
            .expect("completions lock")
            .push((ticket.conn, response));
        shared.poller.wake();
    }
}

/// Accumulates the reduction counters a fresh verify body reports into
/// the server-wide `stats` totals.
fn record_reduction(shared: &Shared, body: &Json) {
    let Some(r) = body.get("reduction") else {
        return;
    };
    let add = |key: &str, ctr: &AtomicU64| {
        if let Some(n) = r.get(key).and_then(Json::as_int) {
            ctr.fetch_add(u64::try_from(n).unwrap_or(0), Ordering::SeqCst);
        }
    };
    add("states_quotiented", &shared.quotiented);
    add("por_pruned", &shared.pruned);
}

fn execute(shared: &Arc<Shared>, ticket: &Ticket) -> String {
    let op = ticket.job.mode.keyword();
    // `timeout_secs` runs from execution start (as it always has);
    // `deadline_ms` is end-to-end from admission, so queue time counts
    // against it.  The engine sees the tighter of the two.
    let mut deadline = ticket
        .job
        .timeout_secs
        .or(shared.opts.default_timeout_secs)
        .map(|s| Instant::now() + Duration::from_secs(s));
    if let Some(ms) = ticket.job.deadline_ms {
        let wire = ticket.accepted + Duration::from_millis(ms);
        deadline = Some(deadline.map_or(wire, |d| d.min(wire)));
    }
    let ctl = RunControl {
        deadline,
        cancel: Arc::clone(&shared.cancel),
        progress: ticket.progress.clone(),
    };
    if ticket.job.no_cache {
        // Cache-bypassing requests neither join nor lead a flight: the
        // caller explicitly asked for a private run.
        shared.executions.fetch_add(1, Ordering::SeqCst);
        let outcome = shared.engine.run(&ticket.job, &ctl);
        if let Some(r) = drain_truncated_reply(shared, op, &outcome) {
            return r;
        }
        return match outcome.body {
            Ok(body) => {
                record_reduction(shared, &body);
                ok_response(op, Some(&ticket.digest), false, body).render_compact()
            }
            Err(e) => error_response(op, &e).render_compact(),
        };
    }
    loop {
        // The cache may have been filled between enqueue and pickup (a
        // duplicate ticket whose leader already finished) — serve that
        // rather than re-exploring.
        if let Some((_, body)) = shared
            .cache
            .lock()
            .expect("cache lock")
            .get(&ticket.digest)
        {
            return cached_reply(op, &ticket.digest, &body);
        }
        if shared.flight.begin(&ticket.digest) {
            shared.executions.fetch_add(1, Ordering::SeqCst);
            let outcome = shared.engine.run(&ticket.job, &ctl);
            if let Some(r) = drain_truncated_reply(shared, op, &outcome) {
                shared.flight.finish(&ticket.digest);
                return r;
            }
            let response = match outcome.body {
                Ok(body) => {
                    record_reduction(shared, &body);
                    if outcome.cacheable {
                        shared.cache.lock().expect("cache lock").insert(
                            ticket.digest.clone(),
                            op.to_string(),
                            body.render_compact(),
                        );
                        // Eager persistence: even an abrupt kill keeps
                        // every completed result.
                        persist_snapshot(shared);
                    }
                    ok_response(op, Some(&ticket.digest), false, body).render_compact()
                }
                Err(e) => error_response(op, &e).render_compact(),
            };
            shared.flight.finish(&ticket.digest);
            return response;
        }
        // Someone else is computing this digest: park, then loop — the
        // re-probe serves from the cache they filled, or this worker
        // becomes the next leader if they failed without caching.
        shared.collapsed.fetch_add(1, Ordering::SeqCst);
        shared.flight.wait(&ticket.digest);
    }
}

/// Converts a drain-truncated, non-cacheable run into a `rejected`
/// reply.  A relaying coordinator must see *retry elsewhere*, never a
/// half-explored inconclusive verdict it would pass back to the client
/// as if it were the real answer — that would break the byte-identity
/// guarantee the chaos oracle enforces.
fn drain_truncated_reply(shared: &Shared, op: &str, outcome: &EngineOutcome) -> Option<String> {
    if !outcome.cacheable && shared.draining.load(Ordering::SeqCst) {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        return Some(rejected_response(op, "worker drained mid-run").render_compact());
    }
    None
}
