//! A minimal, dependency-free property-testing shim exposing the subset
//! of the `proptest` API this workspace uses.
//!
//! The container building this workspace has no network access, so the
//! real `proptest` crate cannot be fetched.  This stand-in keeps the
//! same surface — `Strategy`, `BoxedStrategy`, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `proptest::sample::select`, the `proptest!`
//! macro family — backed by a deterministic splitmix/xorshift generator
//! seeded per test-and-case, so failures are reproducible run to run.

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Defines property tests.  Mirrors `proptest::proptest!`: an optional
/// leading `#![proptest_config(..)]`, then `fn name(arg in strategy, ..)`
/// items whose bodies may use `prop_assert*!` and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        ::core::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __e.0
                        );
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $crate::proptest!(
            @cfg ($crate::test_runner::Config::default())
            $($(#[$meta])* fn $name($($args)*) $body)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`\n {}",
            __l,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Picks one of several strategies uniformly.  Mirrors `prop_oneof!`
/// (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
