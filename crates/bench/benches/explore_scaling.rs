//! S1 — state-space scaling: exploration size and time versus the number
//! of sessions and versus protocol width, for the abstract `Pm`, the
//! naive `Pm2` and the challenge-response `Pm3`.
//!
//! The shape to expect (recorded in `EXPERIMENTS.md`): the abstract
//! protocol stays small (localization prunes the intruder's moves), the
//! naive cipher protocol grows moderately, and the challenge-response
//! grows fastest (nonces multiply the intruder's choices) while remaining
//! tractable at the paper's two sessions.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use spi_auth::Verifier;
use spi_bench::independent_pairs;
use spi_protocols::multi;
use spi_verify::{Budget, ExploreOptions, Explorer};

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_sessions");
    group.sample_size(10);
    let pm = multi::abstract_protocol("c", "observe").expect("builds");
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    for sessions in [1u32, 2] {
        for (name, protocol) in [
            ("pm_abstract", &pm),
            ("pm2_naive", &pm2),
            ("pm3_nonce", &pm3),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, sessions),
                &sessions,
                |b, &sessions| {
                    let verifier = Verifier::new(["c"]).sessions(sessions);
                    b.iter(|| verifier.explore(protocol).expect("explores").stats);
                },
            );
        }
    }
    // Pm and Pm2 stay cheap enough for a third session.
    for (name, protocol) in [("pm_abstract", &pm), ("pm2_naive", &pm2)] {
        group.bench_with_input(BenchmarkId::new(name, 3u32), &3u32, |b, &sessions| {
            let verifier = Verifier::new(["c"]).sessions(sessions);
            b.iter(|| verifier.explore(protocol).expect("explores").stats);
        });
    }
    group.finish();
}

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_width");
    group.sample_size(10);
    for pairs in [2usize, 4, 6] {
        let system = independent_pairs(pairs);
        group.bench_with_input(
            BenchmarkId::new("independent_pairs", pairs),
            &system,
            |b, s| {
                let explorer = Explorer::new(ExploreOptions::default());
                b.iter(|| explorer.explore(s).expect("explores").stats);
            },
        );
    }
    group.finish();
}

/// Smoke check for the resource governor: exploring under a generous
/// *finite* budget (every admission compares against a real bound that
/// never binds) must cost within ~5% of exploring with every dimension
/// unlimited.  The assertion makes `cargo bench --bench explore_scaling`
/// fail loudly if governor bookkeeping ever regresses.
fn bench_governor_overhead(c: &mut Criterion) {
    let pm2 = multi::shared_key("c", "observe");
    let unlimited = Verifier::new(["c"])
        .sessions(2)
        .budget(Budget::unlimited());
    let governed = Verifier::new(["c"]).sessions(2).budget(
        Budget::unlimited()
            .states(1_000_000)
            .transitions(4_000_000)
            .fuel(2_000_000)
            .knowledge(64)
            .deadline(16_000_000),
    );

    let mut group = c.benchmark_group("governor_overhead");
    group.sample_size(10);
    group.bench_function("unlimited", |b| {
        b.iter(|| unlimited.explore(&pm2).expect("explores").stats)
    });
    group.bench_function("governed_generous", |b| {
        b.iter(|| governed.explore(&pm2).expect("explores").stats)
    });
    group.finish();

    // Interleaved medians so frequency drift hits both sides equally.
    let time = |v: &Verifier| {
        let start = Instant::now();
        black_box(v.explore(&pm2).expect("explores"));
        start.elapsed()
    };
    let mut base = Vec::new();
    let mut gov = Vec::new();
    for _ in 0..15 {
        base.push(time(&unlimited));
        gov.push(time(&governed));
    }
    base.sort();
    gov.sort();
    let (base_med, gov_med) = (base[base.len() / 2], gov[gov.len() / 2]);
    let limit = base_med.mul_f64(1.05) + Duration::from_millis(1);
    assert!(
        gov_med <= limit,
        "governor bookkeeping overhead exceeds ~5%: governed {gov_med:?} vs unlimited {base_med:?}"
    );
    println!(
        "governor_overhead/smoke: governed {gov_med:?} vs unlimited {base_med:?} (limit {limit:?}) — ok"
    );
}

/// Smoke check for the parallel frontier: on the three-session naive
/// protocol (the largest Pm2 instance in this suite), exploring with all
/// available workers must not be slower than exploring sequentially —
/// and both must agree exactly on the explored system.  The assertion
/// makes `cargo bench --bench explore_scaling` fail loudly if the
/// parallel engine ever regresses below the sequential one.
fn bench_parallel_frontier(c: &mut Criterion) {
    let pm2 = multi::shared_key("c", "observe");
    let sequential = Verifier::new(["c"]).sessions(3).workers(1);
    let parallel = Verifier::new(["c"]).sessions(3);

    let mut group = c.benchmark_group("parallel_frontier");
    group.sample_size(10);
    group.bench_function("sequential_pm2_s3", |b| {
        b.iter(|| sequential.explore(&pm2).expect("explores").stats)
    });
    group.bench_function("parallel_pm2_s3", |b| {
        b.iter(|| parallel.explore(&pm2).expect("explores").stats)
    });
    group.finish();

    // Determinism: worker count must not change the explored system.
    let seq_lts = sequential.explore(&pm2).expect("explores");
    let par_lts = parallel.explore(&pm2).expect("explores");
    assert_eq!(seq_lts.stats, par_lts.stats, "worker count changed the LTS");
    assert!(
        seq_lts
            .states
            .iter()
            .zip(&par_lts.states)
            .all(|(s, p)| s.key == p.key && s.edges == p.edges),
        "worker count changed state numbering or edges"
    );

    // Interleaved medians so frequency drift hits both sides equally.
    let time = |v: &Verifier| {
        let start = Instant::now();
        black_box(v.explore(&pm2).expect("explores"));
        start.elapsed()
    };
    let mut seq = Vec::new();
    let mut par = Vec::new();
    for _ in 0..7 {
        seq.push(time(&sequential));
        par.push(time(&parallel));
    }
    seq.sort();
    par.sort();
    let (seq_med, par_med) = (seq[seq.len() / 2], par[par.len() / 2]);
    // "No slower" with a small tolerance so single-core CI runners (where
    // both engines degenerate to the same work) don't flake on noise.
    let limit = seq_med.mul_f64(1.10) + Duration::from_millis(1);
    assert!(
        par_med <= limit,
        "parallel frontier slower than sequential: parallel {par_med:?} vs sequential {seq_med:?}"
    );
    println!(
        "parallel_frontier/smoke: parallel {par_med:?} vs sequential {seq_med:?} (limit {limit:?}) — ok"
    );
}

criterion_group!(
    scaling,
    bench_sessions,
    bench_width,
    bench_governor_overhead,
    bench_parallel_frontier
);
criterion_main!(scaling);
