//! Precedence-aware pretty-printing of terms and processes.
//!
//! The printers are exact inverses of the parser: for every process `p`,
//! `parse(&p.to_string())` returns `p` (checked by property tests in
//! `tests/`).  The output uses the ASCII concrete syntax, with `•`
//! rendered as `.` inside address literals.

use std::fmt;

use spi_addr::RelAddr;

use crate::{AddrSide, ChanIndex, Channel, Process, Term};

/// Renders a relative address in the concrete-syntax literal form
/// `bits.bits` (with `e` for an empty component).
fn fmt_addr(addr: &RelAddr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(
        f,
        "{}.{}",
        addr.observer().to_bits(),
        addr.target().to_bits()
    )
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Name(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Pair(a, b) => {
                // Right-nested pairs print as n-ary tuples, matching the
                // parser's sugar.
                write!(f, "({a}")?;
                let mut rest: &Term = b;
                while let Term::Pair(x, y) = rest {
                    write!(f, ", {x}")?;
                    rest = y;
                }
                write!(f, ", {rest})")
            }
            Term::Enc { body, key } => {
                write!(f, "{{")?;
                for (i, t) in body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}{key}")
            }
            Term::Located { addr, inner } => {
                write!(f, "[")?;
                fmt_addr(addr, f)?;
                write!(f, "]{inner}")
            }
        }
    }
}

impl fmt::Display for ChanIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanIndex::Plain => Ok(()),
            ChanIndex::At(addr) => {
                write!(f, "@(")?;
                fmt_addr(addr, f)?;
                write!(f, ")")
            }
            ChanIndex::Loc(lam) => write!(f, "@{lam}"),
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.subject, self.index)
    }
}

impl fmt::Display for AddrSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrSide::Term(t) => write!(f, "{t}"),
            AddrSide::Lit(addr) => {
                write!(f, "@(")?;
                fmt_addr(addr, f)?;
                write!(f, ")")
            }
        }
    }
}

/// Prints `p` at prefix level: parallel compositions get parenthesized so
/// the structure survives re-parsing.
fn fmt_prefix(p: &Process, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if matches!(p, Process::Par(_, _)) {
        write!(f, "({p})")
    } else {
        write!(f, "{p}")
    }
}

/// Prints an I/O continuation: nothing when nil, `.P` otherwise.
fn fmt_cont(p: &Process, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if p.is_nil() {
        Ok(())
    } else {
        write!(f, ".")?;
        fmt_prefix(p, f)
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Process::Nil => write!(f, "0"),
            Process::Output(ch, payload, cont) => {
                write!(f, "{ch}<{payload}>")?;
                fmt_cont(cont, f)
            }
            Process::Input(ch, x, cont) => {
                write!(f, "{ch}({x})")?;
                fmt_cont(cont, f)
            }
            Process::Restrict(n, body) => {
                write!(f, "(^{n})")?;
                fmt_prefix(body, f)
            }
            Process::Par(l, r) => {
                // Left-associative: the left child prints bare, the right
                // child is parenthesized when it is itself a parallel.
                write!(f, "{l} | ")?;
                fmt_prefix(r, f)
            }
            Process::Match(a, b, cont) => {
                write!(f, "[{a} = {b}]")?;
                fmt_prefix(cont, f)
            }
            Process::AddrMatch(a, side, cont) => {
                write!(f, "[{a} ~ {side}]")?;
                fmt_prefix(cont, f)
            }
            Process::Bang(body) => {
                write!(f, "!")?;
                fmt_prefix(body, f)
            }
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => {
                write!(f, "let ({fst}, {snd}) = {pair} in ")?;
                fmt_prefix(body, f)
            }
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                write!(f, "case {scrutinee} of {{")?;
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "}}{key} in ")?;
                fmt_prefix(body, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, parse_term};

    /// Asserts that `src` parses and reprints as `expected`, and that the
    /// reprint re-parses to the same AST.
    fn round_trip(src: &str, expected: &str) {
        let p = parse(src).expect("parses");
        let printed = p.to_string();
        assert_eq!(printed, expected);
        let again = parse(&printed).expect("reprint parses");
        assert_eq!(again, p, "printing must preserve the AST");
    }

    #[test]
    fn prints_basic_forms() {
        round_trip("0", "0");
        round_trip("c<m>.0", "c<m>");
        round_trip("c ( x ) . d<x>", "c(x).d<x>");
        round_trip("(^ m) c<m>", "(^m)c<m>");
        round_trip("! c<m>", "!c<m>");
    }

    #[test]
    fn prints_parallel_with_minimal_parens() {
        round_trip("a<m> | b<m> | c<m>", "a<m> | b<m> | c<m>");
        round_trip("a<m> | (b<m> | c<m>)", "a<m> | (b<m> | c<m>)");
        round_trip("(a<m> | b<m>) | c<m>", "a<m> | b<m> | c<m>");
        round_trip("(^s)(a<s> | b(x))", "(^s)(a<s> | b(x))");
        round_trip("!(a<m> | b(x))", "!(a<m> | b(x))");
        round_trip("c<m>.(a<m> | b(x))", "c<m>.(a<m> | b(x))");
    }

    #[test]
    fn prints_matching_forms() {
        round_trip("[x = m] c<m>", "[x = m]c<m>");
        round_trip("[x ~ y] c<m>", "[x ~ y]c<m>");
        round_trip("[x ~ @(10.0)] c<m>", "[x ~ @(10.0)]c<m>");
        round_trip("[x = [01.110]d] 0", "[x = [01.110]d]0");
    }

    #[test]
    fn prints_channels_with_indexes() {
        round_trip("c@lam(x).c@lam<x>", "c@lam(x).c@lam<x>");
        round_trip("c@(01.110)<m>", "c@(01.110)<m>");
        round_trip("c@(e.00)<m>", "c@(e.00)<m>");
    }

    #[test]
    fn prints_case_and_encryptions() {
        round_trip(
            "case z of {x, w}kAB in [w = n] observe<x>",
            "case z of {x, w}kAB in [w = n]observe<x>",
        );
        round_trip("c<{m, n}k>", "c<{m, n}k>");
        round_trip("c<{m}{k}h>", "c<{m}{k}h>");
    }

    #[test]
    fn prints_pair_splitting() {
        round_trip(
            "c(x). let (y, z) = x in d<(z, y)>",
            "c(x).let (y, z) = x in d<(z, y)>",
        );
        round_trip(
            "let (y, z) = (a, b) in (d<y> | e<z>)",
            "let (y, z) = (a, b) in (d<y> | e<z>)",
        );
    }

    #[test]
    fn tuples_flatten() {
        let t = parse_term("(a, (b, c))").unwrap();
        assert_eq!(t.to_string(), "(a, b, c)");
        let t = parse_term("((a, b), c)").unwrap();
        assert_eq!(t.to_string(), "((a, b), c)");
    }

    #[test]
    fn paper_example_1_round_trips() {
        round_trip(
            "!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))",
            "!a<{m}k> | a(x).case x of {y}k in (^h)(b<{y}h> | r(w))",
        );
    }
}
