//! Workload generators shared by the benchmark harness.
//!
//! The generators are deterministic (seeded) so benchmark runs are
//! comparable; they are also unit-tested here so the benches cannot rot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spi_addr::{Branch, Path};
use spi_semantics::{NameTable, RtTerm};
use spi_syntax::{Name, Process, Term};

/// A deterministic RNG for workload generation.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random tree path of the given length.
pub fn random_path(rng: &mut StdRng, len: usize) -> Path {
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.5) {
                Branch::Left
            } else {
                Branch::Right
            }
        })
        .collect()
}

/// A chain of `n` sequential outputs `c⟨m⟩.…`, used as a parser/printer
/// workload.
#[must_use]
pub fn output_chain(n: usize) -> Process {
    let mut p = Process::Nil;
    for i in (0..n).rev() {
        p = Process::output(
            Term::name(format!("c{}", i % 7)),
            Term::enc(
                vec![Term::name(format!("m{}", i % 5)), Term::name("n")],
                Term::name("k"),
            ),
            p,
        );
    }
    p
}

/// A wide parallel system of `n` send/receive pairs on distinct
/// restricted channels — a state-space workload with no interference.
#[must_use]
pub fn independent_pairs(n: usize) -> Process {
    let mut components = Vec::with_capacity(n);
    for i in 0..n {
        let c = format!("c{i}");
        components.push(Process::restrict(
            Name::new(c.as_str()),
            Process::par(
                Process::restrict(
                    "m",
                    Process::output(Term::name(c.as_str()), Term::name("m"), Process::Nil),
                ),
                Process::input(Term::name(c.as_str()), "x", Process::Nil),
            ),
        ));
    }
    components.into_iter().reduce(Process::par).expect("n >= 1")
}

/// The source text of [`output_chain`], for parser benchmarks.
#[must_use]
pub fn output_chain_source(n: usize) -> String {
    output_chain(n).to_string()
}

/// A batch of `count` random messages over `atoms` names, nested up to
/// `depth` — the knowledge-closure workload.
pub fn random_messages(
    rng: &mut StdRng,
    names: &mut NameTable,
    atoms: usize,
    count: usize,
    depth: usize,
) -> Vec<RtTerm> {
    let ids: Vec<RtTerm> = (0..atoms)
        .map(|i| {
            RtTerm::Id(names.alloc_restricted(&Name::new(format!("a{i}")), random_path(rng, 3)))
        })
        .collect();
    (0..count)
        .map(|_| random_message(rng, &ids, depth))
        .collect()
}

fn random_message(rng: &mut StdRng, atoms: &[RtTerm], depth: usize) -> RtTerm {
    if depth == 0 || rng.gen_bool(0.4) {
        atoms[rng.gen_range(0..atoms.len())].clone()
    } else if rng.gen_bool(0.5) {
        RtTerm::Pair {
            fst: Box::new(random_message(rng, atoms, depth - 1)),
            snd: Box::new(random_message(rng, atoms, depth - 1)),
            creator: None,
        }
    } else {
        RtTerm::Enc {
            body: vec![
                random_message(rng, atoms, depth - 1),
                random_message(rng, atoms, depth - 1),
            ],
            key: Box::new(atoms[rng.gen_range(0..atoms.len())].clone()),
            creator: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::parse;

    #[test]
    fn output_chain_round_trips() {
        let p = output_chain(50);
        assert_eq!(parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn independent_pairs_is_closed() {
        let p = independent_pairs(4);
        assert!(p.is_closed());
        assert!(p.free_names().is_empty());
    }

    #[test]
    fn random_messages_are_messages() {
        let mut r = rng(7);
        let mut names = NameTable::new();
        for m in random_messages(&mut r, &mut names, 5, 20, 3) {
            assert!(m.is_message());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        assert_eq!(random_path(&mut a, 10), random_path(&mut b, 10));
    }
}
