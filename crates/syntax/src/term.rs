//! Terms of the calculus: names, variables, pairs, encryptions and located
//! terms.

use spi_addr::RelAddr;

use crate::{Name, Var};

/// A term `L, M, N` of the calculus (Section 2 of the paper, plus the
/// located terms of Section 3.2).
///
/// ```text
/// L, M, N ::= a, b, c, k, m, n      names
///           | x, y, z, w            variables
///           | (M₁, M₂)              pair
///           | {M₁, …, Mₖ}N          shared-key encryption
///           | l M                   located term (address-tagged)
/// ```
///
/// An encryption `{M₁,…,Mₖ}N` is the ciphertext obtained by encrypting
/// `M₁,…,Mₖ` under key `N` with a shared-key cryptosystem; cryptography is
/// perfect, so the only way to recover the contents is `case … of …` with
/// the correct key.
///
/// A located term `l M` pairs a term with the relative address of its
/// *creator*; it is how the paper's message-authentication primitive
/// surfaces in the syntax.  In source programs located terms appear only
/// as literals inside matchings and testers (e.g.
/// `[x = ‖0‖1•‖1‖1‖0 d]P`); at run time the semantics produces and
/// maintains the tags.
///
/// # Example
///
/// ```
/// use spi_syntax::Term;
///
/// // {m, n}k
/// let t = Term::enc(
///     vec![Term::name("m"), Term::name("n")],
///     Term::name("k"),
/// );
/// assert_eq!(t.to_string(), "{m, n}k");
/// assert!(t.is_closed() == true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A name `n`.
    Name(Name),
    /// A variable `x`.
    Var(Var),
    /// A pair `(M₁, M₂)`.
    Pair(Box<Term>, Box<Term>),
    /// A shared-key encryption `{M₁, …, Mₖ}N`: the ciphertext of the body
    /// under the key.
    Enc {
        /// The encrypted terms `M₁, …, Mₖ`.
        body: Vec<Term>,
        /// The key `N`.
        key: Box<Term>,
    },
    /// A located term `l M`: `M` tagged with the relative address of its
    /// creator as seen by the process in whose text the literal occurs.
    Located {
        /// The creator's relative address `l`.
        addr: RelAddr,
        /// The underlying term `M`.
        inner: Box<Term>,
    },
}

impl Term {
    /// Builds a name term.
    #[must_use]
    pub fn name(n: impl Into<Name>) -> Term {
        Term::Name(n.into())
    }

    /// Builds a variable term.
    #[must_use]
    pub fn var(v: impl Into<Var>) -> Term {
        Term::Var(v.into())
    }

    /// Builds a pair `(m, n)`.
    #[must_use]
    pub fn pair(m: Term, n: Term) -> Term {
        Term::Pair(Box::new(m), Box::new(n))
    }

    /// Builds an encryption `{body…}key`.
    #[must_use]
    pub fn enc(body: Vec<Term>, key: Term) -> Term {
        Term::Enc {
            body,
            key: Box::new(key),
        }
    }

    /// Builds a located term `addr inner`.
    #[must_use]
    pub fn located(addr: RelAddr, inner: Term) -> Term {
        Term::Located {
            addr,
            inner: Box::new(inner),
        }
    }

    /// Returns `true` when the term contains no variables, i.e. denotes a
    /// message rather than a pattern.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        match self {
            Term::Name(_) => true,
            Term::Var(_) => false,
            Term::Pair(a, b) => a.is_closed() && b.is_closed(),
            Term::Enc { body, key } => body.iter().all(Term::is_closed) && key.is_closed(),
            Term::Located { inner, .. } => inner.is_closed(),
        }
    }

    /// The number of constructors in the term — a size measure used by
    /// bounded intruder synthesis and by benchmarks.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Term::Name(_) | Term::Var(_) => 1,
            Term::Pair(a, b) => 1 + a.size() + b.size(),
            Term::Enc { body, key } => 1 + body.iter().map(Term::size).sum::<usize>() + key.size(),
            Term::Located { inner, .. } => 1 + inner.size(),
        }
    }

    /// The maximum constructor nesting depth of the term.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Term::Name(_) | Term::Var(_) => 1,
            Term::Pair(a, b) => 1 + a.depth().max(b.depth()),
            Term::Enc { body, key } => {
                1 + body
                    .iter()
                    .map(Term::depth)
                    .chain(std::iter::once(key.depth()))
                    .max()
                    .unwrap_or(0)
            }
            Term::Located { inner, .. } => 1 + inner.depth(),
        }
    }

    /// Strips any outermost location tag, returning the underlying term.
    #[must_use]
    pub fn unlocated(&self) -> &Term {
        match self {
            Term::Located { inner, .. } => inner.unlocated(),
            other => other,
        }
    }

    /// The location tag of the term, if it is a located term.
    #[must_use]
    pub fn location(&self) -> Option<&RelAddr> {
        match self {
            Term::Located { addr, .. } => Some(addr),
            _ => None,
        }
    }
}

impl From<Name> for Term {
    fn from(n: Name) -> Term {
        Term::Name(n)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Term {
        Term::name("m")
    }

    #[test]
    fn closedness() {
        assert!(m().is_closed());
        assert!(!Term::var("x").is_closed());
        assert!(!Term::pair(m(), Term::var("x")).is_closed());
        assert!(Term::enc(vec![m()], Term::name("k")).is_closed());
        assert!(!Term::enc(vec![m()], Term::var("y")).is_closed());
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(m().size(), 1);
        assert_eq!(Term::pair(m(), m()).size(), 3);
        assert_eq!(Term::enc(vec![m(), m()], Term::name("k")).size(), 4);
    }

    #[test]
    fn depth_measures_nesting() {
        assert_eq!(m().depth(), 1);
        assert_eq!(Term::pair(m(), Term::pair(m(), m())).depth(), 3);
    }

    #[test]
    fn unlocated_strips_tags() {
        let t = Term::located(RelAddr::identity(), m());
        assert_eq!(t.unlocated(), &m());
        assert_eq!(m().unlocated(), &m());
        assert!(t.location().is_some());
        assert!(m().location().is_none());
    }

    #[test]
    fn conversions_from_identifiers() {
        let t: Term = Name::new("a").into();
        assert_eq!(t, Term::name("a"));
        let t: Term = Var::new("x").into();
        assert_eq!(t, Term::var("x"));
    }
}
