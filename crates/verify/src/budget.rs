//! The resource governor: explicit budgets with graceful degradation.
//!
//! Every claim this toolkit produces is a *bounded-search* claim, so
//! resource exhaustion is not an error — it is an answer of a third kind.
//! A [`Budget`] caps each resource an exploration consumes; when one runs
//! out, the explorer keeps everything it has built (the LTS prefix, with
//! its frontier marked) and reports [`CoverageStats`] plus the exhausted
//! [`ResourceKind`] instead of failing.  Downstream deciders then apply
//! the soundness rule:
//!
//! * a **positive** claim (trace inclusion holds, a tester passes, a
//!   secret is derivable) found on a *complete* implementation-side
//!   exploration is sound;
//! * a **negative** claim (a distinguishing trace, a tester the spec
//!   fails) is sound only when the *specification* side is complete;
//! * anything else is **inconclusive** — and growing any budget dimension
//!   can only turn inconclusive answers into decided ones, never flip a
//!   decided answer (budget monotonicity, property-tested in this crate).

use std::fmt;

/// Which resource ran out first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// The cap on distinct explored states.
    States,
    /// The cap on explored transitions (edges).
    Transitions,
    /// The cap on expansion fuel (states taken off the work queue).
    Fuel,
    /// The cap on per-state intruder-knowledge size.
    Knowledge,
    /// The overall step deadline (successor-generation work units).
    DeadlineSteps,
    /// The wall-clock deadline (or a cooperative cancellation request) —
    /// the only non-deterministic cut-off: where it lands depends on the
    /// host clock, so any verdict it truncates is *inconclusive*, never
    /// silently partial.
    WallClock,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::States => "states",
            ResourceKind::Transitions => "transitions",
            ResourceKind::Fuel => "fuel",
            ResourceKind::Knowledge => "knowledge",
            ResourceKind::DeadlineSteps => "deadline-steps",
            ResourceKind::WallClock => "wall-clock",
        })
    }
}

/// Resource caps for one exploration.  All dimensions are inclusive
/// upper bounds; `usize::MAX` means effectively unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of distinct states interned.
    pub max_states: usize,
    /// Maximum number of transitions (edges) recorded.
    pub max_transitions: usize,
    /// Maximum number of states expanded (popped off the work queue).
    pub max_fuel: usize,
    /// Maximum intruder-knowledge size a state may have and still be
    /// expanded; larger states are left on the frontier.
    pub max_knowledge: usize,
    /// Overall deadline in successor-generation work units.
    pub deadline_steps: usize,
}

impl Budget {
    /// A budget with every dimension unlimited.
    #[must_use]
    pub fn unlimited() -> Budget {
        Budget {
            max_states: usize::MAX,
            max_transitions: usize::MAX,
            max_fuel: usize::MAX,
            max_knowledge: usize::MAX,
            deadline_steps: usize::MAX,
        }
    }

    /// Caps the number of distinct states.
    #[must_use]
    pub fn states(mut self, n: usize) -> Budget {
        self.max_states = n;
        self
    }

    /// Caps the number of transitions.
    #[must_use]
    pub fn transitions(mut self, n: usize) -> Budget {
        self.max_transitions = n;
        self
    }

    /// Caps the expansion fuel.
    #[must_use]
    pub fn fuel(mut self, n: usize) -> Budget {
        self.max_fuel = n;
        self
    }

    /// Caps the per-state knowledge size.
    #[must_use]
    pub fn knowledge(mut self, n: usize) -> Budget {
        self.max_knowledge = n;
        self
    }

    /// Sets the overall step deadline.
    #[must_use]
    pub fn deadline(mut self, n: usize) -> Budget {
        self.deadline_steps = n;
        self
    }

    /// Parses the CLI/wire budget syntax: comma-separated
    /// `dimension=count` pairs over the default budget, e.g.
    /// `states=5000,fuel=100000`.  Dimensions: `states`, `transitions`,
    /// `fuel`, `knowledge`, `steps` (alias `deadline`).  The one spelling
    /// shared by `spi verify --budget`, `spi campaign --budget`, and the
    /// `spi serve` request format.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message naming the offending pair.
    pub fn parse_spec(spec: &str) -> Result<Budget, String> {
        let mut budget = Budget::default();
        for pair in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("budget expects dimension=count pairs, got {pair:?}"))?;
            let n: usize = value
                .parse()
                .map_err(|_| format!("budget {key}: expected a number, got {value:?}"))?;
            match key {
                "states" => budget.max_states = n,
                "transitions" => budget.max_transitions = n,
                "fuel" => budget.max_fuel = n,
                "knowledge" => budget.max_knowledge = n,
                "steps" | "deadline" => budget.deadline_steps = n,
                other => {
                    return Err(format!(
                        "budget: unknown dimension {other:?} \
                         (expected states|transitions|fuel|knowledge|steps)"
                    ))
                }
            }
        }
        Ok(budget)
    }

    /// The inverse of [`Budget::parse_spec`]: every dimension spelled
    /// out, in a fixed order — used to normalize budgets into
    /// content-addressed cache keys.
    #[must_use]
    pub fn canonical_spec(&self) -> String {
        format!(
            "states={},transitions={},fuel={},knowledge={},steps={}",
            self.max_states, self.max_transitions, self.max_fuel, self.max_knowledge,
            self.deadline_steps
        )
    }

    /// Returns `true` when `self` is at least as generous as `other` in
    /// every dimension.
    #[must_use]
    pub fn dominates(&self, other: &Budget) -> bool {
        self.max_states >= other.max_states
            && self.max_transitions >= other.max_transitions
            && self.max_fuel >= other.max_fuel
            && self.max_knowledge >= other.max_knowledge
            && self.deadline_steps >= other.deadline_steps
    }
}

impl Default for Budget {
    /// The historical default: 50 000 states, everything else unlimited.
    fn default() -> Budget {
        Budget::unlimited().states(50_000)
    }
}

/// What an exploration actually covered, reported with every partial (and
/// complete) result so bounded claims stay auditable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Distinct states interned.
    pub states: usize,
    /// Transitions recorded.
    pub transitions: usize,
    /// States fully expanded.
    pub expanded: usize,
    /// States left on the frontier (interned but not fully expanded).
    pub frontier: usize,
    /// Successor-generation work units consumed.
    pub steps: usize,
}

impl CoverageStats {
    /// Returns `true` when nothing at all was explored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states == 0
    }

    /// Returns `true` when the exploration ran to completion (no state
    /// was left unexpanded).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.frontier == 0
    }
}

impl fmt::Display for CoverageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, {} expanded, {} frontier, {} steps",
            self.states, self.transitions, self.expanded, self.frontier, self.steps
        )
    }
}

/// The running meter an explorer charges against a [`Budget`].
#[derive(Debug, Clone)]
pub struct Governor {
    budget: Budget,
    spent_fuel: usize,
    spent_steps: usize,
    exhausted: Option<ResourceKind>,
}

impl Governor {
    /// A fresh meter for `budget`.
    #[must_use]
    pub fn new(budget: Budget) -> Governor {
        Governor {
            budget,
            spent_fuel: 0,
            spent_steps: 0,
            exhausted: None,
        }
    }

    /// The budget being metered.
    #[must_use]
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The first resource that ran out, if any.
    #[must_use]
    pub fn exhausted(&self) -> Option<ResourceKind> {
        self.exhausted
    }

    /// Fuel consumed so far.
    #[must_use]
    pub fn fuel_spent(&self) -> usize {
        self.spent_fuel
    }

    /// Steps consumed so far.
    #[must_use]
    pub fn steps_spent(&self) -> usize {
        self.spent_steps
    }

    /// Records the first exhaustion.
    pub fn note(&mut self, kind: ResourceKind) {
        self.exhausted.get_or_insert(kind);
    }

    /// Charges one unit of expansion fuel; `false` when the fuel budget
    /// is already spent (and notes the exhaustion).
    pub fn charge_fuel(&mut self) -> bool {
        if self.spent_fuel >= self.budget.max_fuel {
            self.note(ResourceKind::Fuel);
            return false;
        }
        self.spent_fuel += 1;
        true
    }

    /// Charges `n` successor-generation work units; `false` when the
    /// deadline has passed.
    pub fn charge_steps(&mut self, n: usize) -> bool {
        self.spent_steps = self.spent_steps.saturating_add(n);
        if self.spent_steps > self.budget.deadline_steps {
            self.note(ResourceKind::DeadlineSteps);
            return false;
        }
        true
    }

    /// May a state collection of the given size intern one more state?
    pub fn admit_state(&mut self, current_states: usize) -> bool {
        if current_states >= self.budget.max_states {
            self.note(ResourceKind::States);
            return false;
        }
        true
    }

    /// May an edge collection of the given size record one more edge?
    pub fn admit_transition(&mut self, current_edges: usize) -> bool {
        if current_edges >= self.budget.max_transitions {
            self.note(ResourceKind::Transitions);
            return false;
        }
        true
    }

    /// May a state with the given knowledge size be expanded?
    pub fn admit_knowledge(&mut self, knowledge_len: usize) -> bool {
        if knowledge_len > self.budget.max_knowledge {
            self.note(ResourceKind::Knowledge);
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_historical_state_cap() {
        let b = Budget::default();
        assert_eq!(b.max_states, 50_000);
        assert_eq!(b.max_transitions, usize::MAX);
    }

    #[test]
    fn builders_compose() {
        let b = Budget::unlimited().states(10).fuel(5).deadline(100);
        assert_eq!(b.max_states, 10);
        assert_eq!(b.max_fuel, 5);
        assert_eq!(b.deadline_steps, 100);
        assert!(Budget::unlimited().dominates(&b));
        assert!(!b.dominates(&Budget::unlimited()));
    }

    #[test]
    fn governor_notes_first_exhaustion_only() {
        let mut g = Governor::new(Budget::unlimited().fuel(1).deadline(1));
        assert!(g.charge_fuel());
        assert!(!g.charge_fuel());
        assert!(!g.charge_steps(5));
        assert_eq!(g.exhausted(), Some(ResourceKind::Fuel));
    }

    #[test]
    fn coverage_completeness() {
        let c = CoverageStats {
            states: 3,
            transitions: 4,
            expanded: 3,
            frontier: 0,
            steps: 9,
        };
        assert!(c.complete());
        assert!(!c.is_empty());
        let c = CoverageStats {
            frontier: 1,
            ..c
        };
        assert!(!c.complete());
    }

    #[test]
    fn budget_specs_parse_and_round_trip() {
        let b = Budget::parse_spec("states=10,fuel=20,steps=30").unwrap();
        assert_eq!(b.max_states, 10);
        assert_eq!(b.max_fuel, 20);
        assert_eq!(b.deadline_steps, 30);
        assert_eq!(Budget::parse_spec("").unwrap(), Budget::default());
        assert!(Budget::parse_spec("states=x").is_err());
        assert!(Budget::parse_spec("bogus=1").is_err());
        assert!(Budget::parse_spec("states").is_err());
        // The canonical spelling re-parses to the same budget.
        assert_eq!(Budget::parse_spec(&b.canonical_spec()).unwrap(), b);
    }

    #[test]
    fn resource_kinds_display() {
        let shown: Vec<String> = [
            ResourceKind::States,
            ResourceKind::Transitions,
            ResourceKind::Fuel,
            ResourceKind::Knowledge,
            ResourceKind::DeadlineSteps,
            ResourceKind::WallClock,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(
            shown,
            [
                "states",
                "transitions",
                "fuel",
                "knowledge",
                "deadline-steps",
                "wall-clock"
            ]
        );
    }
}
