//! Property-based tests of budget monotonicity: growing any [`Budget`]
//! dimension never flips a decided verdict — it can only turn
//! `Inconclusive` into a decision, and every decision agrees with the
//! unbounded truth.

use proptest::prelude::*;
use spi_syntax::{Name, Process, Term, Var};
use spi_verify::{trace_preorder_sound, Budget, ExploreOptions, Explorer, TraceVerdict};

fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("c")),
        Just(Name::new("d")),
        Just(Name::new("k")),
    ]
}

/// A small closed replication-free process: exploration terminates, so
/// the unlimited budget yields the ground-truth verdict.
fn arb_process(depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            arb_name().prop_map(|c| Process::output(
                Term::Name(c.clone()),
                Term::Name(c),
                Process::Nil
            )),
        ]
        .boxed();
    }
    prop_oneof![
        Just(Process::Nil),
        (arb_name(), arb_name(), arb_process(depth - 1))
            .prop_map(|(c, m, p)| Process::output(Term::Name(c), Term::Name(m), p)),
        (arb_name(), arb_process(depth - 1)).prop_map(|(c, p)| Process::input(
            Term::Name(c),
            Var::new("x"),
            p
        )),
        (arb_name(), arb_process(depth - 1)).prop_map(|(n, p)| Process::restrict(n, p)),
        (arb_process(depth - 1), arb_process(depth - 1)).prop_map(|(l, r)| Process::par(l, r)),
    ]
    .boxed()
}

fn arb_budget() -> impl Strategy<Value = Budget> {
    (1usize..24, 1usize..48, 1usize..32, 1usize..6, 1usize..96).prop_map(
        |(states, transitions, fuel, knowledge, steps)| {
            Budget::unlimited()
                .states(states)
                .transitions(transitions)
                .fuel(fuel)
                .knowledge(knowledge)
                .deadline(steps)
        },
    )
}

/// Per-dimension growth: each delta may leave the dimension alone or
/// grow it, including all five at once (composition of single growths).
fn arb_growth() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
    (0usize..64, 0usize..64, 0usize..64, 0usize..8, 0usize..256)
}

fn grow(b: Budget, d: (usize, usize, usize, usize, usize)) -> Budget {
    let mut g = b;
    g.max_states = b.max_states.saturating_add(d.0);
    g.max_transitions = b.max_transitions.saturating_add(d.1);
    g.max_fuel = b.max_fuel.saturating_add(d.2);
    g.max_knowledge = b.max_knowledge.saturating_add(d.3);
    g.deadline_steps = b.deadline_steps.saturating_add(d.4);
    g
}

/// `Some(true)` = holds, `Some(false)` = fails, `None` = inconclusive.
fn decide(implementation: &Process, specification: &Process, budget: Budget) -> Option<bool> {
    let opts = ExploreOptions {
        budget,
        unfold_bound: 1,
        ..ExploreOptions::default()
    };
    let li = Explorer::new(opts.clone()).explore(implementation).ok()?;
    let ls = Explorer::new(opts).explore(specification).ok()?;
    match trace_preorder_sound(&li, &ls, 3) {
        TraceVerdict::Holds { .. } => Some(true),
        TraceVerdict::Fails { .. } => Some(false),
        TraceVerdict::Inconclusive { .. } => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Growing any combination of budget dimensions never flips a
    /// decided verdict; it can only decide an inconclusive one.
    #[test]
    fn growing_the_budget_never_flips_a_decision(
        p in arb_process(2),
        q in arb_process(2),
        small in arb_budget(),
        delta in arb_growth(),
    ) {
        let big = grow(small, delta);
        prop_assert!(big.dominates(&small), "growth dominates: {big:?} vs {small:?}");
        let before = decide(&p, &q, small);
        let after = decide(&p, &q, big);
        if let Some(decided) = before {
            prop_assert_eq!(
                after,
                Some(decided),
                "a decided verdict survives any budget growth"
            );
        }
    }

    /// Every decided verdict under a finite budget agrees with the
    /// ground truth computed without any budget at all.
    #[test]
    fn decisions_agree_with_the_unbounded_truth(
        p in arb_process(2),
        q in arb_process(2),
        small in arb_budget(),
    ) {
        let truth = decide(&p, &q, Budget::unlimited());
        prop_assert!(truth.is_some(), "unbounded exploration always decides");
        if let Some(decided) = decide(&p, &q, small) {
            prop_assert_eq!(Some(decided), truth);
        }
    }
}
