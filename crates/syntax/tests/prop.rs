//! Property-based tests for the syntax crate: printer/parser round-trip,
//! substitution laws and alpha-equivalence.

use proptest::prelude::*;
use spi_addr::{Branch, Path, RelAddr};
use spi_syntax::{parse, AddrSide, ChanIndex, Channel, LocVar, Name, Process, Term, Var};

/// Name pool, disjoint from variables and keywords.
fn arb_name() -> impl Strategy<Value = Name> {
    prop_oneof![
        Just(Name::new("a")),
        Just(Name::new("b")),
        Just(Name::new("c")),
        Just(Name::new("k")),
        Just(Name::new("m")),
        Just(Name::new("n")),
    ]
}

fn arb_locvar() -> impl Strategy<Value = LocVar> {
    prop_oneof![Just(LocVar::new("lam")), Just(LocVar::new("mu"))]
}

fn arb_branch() -> impl Strategy<Value = Branch> {
    prop_oneof![Just(Branch::Left), Just(Branch::Right)]
}

fn arb_addr() -> impl Strategy<Value = RelAddr> {
    (
        prop::collection::vec(arb_branch(), 0..4),
        prop::collection::vec(arb_branch(), 0..4),
    )
        .prop_map(|(a, b)| {
            // Derive a valid (minimal) address from two absolute paths.
            RelAddr::between(&Path::new(a), &Path::new(b))
        })
}

/// A leaf term: a name, or a variable from `bound` when available.
fn arb_atom(bound: &[Var]) -> BoxedStrategy<Term> {
    if bound.is_empty() {
        arb_name().prop_map(Term::Name).boxed()
    } else {
        prop_oneof![
            arb_name().prop_map(Term::Name),
            proptest::sample::select(bound.to_vec()).prop_map(Term::Var),
        ]
        .boxed()
    }
}

/// A term whose variables are drawn from `bound` (empty ⇒ closed term).
fn arb_term(bound: Vec<Var>) -> impl Strategy<Value = Term> {
    let leaf = arb_atom(&bound);
    leaf.prop_recursive(3, 24, 3, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::pair(a, b)),
            (prop::collection::vec(inner.clone(), 1..3), inner.clone())
                .prop_map(|(body, key)| Term::enc(body, key)),
            (arb_addr(), inner).prop_map(|(l, t)| Term::located(l, t)),
        ]
    })
}

fn arb_chan(bound: Vec<Var>) -> impl Strategy<Value = Channel> {
    let subject = arb_atom(&bound);
    let index = prop_oneof![
        Just(ChanIndex::Plain),
        Just(ChanIndex::Plain),
        arb_addr().prop_map(ChanIndex::At),
        arb_locvar().prop_map(ChanIndex::Loc),
    ];
    (subject, index).prop_map(|(subject, index)| Channel { subject, index })
}

/// A well-scoped process: every variable occurrence is under its binder,
/// and the variable pool (`x0`, `x1`, …) is disjoint from the name pool,
/// so the printed form re-parses to the identical AST.
fn arb_process(bound: Vec<Var>, depth: u32) -> BoxedStrategy<Process> {
    if depth == 0 {
        return prop_oneof![
            Just(Process::Nil),
            (arb_chan(bound.clone()), arb_term(bound)).prop_map(|(c, t)| Process::Output(
                c,
                t,
                Box::new(Process::Nil)
            )),
        ]
        .boxed();
    }
    let fresh = Var::new(format!("x{}", bound.len()));
    let with_fresh = {
        let mut b = bound.clone();
        b.push(fresh.clone());
        b
    };
    prop_oneof![
        Just(Process::Nil),
        (
            arb_chan(bound.clone()),
            arb_term(bound.clone()),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(c, t, p)| Process::Output(c, t, Box::new(p))),
        (
            arb_chan(bound.clone()),
            arb_process(with_fresh.clone(), depth - 1)
        )
            .prop_map({
                let fresh = fresh.clone();
                move |(c, p)| Process::Input(c, fresh.clone(), Box::new(p))
            }),
        (arb_name(), arb_process(bound.clone(), depth - 1))
            .prop_map(|(n, p)| Process::Restrict(n, Box::new(p))),
        (
            arb_process(bound.clone(), depth - 1),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(l, r)| Process::par(l, r)),
        (
            arb_term(bound.clone()),
            arb_term(bound.clone()),
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(a, b, p)| Process::Match(a, b, Box::new(p))),
        (
            arb_term(bound.clone()),
            prop_oneof![
                arb_term(bound.clone()).prop_map(|t| AddrSide::Term(Box::new(t))),
                arb_addr().prop_map(AddrSide::Lit),
            ],
            arb_process(bound.clone(), depth - 1)
        )
            .prop_map(|(a, s, p)| Process::AddrMatch(a, s, Box::new(p))),
        arb_process(bound.clone(), depth - 1).prop_map(Process::bang),
        {
            let fresh2 = Var::new(format!("x{}", bound.len() + 1));
            let mut with_two = with_fresh.clone();
            with_two.push(fresh2.clone());
            (arb_term(bound.clone()), arb_process(with_two, depth - 1)).prop_map({
                let fresh = fresh.clone();
                move |(pair, p)| Process::Split {
                    pair,
                    fst: fresh.clone(),
                    snd: fresh2.clone(),
                    body: Box::new(p),
                }
            })
        },
        (
            arb_term(bound.clone()),
            arb_term(bound),
            arb_process(with_fresh, depth - 1)
        )
            .prop_map(move |(scrutinee, key, p)| Process::Case {
                scrutinee,
                binders: vec![fresh.clone()],
                key,
                body: Box::new(p),
            }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_round_trip(p in arb_process(Vec::new(), 3)) {
        let printed = p.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form failed to parse: {printed:?}: {e}"));
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn printed_size_is_linear(p in arb_process(Vec::new(), 3)) {
        // A sanity bound: printing never explodes (no quadratic escaping).
        let printed = p.to_string();
        prop_assert!(printed.len() <= 96 * p.size().max(1) + 64);
    }

    #[test]
    fn alpha_eq_is_reflexive(p in arb_process(Vec::new(), 3)) {
        prop_assert!(p.alpha_eq(&p));
    }

    #[test]
    fn subst_of_fresh_var_is_identity(p in arb_process(Vec::new(), 3), t in arb_term(Vec::new())) {
        // No free occurrence of `zz` exists, so substitution is a no-op up
        // to alpha-equivalence (binders may be renamed defensively).
        let q = p.subst_var(&Var::new("zz"), &t);
        prop_assert!(q.alpha_eq(&p));
    }

    #[test]
    fn subst_then_free_vars_shrink(
        p in arb_process(vec![Var::new("x0")], 3),
        t in arb_term(Vec::new()),
    ) {
        // Substituting a closed term for x0 removes it from the free
        // variables.
        let q = p.subst_var(&Var::new("x0"), &t);
        prop_assert!(!q.free_vars().contains(&Var::new("x0")));
    }

    #[test]
    fn rename_free_name_preserves_alpha_class_of_closed(
        p in arb_process(Vec::new(), 3),
    ) {
        // Renaming a name to itself is the identity.
        let n = Name::new("a");
        prop_assert_eq!(p.rename_free_name(&n, &n), p);
    }

    #[test]
    fn closedness_detects_generated_scoping(p in arb_process(Vec::new(), 3)) {
        prop_assert!(p.is_closed(), "generator only builds well-scoped processes");
    }

    #[test]
    fn term_display_round_trips(t in arb_term(Vec::new())) {
        let printed = t.to_string();
        let reparsed = spi_syntax::parse_term(&printed)
            .unwrap_or_else(|e| panic!("printed term failed to parse: {printed:?}: {e}"));
        prop_assert_eq!(reparsed, t);
    }
}
