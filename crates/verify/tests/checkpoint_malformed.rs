//! Malformed-checkpoint handling: resuming a campaign from a damaged
//! file must fail loudly with a reason that names the damage — never
//! silently restart or half-resume.

use std::path::{Path, PathBuf};

use spi_syntax::parse;
use spi_verify::{run_campaign, CampaignOptions, CampaignReport, VerifyError};

fn system() -> spi_syntax::Process {
    parse("(^c)(c<m> | c(x))").expect("parses")
}

fn opts(path: &Path) -> CampaignOptions {
    let mut opts = CampaignOptions::new(["c"], 1);
    opts.checkpoint_path = Some(path.to_path_buf());
    opts
}

/// Runs the campaign once to produce a well-formed checkpoint file.
fn write_valid_checkpoint(path: &Path) -> CampaignReport {
    let p = system();
    run_campaign(&p, &p, &opts(path)).expect("baseline campaign runs")
}

fn resume(path: &Path) -> Result<CampaignReport, VerifyError> {
    let p = system();
    let mut o = opts(path);
    o.resume = true;
    run_campaign(&p, &p, &o)
}

/// Resuming must fail with a checkpoint error whose reason mentions
/// every given needle.
fn assert_checkpoint_error(path: &Path, needles: &[&str]) {
    match resume(path) {
        Err(VerifyError::Checkpoint { reason }) => {
            for needle in needles {
                assert!(
                    reason.contains(needle),
                    "reason {reason:?} should mention {needle:?}"
                );
            }
        }
        Err(other) => panic!("expected a checkpoint error, got {other}"),
        Ok(_) => panic!("resume from a damaged checkpoint must not succeed"),
    }
    let _ = std::fs::remove_file(path);
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spi-ckpt-malformed-{name}.json"))
}

#[test]
fn truncated_json_is_rejected_with_position() {
    let path = temp("truncated");
    write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
    assert_checkpoint_error(&path, &[path.to_str().expect("utf-8 path")]);
}

#[test]
fn empty_file_is_rejected() {
    let path = temp("empty");
    std::fs::write(&path, "").expect("write");
    assert_checkpoint_error(&path, &[]);
}

#[test]
fn identity_digest_mismatch_names_both_digests() {
    let path = temp("identity");
    let report = write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    assert!(text.contains(&report.identity), "digest is in the file");
    let forged = text.replace(&report.identity, "fnv:0000000000000000");
    std::fs::write(&path, forged).expect("forge");
    assert_checkpoint_error(
        &path,
        &[
            "different campaign",
            "fnv:0000000000000000",
            &report.identity,
        ],
    );
}

#[test]
fn changed_campaign_inputs_also_fail_the_digest() {
    let path = temp("inputs");
    write_valid_checkpoint(&path);
    // Same file, but the resuming campaign has a different depth, so its
    // identity digest differs from the recorded one.
    let p = system();
    let mut o = opts(&path);
    o.depth = 2;
    o.resume = true;
    match run_campaign(&p, &p, &o) {
        Err(VerifyError::Checkpoint { reason }) => {
            assert!(reason.contains("different campaign"), "got {reason:?}");
        }
        other => panic!("expected a checkpoint error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unsupported_version_is_rejected() {
    let path = temp("version");
    write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    std::fs::write(&path, text.replace("\"version\": 1", "\"version\": 99")).expect("write");
    assert_checkpoint_error(&path, &["version", "99"]);
}

#[test]
fn unknown_outcome_field_is_rejected_by_name() {
    let path = temp("outcome");
    write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    std::fs::write(&path, text.replace("\"survives\"", "\"exploded\"")).expect("write");
    assert_checkpoint_error(&path, &["unknown outcome", "exploded"]);
}

#[test]
fn entry_missing_its_schedule_key_is_rejected() {
    let path = temp("nokey");
    write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    std::fs::write(&path, text.replace("\"schedule\"", "\"sched\"")).expect("write");
    assert_checkpoint_error(&path, &["schedule key"]);
}

#[test]
fn unknown_extra_fields_are_tolerated() {
    // Forward compatibility: a checkpoint written by a *newer* build may
    // carry extra fields; the loader reads what it knows and resumes.
    let path = temp("extra");
    let full = write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    let extended = text.replace(
        "\"version\": 1,",
        "\"version\": 1,\n  \"written_by\": \"future\",",
    );
    assert_ne!(text, extended, "the marker field was inserted");
    std::fs::write(&path, extended).expect("write");
    let resumed = resume(&path).expect("extra fields are not an error");
    assert_eq!(resumed.resumed, full.enumerated, "everything replays");
    assert_eq!(resumed.tally(), full.tally());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zero_schedule_checkpoint_resumes_as_a_clean_start() {
    let path = temp("zero");
    let full = write_valid_checkpoint(&path);
    let identity = &full.identity;
    std::fs::write(
        &path,
        format!(
            "{{\n  \"version\": 1,\n  \"identity\": \"{identity}\",\n  \"processed\": []\n}}"
        ),
    )
    .expect("write");
    let resumed = resume(&path).expect("an empty processed list is valid");
    assert_eq!(resumed.resumed, 0, "nothing to replay");
    assert_eq!(resumed.fresh, full.enumerated, "everything re-decided");
    assert_eq!(resumed.tally(), full.tally(), "same verdicts as the original");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_with_resume_is_a_clean_start() {
    let path = temp("missing");
    let _ = std::fs::remove_file(&path);
    let resumed = resume(&path).expect("a missing checkpoint is a clean start");
    assert_eq!(resumed.resumed, 0);
    assert!(resumed.fresh > 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_schedule_key_is_rejected() {
    let path = temp("badkey");
    write_valid_checkpoint(&path);
    let text = std::fs::read_to_string(&path).expect("checkpoint exists");
    // Damage the first recorded schedule key: drop its @position suffix.
    let damaged = text.replacen("drop:c:1@1", "drop:c:1", 1);
    assert_ne!(text, damaged, "a drop schedule is in the checkpoint");
    std::fs::write(&path, damaged).expect("write");
    assert_checkpoint_error(&path, &["@position"]);
}
