//! Beyond the paper: the reflection attack it flags as future work, found
//! mechanically, and its classic repair verified.
//!
//! ```sh
//! cargo run --release --example reflection_attack
//! ```
//!
//! The paper closes Section 5.2 with: *"If A and B could play both the two
//! roles in parallel sessions, then the protocol above would suffer of a
//! well-known reflection attack."*  Here both parties run both roles of
//! `Pm3` under one shared key; the verifier finds the reflection, and the
//! identity-tagged variant passes.

use spi_auth::protocols::reflection;
use spi_auth::{Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let verifier = Verifier::new(["c"])
        .sessions(1)
        .roles([
            ("A.resp", "00"),
            ("A.chal", "01"),
            ("B.resp", "10"),
            ("B.chal", "11"),
        ])
        .max_states(400_000);

    let spec = reflection::bidirectional_abstract("c", "oa", "ob")?;
    println!("abstract spec = {spec}\n");

    let vulnerable = reflection::bidirectional_challenge_response("c", "oa", "ob");
    println!("vulnerable    = {vulnerable}\n");
    match verifier.check(&vulnerable, &spec)?.verdict {
        Verdict::Attack(attack) => {
            println!("REFLECTION FOUND — a party authenticates its own message as the peer's:");
            for line in &attack.narration {
                println!("   {line}");
            }
            println!("   distinguishing trace: {:?}\n", attack.trace);
        }
        other => println!("unexpected: no reflection? ({other:?})\n"),
    }

    let fixed = reflection::bidirectional_tagged("c", "oa", "ob");
    println!("repaired      = {fixed}\n");
    let report = verifier.check(&fixed, &spec)?;
    match report.verdict {
        Verdict::SecurelyImplements => println!(
            "identity tags repair the protocol ({} states checked)",
            report.concrete_stats.states
        ),
        Verdict::Attack(a) => {
            println!("unexpected attack on the repaired protocol:");
            for line in &a.narration {
                println!("   {line}");
            }
        }
        other => println!("unexpected verdict on the repaired protocol: {other:?}"),
    }
    Ok(())
}
