//! Observations: what a tester can see of a protocol run.
//!
//! Definition 4 restricts the protocol channels, so the only visible
//! events are the I/O of *continuations* on free channels.  Testers can
//! compare received values (matching) and their origins (address
//! matching), so an observation records the full structure of the
//! message, the identity of every name (up to renaming of fresh ones) and
//! the creator position of every name and composite.

use std::collections::HashMap;
use std::fmt::Write as _;

use spi_addr::Path;
use spi_semantics::{NameTable, RtTerm};
use spi_syntax::Name;

/// A message as a tester observes it.
///
/// Fresh (restricted) names are recorded by a run-local `nonce` — their
/// raw machine identity, used to link multiple occurrences within one
/// trace — plus their creator position, which is what the paper's address
/// matching exposes.  Free names keep their spelling.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObsTerm {
    /// A free name, observed by spelling.
    Free(Name),
    /// A machine-created name: linkable within a run, located at its
    /// creator.
    Fresh {
        /// Run-local identity (the raw name id).
        nonce: u32,
        /// Where the restriction executed.
        creator: Path,
    },
    /// A pair with its creator stamp.
    Pair(Box<ObsTerm>, Box<ObsTerm>, Option<Path>),
    /// A ciphertext with its creator stamp.
    Enc(Vec<ObsTerm>, Box<ObsTerm>, Option<Path>),
}

impl ObsTerm {
    /// Converts a run-time message into its observed form.
    ///
    /// # Panics
    ///
    /// Panics when `t` is not a message (contains variables, unexecuted
    /// ν-names or located literals) — explorers only observe messages.
    #[must_use]
    pub fn from_rt(t: &RtTerm, names: &NameTable) -> ObsTerm {
        match t {
            RtTerm::Id(id) => {
                let e = names.entry(*id);
                if e.restricted {
                    ObsTerm::Fresh {
                        nonce: id.index() as u32,
                        creator: e.creator.clone().expect("restricted names have creators"),
                    }
                } else {
                    ObsTerm::Free(e.base.clone())
                }
            }
            RtTerm::Pair { fst, snd, creator } => ObsTerm::Pair(
                Box::new(ObsTerm::from_rt(fst, names)),
                Box::new(ObsTerm::from_rt(snd, names)),
                creator.clone(),
            ),
            RtTerm::Enc { body, key, creator } => ObsTerm::Enc(
                body.iter().map(|x| ObsTerm::from_rt(x, names)).collect(),
                Box::new(ObsTerm::from_rt(key, names)),
                creator.clone(),
            ),
            RtTerm::Var(_) | RtTerm::Sym(_) | RtTerm::LocatedLit { .. } => {
                panic!("observed term is not a message")
            }
        }
    }
}

/// A visible event: an output of `payload` on the free channel `chan`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObsEvent {
    /// The free channel.
    pub chan: Name,
    /// The observed message.
    pub payload: ObsTerm,
}

/// Renames run-local nonces to per-trace indices, so traces of different
/// runs (and different systems) compare by *pattern*: which observations
/// carry the same fresh name, and where each piece was created.
///
/// # Example
///
/// ```
/// use spi_verify::{ObsEvent, ObsTerm, TraceRenamer};
/// use spi_syntax::Name;
///
/// let ev = |nonce| ObsEvent {
///     chan: Name::new("observe"),
///     payload: ObsTerm::Fresh { nonce, creator: "00".parse().unwrap() },
/// };
/// let mut left = TraceRenamer::new();
/// let mut right = TraceRenamer::new();
/// // Different raw ids, same pattern: canonical forms agree.
/// assert_eq!(left.canon(&ev(5)), right.canon(&ev(9)));
/// // Repetition is preserved: the second occurrence links to the first.
/// assert_eq!(left.canon(&ev(5)), right.canon(&ev(9)));
/// assert_ne!(left.canon(&ev(6)), right.canon(&ev(9)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRenamer {
    map: HashMap<u32, usize>,
}

impl TraceRenamer {
    /// A fresh renamer (one per trace).
    #[must_use]
    pub fn new() -> TraceRenamer {
        TraceRenamer::default()
    }

    /// Canonicalizes one event, assigning trace-local indices to fresh
    /// names on first occurrence.
    pub fn canon(&mut self, ev: &ObsEvent) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}!", ev.chan);
        self.canon_term(&ev.payload, &mut out);
        out
    }

    fn canon_term(&mut self, t: &ObsTerm, out: &mut String) {
        match t {
            ObsTerm::Free(n) => {
                let _ = write!(out, "f:{n}");
            }
            ObsTerm::Fresh { nonce, creator } => {
                let next = self.map.len();
                let idx = *self.map.entry(*nonce).or_insert(next);
                let _ = write!(out, "n{idx}@{}", creator.to_bits());
            }
            ObsTerm::Pair(a, b, creator) => {
                out.push('(');
                self.canon_term(a, out);
                out.push(',');
                self.canon_term(b, out);
                out.push(')');
                write_creator(creator, out);
            }
            ObsTerm::Enc(body, key, creator) => {
                out.push('{');
                for (i, x) in body.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.canon_term(x, out);
                }
                out.push('}');
                self.canon_term(key, out);
                write_creator(creator, out);
            }
        }
    }
}

fn write_creator(creator: &Option<Path>, out: &mut String) {
    match creator {
        Some(p) => {
            let _ = write!(out, "#{}", p.to_bits());
        }
        None => out.push_str("#-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_semantics::NameTable;

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn from_rt_classifies_names() {
        let mut names = NameTable::new();
        let c = names.intern_free(&Name::new("c"));
        let m = names.alloc_restricted(&Name::new("m"), p("00"));
        assert_eq!(
            ObsTerm::from_rt(&RtTerm::Id(c), &names),
            ObsTerm::Free(Name::new("c"))
        );
        assert_eq!(
            ObsTerm::from_rt(&RtTerm::Id(m), &names),
            ObsTerm::Fresh {
                nonce: m.index() as u32,
                creator: p("00")
            }
        );
    }

    #[test]
    fn from_rt_keeps_composite_stamps() {
        let mut names = NameTable::new();
        let m = names.alloc_restricted(&Name::new("m"), p("00"));
        let t = RtTerm::Enc {
            body: vec![RtTerm::Id(m)],
            key: Box::new(RtTerm::Id(m)),
            creator: Some(p("00")),
        };
        match ObsTerm::from_rt(&t, &names) {
            ObsTerm::Enc(_, _, creator) => assert_eq!(creator, Some(p("00"))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn renaming_links_repetitions() {
        let ev = |nonce| ObsEvent {
            chan: Name::new("o"),
            payload: ObsTerm::Fresh {
                nonce,
                creator: p("00"),
            },
        };
        let mut r = TraceRenamer::new();
        let first = r.canon(&ev(7));
        let again = r.canon(&ev(7));
        let other = r.canon(&ev(8));
        assert_eq!(first, again, "same name, same canonical form");
        assert_ne!(first, other, "different fresh names stay distinct");
    }

    #[test]
    fn creator_positions_distinguish_origins() {
        let mut r = TraceRenamer::new();
        let at = |creator: &str| ObsEvent {
            chan: Name::new("o"),
            payload: ObsTerm::Fresh {
                nonce: 1,
                creator: p(creator),
            },
        };
        let mut r2 = TraceRenamer::new();
        // Same linking pattern, different creators: distinguishable — this
        // is what the tester's address matching observes.
        assert_ne!(r.canon(&at("00")), r2.canon(&at("10")));
    }

    #[test]
    fn free_names_compare_by_spelling() {
        let mut r = TraceRenamer::new();
        let ev = |n: &str| ObsEvent {
            chan: Name::new("o"),
            payload: ObsTerm::Free(Name::new(n)),
        };
        let a = r.canon(&ev("a"));
        let b = r.canon(&ev("b"));
        assert_ne!(a, b);
    }
}
