//! Golden-file tests for `--format json`.
//!
//! The CLI's JSON output is the daemon's response-body encoding
//! (`spi_auth::server::{verify_body, campaign_body}`); these tests pin
//! the exact rendered shape so accidental schema drift fails loudly.
//! Regenerate the goldens with `BLESS=1 cargo test -p spi-auth --test
//! json_golden` after an intentional change.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn run_spi(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_spi"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("spi runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.code().unwrap_or(-1),
    )
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e} (regenerate with BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file (BLESS=1 regenerates)"
    );
}

#[test]
fn verify_json_output_matches_golden() {
    let (stdout, code) = run_spi(&[
        "verify",
        "examples/protocols/pm2.spi",
        "examples/protocols/pm.spi",
        "--sessions",
        "2",
        "--workers",
        "1",
        "--format",
        "json",
    ]);
    assert_eq!(code, 1, "pm2 against pm is the paper's replay attack");
    check_golden("verify_pm2.json", &stdout);
}

#[test]
fn campaign_json_output_matches_golden() {
    let dir = std::env::temp_dir().join(format!("spi-json-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spec = dir.join("p.spi");
    std::fs::write(&spec, "(^m)c<m>|c(x).observe<x>").expect("write spec");
    let spec = spec.to_str().expect("utf-8 path");
    let (stdout, code) = run_spi(&[
        "campaign",
        spec,
        spec,
        "--sessions",
        "1",
        "--workers",
        "1",
        "--faults-depth",
        "1",
        "--format",
        "json",
    ]);
    assert_eq!(code, 0, "the tiny protocol survives every depth-1 schedule");
    check_golden("campaign_tiny.json", &stdout);
}
