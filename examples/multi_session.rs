//! Section 5.2 of the paper: multiple sessions, the replay attack on the
//! naively replicated protocol, and the challenge-response repair.
//!
//! ```sh
//! cargo run --example multi_session          # 2 sessions (the paper's case)
//! cargo run --example multi_session -- 3     # more sessions
//! ```

use spi_auth::protocols::multi;
use spi_auth::{propositions, Verdict, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sessions: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(2);

    let pm = multi::abstract_protocol("c", "observe")?;
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    println!("Pm  (abstract)           = {pm}");
    println!("Pm2 (naive replication)  = {pm2}");
    println!("Pm3 (challenge-response) = {pm3}\n");

    // ---- Proposition 3: sessions pair off, freshness by construction --
    let audit = propositions::proposition_3(sessions)?;
    println!(
        "Proposition 3 ({sessions} sessions): {} observations, all from A instances: {}, \
         replay possible: {}  [{} states]\n",
        audit.observations, audit.all_from_a, audit.replay_found, audit.stats.states
    );

    // ---- The replay attack on Pm2 --------------------------------------
    match propositions::counterexample_pm2(sessions)? {
        Some(attack) => {
            println!("Pm2 ⋢ Pm — the verifier reconstructs the paper's replay:");
            for line in &attack.narration {
                println!("   {line}");
            }
            println!(
                "   distinguishing trace (same located message accepted twice): {:?}\n",
                attack.trace
            );
        }
        None => println!("unexpected: no replay found on Pm2!\n"),
    }

    // ---- Proposition 4: the nonce challenge repairs it ------------------
    let report = propositions::proposition_4(sessions)?;
    match &report.verdict {
        Verdict::SecurelyImplements => {
            println!("Proposition 4: Pm3 {}", propositions::verdict_line(&report))
        }
        Verdict::Attack(a) => {
            println!("unexpected attack on Pm3:");
            for line in &a.narration {
                println!("   {line}");
            }
        }
        other => println!("unexpected verdict on Pm3: {other:?}"),
    }

    // For contrast: Pm3 also beats Pm2's check budget-for-budget.
    let verifier = Verifier::new(["c"]).sessions(sessions);
    let naive = verifier.check(&pm2, &pm)?;
    let fixed = verifier.check(&pm3, &pm)?;
    println!(
        "\nstate spaces under attack: Pm2 {} states, Pm3 {} states, Pm {} states",
        naive.concrete_stats.states, fixed.concrete_stats.states, fixed.abstract_stats.states
    );
    Ok(())
}
