//! Differential conformance harness for the spi-calculus toolkit.
//!
//! The workspace maintains several pairs of mechanisms that must agree:
//! an exact printer against the parser, a parallel exploration frontier
//! against the sequential engine, 128-bit hashed state keys against full
//! canonical strings, copy-on-write stepping against deep-clone stepping,
//! and checkpoint/resume against uninterrupted campaigns.  This crate
//! stress-tests those seams:
//!
//! 1. [`gen`] draws arbitrary well-formed protocol specifications from
//!    the full source grammar, sized by [`gen::GenSize`] and fully
//!    determined by a `(seed, index)` pair;
//! 2. [`oracle`] runs each specification through the pluggable
//!    [`oracle::Oracle`] suite, where any engine-vs-engine disagreement
//!    is a failure;
//! 3. [`shrink`] ddmin-reduces each failure to a 1-minimal process;
//! 4. [`corpus`] writes the minimal case as a standalone `.spi`
//!    reproducer which the test suite replays forever after.
//!
//! The `spi conformance` subcommand (in `spi-auth`) is the CLI front
//! end; [`runner::run_conformance`] is the library entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod shrink;

pub use gen::{generate, GenSize, TestCase};
pub use oracle::{
    builtin_names, builtin_oracles, check_process, oracle_by_name, Injection, Oracle, OracleEnv,
    Verdict,
};
pub use runner::{exit_code, run_conformance, ConformanceOptions, ConformanceReport, Failure};
pub use shrink::{shrink_failure, Shrunk};
