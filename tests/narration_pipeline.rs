//! Integration of the narration compiler with the verifier: the paper's
//! methodology on narrations, including a three-role classic.

use spi_auth_repro::auth::{Verdict, Verifier};
use spi_auth_repro::protocols::compile::{compile_abstract, compile_concrete, CompileOptions};
use spi_auth_repro::protocols::extra;
use spi_auth_repro::protocols::narration::Narration;

fn single() -> CompileOptions {
    CompileOptions::default()
}

fn multi() -> CompileOptions {
    CompileOptions {
        replicate: true,
        ..CompileOptions::default()
    }
}

#[test]
fn compiled_challenge_response_verifies_end_to_end() {
    let n = Narration::parse(
        "protocol cr\nroles A, B\nshare A B : kab\nfresh A : m\nfresh B : nb\n\
         1. B -> A : nb\n2. A -> B : {m, nb}kab\nclaim B authenticates m from A\n",
    )
    .unwrap();
    let concrete = compile_concrete(&n, &multi()).unwrap();
    let spec = compile_abstract(&n, &multi()).unwrap();
    let verifier = Verifier::new(["c"]).sessions(2);
    assert!(matches!(
        verifier.check(&concrete, &spec).unwrap().verdict,
        Verdict::SecurelyImplements
    ));
}

#[test]
fn compiled_naive_protocol_is_caught() {
    let n = Narration::parse(
        "protocol naive\nroles A, B\nshare A B : kab\nfresh A : m\n\
         1. A -> B : {m}kab\nclaim B authenticates m from A\n",
    )
    .unwrap();
    let concrete = compile_concrete(&n, &multi()).unwrap();
    let spec = compile_abstract(&n, &multi()).unwrap();
    let verifier = Verifier::new(["c"]).sessions(2);
    match verifier.check(&concrete, &spec).unwrap().verdict {
        Verdict::Attack(a) => assert_eq!(a.trace[0], a.trace[1], "a replay"),
        other => panic!("the naive narration must be replayable, got {other:?}"),
    }
}

#[test]
fn single_session_naive_narration_is_fine() {
    let n = Narration::parse(
        "protocol naive\nroles A, B\nshare A B : kab\nfresh A : m\n\
         1. A -> B : {m}kab\nclaim B authenticates m from A\n",
    )
    .unwrap();
    let concrete = compile_concrete(&n, &single()).unwrap();
    let spec = compile_abstract(&n, &single()).unwrap();
    let verifier = Verifier::new(["c"]);
    assert!(matches!(
        verifier.check(&concrete, &spec).unwrap().verdict,
        Verdict::SecurelyImplements
    ));
}

#[test]
fn plaintext_narration_is_caught_even_in_one_session() {
    let n = Narration::parse(
        "protocol plain\nroles A, B\nfresh A : m\n\
         1. A -> B : m\nclaim B authenticates m from A\n",
    )
    .unwrap();
    let concrete = compile_concrete(&n, &single()).unwrap();
    let spec = compile_abstract(&n, &single()).unwrap();
    let verifier = Verifier::new(["c"]);
    assert!(matches!(
        verifier.check(&concrete, &spec).unwrap().verdict,
        Verdict::Attack(_)
    ));
}

#[test]
fn wide_mouthed_frog_runs_to_completion_honestly() {
    use spi_auth_repro::verify::{may_exhibit, ExploreOptions};
    let wmf = extra::wide_mouthed_frog(&single()).unwrap();
    let beta = spi_auth_repro::semantics::Barb {
        chan: spi_auth_repro::syntax::Name::new("observe"),
        output: true,
    };
    // Without an attacker the three roles drive the session to B's claim.
    let witness = may_exhibit(&wmf, &beta, &ExploreOptions::default()).unwrap();
    assert!(witness.is_some(), "honest WMF completes");
}

#[test]
fn wide_mouthed_frog_explores_under_attack() {
    let wmf = extra::wide_mouthed_frog(&single()).unwrap();
    let verifier = Verifier::new(["c"])
        .roles([("A", "00"), ("B", "01"), ("S", "1")])
        .sessions(1);
    let lts = verifier.explore(&wmf).unwrap();
    assert!(lts.stats.states > 10);
    // The session key and payload never leak to the intruder: check that
    // no reachable state has m in the analyzed knowledge.
    for state in &lts.states {
        for t in state.knowledge.iter() {
            if let spi_auth_repro::semantics::RtTerm::Id(id) = t {
                let e = state.config.names().entry(*id);
                assert_ne!(
                    (e.base.as_str(), e.restricted),
                    ("m", true),
                    "the payload must stay secret"
                );
                assert_ne!(
                    (e.base.as_str(), e.restricted),
                    ("kab", true),
                    "the session key must stay secret"
                );
            }
        }
    }
}

#[test]
fn mutual_exchange_completes_honestly() {
    use spi_auth_repro::verify::{may_exhibit, ExploreOptions};
    let p = extra::mutual_exchange(&single()).unwrap();
    let beta = spi_auth_repro::semantics::Barb {
        chan: spi_auth_repro::syntax::Name::new("observe"),
        output: true,
    };
    assert!(may_exhibit(&p, &beta, &ExploreOptions::default())
        .unwrap()
        .is_some());
}
