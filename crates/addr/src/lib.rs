//! Relative-address algebra for the proved spi calculus.
//!
//! This crate implements the address machinery of *"Authentication
//! Primitives for Protocol Specifications"* (Bodei, Degano, Focardi,
//! Priami, 2003), Section 3:
//!
//! * [`Branch`] — the tags `‖0` / `‖1` labelling the left/right arcs of the
//!   tree of sequential processes (Figure 1 of the paper);
//! * [`Path`] — a downward path in that tree, i.e. a string over
//!   `{‖0, ‖1}`;
//! * [`RelAddr`] — a *relative address* `ϑ₀ • ϑ₁` (Definition 1): the pair
//!   of paths from the minimal common ancestor of two sequential processes
//!   down to each of them, together with inversion, compatibility
//!   (Definition 2), resolution against absolute positions and the address
//!   *composition* used when a located datum is forwarded;
//! * [`ProcTree`] — the binary tree of sequential processes, whose leaves
//!   are the parallel components of a system and whose internal nodes are
//!   occurrences of the parallel operator.
//!
//! # Orientation convention
//!
//! The paper writes the address of `P3` relative to `P1` in Figure 1 as
//! `‖0‖1 • ‖1‖1‖0`: the first component is the path from the minimal common
//! ancestor down to the *observer* (`P1`, the process holding the address)
//! and the second component the path down to the *target* (`P3`, the
//! process being pointed at).  The prose of the paper occasionally flips
//! the two components; this crate uses the Figure 1 orientation everywhere
//! (observer first, target second) and derives every address from absolute
//! positions, so the orientation is consistent by construction.
//!
//! # Example
//!
//! Reconstructing Figure 1 of the paper, the tree of
//! `(P0 | P1) | (P2 | (P3 | P4))`:
//!
//! ```
//! use spi_addr::{Path, RelAddr};
//!
//! let p1: Path = "01".parse()?;    // ‖0‖1
//! let p3: Path = "110".parse()?;   // ‖1‖1‖0
//! let l = RelAddr::between(&p1, &p3);
//! assert_eq!(l.to_string(), "‖0‖1•‖1‖1‖0");
//! assert_eq!(l.inverse(), RelAddr::between(&p3, &p1));
//! # Ok::<(), spi_addr::AddrError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod error;
mod path;
mod rel;
mod tree;

pub use branch::Branch;
pub use error::AddrError;
pub use path::Path;
pub use rel::RelAddr;
pub use tree::{Leaves, ProcTree, TreeNode};
