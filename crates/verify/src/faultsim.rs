//! Fault-injection schedules for robustness sweeps.
//!
//! The fault model itself lives in `spi-semantics` ([`FaultSpec`]); this
//! module enumerates *schedules* — families of specs a verifier sweeps to
//! make claims like "the property survives every single network fault".
//! Schedules are deterministic and ordered, so sweeps are replayable.

use spi_semantics::{FaultKind, FaultSpec};
use spi_syntax::Name;

/// The pure duplication network: at most `max` duplicate deliveries on
/// `chan`, nothing else.  This is the weakest fault model that exhibits a
/// message replay — the counterexample of the paper's Section 4 needs no
/// hand-written intruder under it.
#[must_use]
pub fn duplicate_only(chan: impl Into<Name>, max: u32) -> FaultSpec {
    FaultSpec::single(FaultKind::Duplicate, chan, max)
}

/// Every single-fault schedule over `chans`: one spec per (kind, channel)
/// pair, each allowing that one fault to fire at most `max` times and no
/// other fault at all.  A property that stays verified under all of them
/// tolerates any single kind of network misbehaviour on any one channel.
#[must_use]
pub fn single_fault_schedules<I, N>(chans: I, max: u32) -> Vec<FaultSpec>
where
    I: IntoIterator<Item = N>,
    N: Into<Name>,
{
    let chans: Vec<Name> = chans.into_iter().map(Into::into).collect();
    let mut out = Vec::with_capacity(chans.len() * FaultKind::ALL.len());
    for chan in &chans {
        for kind in FaultKind::ALL {
            out.push(FaultSpec::single(kind, chan.clone(), max));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_cover_every_kind_once_per_channel() {
        let scheds = single_fault_schedules(["c", "d"], 1);
        assert_eq!(scheds.len(), 8);
        for s in &scheds {
            assert_eq!(s.clauses.len(), 1, "single-fault means one clause");
            assert_eq!(s.clauses[0].max, 1);
        }
        // Deterministic order: all kinds for c, then all kinds for d.
        assert_eq!(scheds[0].clauses[0].kind, FaultKind::Drop);
        assert_eq!(scheds[0].clauses[0].chan, Name::new("c"));
        assert_eq!(scheds[4].clauses[0].chan, Name::new("d"));
    }

    #[test]
    fn duplicate_only_is_a_single_duplicate_clause() {
        let s = duplicate_only("c", 2);
        assert_eq!(s.clauses.len(), 1);
        assert_eq!(s.clauses[0].kind, FaultKind::Duplicate);
        assert_eq!(s.clauses[0].max, 2);
    }
}
