//! Errors raised by the verification toolkit.

use std::error::Error;
use std::fmt;

use spi_semantics::MachineError;

/// An error raised while exploring or checking a system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The underlying abstract machine failed.
    Machine(MachineError),
    /// The state-space exploration exceeded its state budget.
    ///
    /// Since the resource governor landed, explorers no longer raise
    /// this: exhaustion degrades gracefully into a partial [`Lts`] with
    /// [`Lts::exhausted`] set, and checks answer *inconclusive*.  The
    /// variant is kept so downstream matches keep compiling.
    ///
    /// [`Lts`]: crate::Lts
    /// [`Lts::exhausted`]: crate::Lts::exhausted
    StateBudgetExceeded {
        /// The budget that was exceeded.
        max_states: usize,
    },
    /// A successor computation panicked.  Worker panics are caught at
    /// the expansion boundary so one poisoned state cannot abort a whole
    /// campaign; the payload travels with the error so the schedule that
    /// triggered it can be reported as *inconclusive* with a cause.
    WorkerPanic {
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// A campaign checkpoint file could not be read, parsed, or matched
    /// against the campaign being resumed.
    Checkpoint {
        /// What went wrong.
        reason: String,
    },
    /// The two decision procedures disagreed under `--engine both`.
    /// This can only mean a bug in one of the engines — the verdict
    /// cannot be trusted, so the run fails loudly instead of picking a
    /// side.
    EngineDisagreement {
        /// The trace engine's verdict, rendered.
        trace: String,
        /// The bisimulation engine's verdict, rendered.
        bisim: String,
        /// The minimal distinguishing trace claimed by whichever engine
        /// answered *Fails* (empty if neither did).
        witness: Vec<String>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Machine(e) => write!(f, "{e}"),
            VerifyError::StateBudgetExceeded { max_states } => {
                write!(f, "exploration exceeded the state budget of {max_states}")
            }
            VerifyError::WorkerPanic { payload } => {
                write!(f, "a successor computation panicked: {payload}")
            }
            VerifyError::Checkpoint { reason } => {
                write!(f, "campaign checkpoint error: {reason}")
            }
            VerifyError::EngineDisagreement {
                trace,
                bisim,
                witness,
            } => {
                write!(
                    f,
                    "decision procedures disagree: trace engine says {trace}, \
                     bisimulation engine says {bisim}; minimal witness: [{}]",
                    witness.join(", ")
                )
            }
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Machine(e) => Some(e),
            VerifyError::StateBudgetExceeded { .. }
            | VerifyError::WorkerPanic { .. }
            | VerifyError::Checkpoint { .. }
            | VerifyError::EngineDisagreement { .. } => None,
        }
    }
}

impl From<MachineError> for VerifyError {
    fn from(e: MachineError) -> VerifyError {
        VerifyError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VerifyError::StateBudgetExceeded { max_states: 10 };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());
        let e = VerifyError::Machine(MachineError::NotEnabled { reason: "x".into() });
        assert!(e.source().is_some());
    }
}
