//! Capture-avoiding substitution and alpha-equivalence.

use std::collections::BTreeSet;

use spi_addr::RelAddr;

use crate::{AddrSide, ChanIndex, Channel, LocVar, Name, Process, Term, Var};

/// Picks a variable not in `avoid`, derived from `base` by appending a
/// numeric suffix.
fn fresh_var(base: &Var, avoid: &BTreeSet<Var>) -> Var {
    if !avoid.contains(base) {
        return base.clone();
    }
    let mut i: u64 = 1;
    loop {
        let candidate = Var::new(format!("{}_{i}", base.as_str()));
        if !avoid.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

/// Picks a name not in `avoid`, derived from `base` by appending a numeric
/// suffix.
fn fresh_name(base: &Name, avoid: &BTreeSet<Name>) -> Name {
    if !avoid.contains(base) {
        return base.clone();
    }
    let mut i: u64 = 1;
    loop {
        let candidate = Name::new(format!("{}_{i}", base.as_str()));
        if !avoid.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

impl Term {
    /// Substitutes `replacement` for every occurrence of `var`.
    ///
    /// Terms have no binders, so no capture can occur.
    #[must_use]
    pub fn subst_var(&self, var: &Var, replacement: &Term) -> Term {
        match self {
            Term::Name(_) => self.clone(),
            Term::Var(v) => {
                if v == var {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Term::Pair(a, b) => {
                Term::pair(a.subst_var(var, replacement), b.subst_var(var, replacement))
            }
            Term::Enc { body, key } => Term::enc(
                body.iter().map(|t| t.subst_var(var, replacement)).collect(),
                key.subst_var(var, replacement),
            ),
            Term::Located { addr, inner } => {
                Term::located(addr.clone(), inner.subst_var(var, replacement))
            }
        }
    }

    /// Renames every occurrence of the name `old` to `new`.
    #[must_use]
    pub fn rename_name(&self, old: &Name, new: &Name) -> Term {
        match self {
            Term::Name(n) => {
                if n == old {
                    Term::Name(new.clone())
                } else {
                    self.clone()
                }
            }
            Term::Var(_) => self.clone(),
            Term::Pair(a, b) => Term::pair(a.rename_name(old, new), b.rename_name(old, new)),
            Term::Enc { body, key } => Term::enc(
                body.iter().map(|t| t.rename_name(old, new)).collect(),
                key.rename_name(old, new),
            ),
            Term::Located { addr, inner } => {
                Term::located(addr.clone(), inner.rename_name(old, new))
            }
        }
    }
}

impl Channel {
    fn subst_var(&self, var: &Var, replacement: &Term) -> Channel {
        Channel {
            subject: self.subject.subst_var(var, replacement),
            index: self.index.clone(),
        }
    }

    fn rename_name(&self, old: &Name, new: &Name) -> Channel {
        Channel {
            subject: self.subject.rename_name(old, new),
            index: self.index.clone(),
        }
    }

    fn subst_loc(&self, lam: &LocVar, addr: &RelAddr) -> Channel {
        let index = match &self.index {
            ChanIndex::Loc(l) if l == lam => ChanIndex::At(addr.clone()),
            other => other.clone(),
        };
        Channel {
            subject: self.subject.clone(),
            index,
        }
    }
}

impl AddrSide {
    fn subst_var(&self, var: &Var, replacement: &Term) -> AddrSide {
        match self {
            AddrSide::Term(t) => AddrSide::Term(Box::new(t.subst_var(var, replacement))),
            AddrSide::Lit(l) => AddrSide::Lit(l.clone()),
        }
    }

    fn rename_name(&self, old: &Name, new: &Name) -> AddrSide {
        match self {
            AddrSide::Term(t) => AddrSide::Term(Box::new(t.rename_name(old, new))),
            AddrSide::Lit(l) => AddrSide::Lit(l.clone()),
        }
    }
}

impl Process {
    /// Capture-avoiding substitution of `replacement` for the free
    /// occurrences of `var` — the operation written `P{N/x}` in the paper.
    ///
    /// Binders that would capture free variables of `replacement` are
    /// alpha-renamed on the way down, so the result is always correct up
    /// to alpha-equivalence.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::builder::*;
    /// use spi_syntax::Var;
    ///
    /// // d<x>.c(x).e<x> — the first x is free, the second is bound.
    /// let p = out("d", v("x"), inp("c", "x", out("e", v("x"), nil())));
    /// let q = p.subst_var(&Var::new("x"), &n("m"));
    /// // Only the free occurrence is replaced.
    /// assert_eq!(q.to_string(), "d<m>.c(x).e<x>");
    /// ```
    #[must_use]
    pub fn subst_var(&self, var: &Var, replacement: &Term) -> Process {
        match self {
            Process::Nil => Process::Nil,
            Process::Output(ch, payload, cont) => Process::Output(
                ch.subst_var(var, replacement),
                payload.subst_var(var, replacement),
                Box::new(cont.subst_var(var, replacement)),
            ),
            Process::Input(ch, x, cont) => {
                let ch = ch.subst_var(var, replacement);
                if x == var {
                    // `var` is shadowed below.
                    Process::Input(ch, x.clone(), cont.clone())
                } else if replacement.free_vars().contains(x) {
                    // Rename the binder to avoid capturing.
                    let mut avoid = cont.free_vars();
                    avoid.extend(replacement.free_vars());
                    avoid.insert(var.clone());
                    avoid.insert(x.clone());
                    let x2 = fresh_var(&Var::new(format!("{}_r", x.as_str())), &avoid);
                    let renamed = cont.subst_var(x, &Term::Var(x2.clone()));
                    Process::Input(ch, x2, Box::new(renamed.subst_var(var, replacement)))
                } else {
                    Process::Input(ch, x.clone(), Box::new(cont.subst_var(var, replacement)))
                }
            }
            Process::Restrict(n, body) => {
                if replacement.free_names().contains(n) {
                    let mut avoid = body.free_names();
                    avoid.extend(replacement.free_names());
                    avoid.insert(n.clone());
                    let n2 = fresh_name(&Name::new(format!("{}_r", n.as_str())), &avoid);
                    let renamed = body.rename_free_name(n, &n2);
                    Process::Restrict(n2, Box::new(renamed.subst_var(var, replacement)))
                } else {
                    Process::Restrict(n.clone(), Box::new(body.subst_var(var, replacement)))
                }
            }
            Process::Par(l, r) => {
                Process::par(l.subst_var(var, replacement), r.subst_var(var, replacement))
            }
            Process::Match(a, b, cont) => Process::Match(
                a.subst_var(var, replacement),
                b.subst_var(var, replacement),
                Box::new(cont.subst_var(var, replacement)),
            ),
            Process::AddrMatch(a, side, cont) => Process::AddrMatch(
                a.subst_var(var, replacement),
                side.subst_var(var, replacement),
                Box::new(cont.subst_var(var, replacement)),
            ),
            Process::Bang(body) => Process::bang(body.subst_var(var, replacement)),
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => {
                let pair = pair.subst_var(var, replacement);
                if fst == var || snd == var {
                    return Process::Split {
                        pair,
                        fst: fst.clone(),
                        snd: snd.clone(),
                        body: body.clone(),
                    };
                }
                let mut fst = fst.clone();
                let mut snd = snd.clone();
                let mut renamed = (**body).clone();
                let replacement_vars = replacement.free_vars();
                if replacement_vars.contains(&fst) || replacement_vars.contains(&snd) {
                    let mut avoid = renamed.free_vars();
                    avoid.extend(replacement_vars.iter().cloned());
                    avoid.insert(var.clone());
                    avoid.insert(fst.clone());
                    avoid.insert(snd.clone());
                    if replacement_vars.contains(&fst) {
                        let f2 = fresh_var(&Var::new(format!("{}_r", fst.as_str())), &avoid);
                        avoid.insert(f2.clone());
                        renamed = renamed.subst_var(&fst, &Term::Var(f2.clone()));
                        fst = f2;
                    }
                    if replacement_vars.contains(&snd) {
                        let s2 = fresh_var(&Var::new(format!("{}_r", snd.as_str())), &avoid);
                        avoid.insert(s2.clone());
                        renamed = renamed.subst_var(&snd, &Term::Var(s2.clone()));
                        snd = s2;
                    }
                }
                Process::Split {
                    pair,
                    fst,
                    snd,
                    body: Box::new(renamed.subst_var(var, replacement)),
                }
            }
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                let scrutinee = scrutinee.subst_var(var, replacement);
                let key = key.subst_var(var, replacement);
                if binders.contains(var) {
                    return Process::Case {
                        scrutinee,
                        binders: binders.clone(),
                        key,
                        body: body.clone(),
                    };
                }
                let captured: Vec<Var> = binders
                    .iter()
                    .filter(|b| replacement.free_vars().contains(*b))
                    .cloned()
                    .collect();
                if captured.is_empty() {
                    Process::Case {
                        scrutinee,
                        binders: binders.clone(),
                        key,
                        body: Box::new(body.subst_var(var, replacement)),
                    }
                } else {
                    let mut avoid = body.free_vars();
                    avoid.extend(replacement.free_vars());
                    avoid.extend(binders.iter().cloned());
                    avoid.insert(var.clone());
                    let mut new_binders = Vec::with_capacity(binders.len());
                    let mut renamed = (**body).clone();
                    for b in binders {
                        if captured.contains(b) {
                            let b2 = fresh_var(&Var::new(format!("{}_r", b.as_str())), &avoid);
                            avoid.insert(b2.clone());
                            renamed = renamed.subst_var(b, &Term::Var(b2.clone()));
                            new_binders.push(b2);
                        } else {
                            new_binders.push(b.clone());
                        }
                    }
                    Process::Case {
                        scrutinee,
                        binders: new_binders,
                        key,
                        body: Box::new(renamed.subst_var(var, replacement)),
                    }
                }
            }
        }
    }

    /// Renames the free occurrences of the name `old` to `new`,
    /// alpha-renaming any restriction binder for `new` on the way down so
    /// the new occurrences are not captured.
    #[must_use]
    pub fn rename_free_name(&self, old: &Name, new: &Name) -> Process {
        if old == new {
            return self.clone();
        }
        match self {
            Process::Nil => Process::Nil,
            Process::Output(ch, payload, cont) => Process::Output(
                ch.rename_name(old, new),
                payload.rename_name(old, new),
                Box::new(cont.rename_free_name(old, new)),
            ),
            Process::Input(ch, x, cont) => Process::Input(
                ch.rename_name(old, new),
                x.clone(),
                Box::new(cont.rename_free_name(old, new)),
            ),
            Process::Restrict(n, body) => {
                if n == old {
                    // Occurrences below are bound: stop.
                    self.clone()
                } else if n == new {
                    // The binder would capture the renamed occurrences.
                    let mut avoid = body.free_names();
                    avoid.insert(old.clone());
                    avoid.insert(new.clone());
                    let n2 = fresh_name(&Name::new(format!("{}_r", n.as_str())), &avoid);
                    let body2 = body.rename_free_name(n, &n2);
                    Process::Restrict(n2, Box::new(body2.rename_free_name(old, new)))
                } else {
                    Process::Restrict(n.clone(), Box::new(body.rename_free_name(old, new)))
                }
            }
            Process::Par(l, r) => {
                Process::par(l.rename_free_name(old, new), r.rename_free_name(old, new))
            }
            Process::Match(a, b, cont) => Process::Match(
                a.rename_name(old, new),
                b.rename_name(old, new),
                Box::new(cont.rename_free_name(old, new)),
            ),
            Process::AddrMatch(a, side, cont) => Process::AddrMatch(
                a.rename_name(old, new),
                side.rename_name(old, new),
                Box::new(cont.rename_free_name(old, new)),
            ),
            Process::Bang(body) => Process::bang(body.rename_free_name(old, new)),
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => Process::Split {
                pair: pair.rename_name(old, new),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(body.rename_free_name(old, new)),
            },
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => Process::Case {
                scrutinee: scrutinee.rename_name(old, new),
                binders: binders.clone(),
                key: key.rename_name(old, new),
                body: Box::new(body.rename_free_name(old, new)),
            },
        }
    }

    /// Instantiates the location variable `lam` with the relative address
    /// `addr` in every channel index — the effect of the first
    /// synchronization on a channel `c_λ` (Section 3.1).
    #[must_use]
    pub fn subst_loc(&self, lam: &LocVar, addr: &RelAddr) -> Process {
        match self {
            Process::Nil => Process::Nil,
            Process::Output(ch, payload, cont) => Process::Output(
                ch.subst_loc(lam, addr),
                payload.clone(),
                Box::new(cont.subst_loc(lam, addr)),
            ),
            Process::Input(ch, x, cont) => Process::Input(
                ch.subst_loc(lam, addr),
                x.clone(),
                Box::new(cont.subst_loc(lam, addr)),
            ),
            Process::Restrict(n, body) => {
                Process::Restrict(n.clone(), Box::new(body.subst_loc(lam, addr)))
            }
            Process::Par(l, r) => Process::par(l.subst_loc(lam, addr), r.subst_loc(lam, addr)),
            Process::Match(a, b, cont) => {
                Process::Match(a.clone(), b.clone(), Box::new(cont.subst_loc(lam, addr)))
            }
            Process::AddrMatch(a, side, cont) => {
                Process::AddrMatch(a.clone(), side.clone(), Box::new(cont.subst_loc(lam, addr)))
            }
            Process::Bang(body) => Process::bang(body.subst_loc(lam, addr)),
            Process::Split {
                pair,
                fst,
                snd,
                body,
            } => Process::Split {
                pair: pair.clone(),
                fst: fst.clone(),
                snd: snd.clone(),
                body: Box::new(body.subst_loc(lam, addr)),
            },
            Process::Case {
                scrutinee,
                binders,
                key,
                body,
            } => Process::Case {
                scrutinee: scrutinee.clone(),
                binders: binders.clone(),
                key: key.clone(),
                body: Box::new(body.subst_loc(lam, addr)),
            },
        }
    }

    /// Alpha-equivalence: structural equality up to consistent renaming of
    /// bound names and bound variables.
    ///
    /// # Example
    ///
    /// ```
    /// use spi_syntax::parse;
    ///
    /// let p = parse("(^m) c<m>.c(x).d<x>")?;
    /// let q = parse("(^n) c<n>.c(y).d<y>")?;
    /// assert!(p.alpha_eq(&q));
    /// # Ok::<(), spi_syntax::SyntaxError>(())
    /// ```
    #[must_use]
    pub fn alpha_eq(&self, other: &Process) -> bool {
        fn term_eq(a: &Term, b: &Term, names: &[(Name, Name)], vars: &[(Var, Var)]) -> bool {
            match (a, b) {
                (Term::Name(x), Term::Name(y)) => {
                    // Find the innermost binding of either side.
                    for (l, r) in names.iter().rev() {
                        let lm = l == x;
                        let rm = r == y;
                        if lm || rm {
                            return lm && rm;
                        }
                    }
                    x == y
                }
                (Term::Var(x), Term::Var(y)) => {
                    for (l, r) in vars.iter().rev() {
                        let lm = l == x;
                        let rm = r == y;
                        if lm || rm {
                            return lm && rm;
                        }
                    }
                    x == y
                }
                (Term::Pair(a1, a2), Term::Pair(b1, b2)) => {
                    term_eq(a1, b1, names, vars) && term_eq(a2, b2, names, vars)
                }
                (Term::Enc { body: ab, key: ak }, Term::Enc { body: bb, key: bk }) => {
                    ab.len() == bb.len()
                        && ab
                            .iter()
                            .zip(bb.iter())
                            .all(|(x, y)| term_eq(x, y, names, vars))
                        && term_eq(ak, bk, names, vars)
                }
                (
                    Term::Located {
                        addr: aa,
                        inner: ai,
                    },
                    Term::Located {
                        addr: ba,
                        inner: bi,
                    },
                ) => aa == ba && term_eq(ai, bi, names, vars),
                _ => false,
            }
        }

        fn chan_eq(a: &Channel, b: &Channel, names: &[(Name, Name)], vars: &[(Var, Var)]) -> bool {
            a.index == b.index && term_eq(&a.subject, &b.subject, names, vars)
        }

        fn go(
            p: &Process,
            q: &Process,
            names: &mut Vec<(Name, Name)>,
            vars: &mut Vec<(Var, Var)>,
        ) -> bool {
            match (p, q) {
                (Process::Nil, Process::Nil) => true,
                (Process::Output(c1, t1, p1), Process::Output(c2, t2, p2)) => {
                    chan_eq(c1, c2, names, vars)
                        && term_eq(t1, t2, names, vars)
                        && go(p1, p2, names, vars)
                }
                (Process::Input(c1, x1, p1), Process::Input(c2, x2, p2)) => {
                    if !chan_eq(c1, c2, names, vars) {
                        return false;
                    }
                    vars.push((x1.clone(), x2.clone()));
                    let ok = go(p1, p2, names, vars);
                    vars.pop();
                    ok
                }
                (Process::Restrict(n1, p1), Process::Restrict(n2, p2)) => {
                    names.push((n1.clone(), n2.clone()));
                    let ok = go(p1, p2, names, vars);
                    names.pop();
                    ok
                }
                (Process::Par(l1, r1), Process::Par(l2, r2)) => {
                    go(l1, l2, names, vars) && go(r1, r2, names, vars)
                }
                (Process::Match(a1, b1, p1), Process::Match(a2, b2, p2)) => {
                    term_eq(a1, a2, names, vars)
                        && term_eq(b1, b2, names, vars)
                        && go(p1, p2, names, vars)
                }
                (Process::AddrMatch(a1, s1, p1), Process::AddrMatch(a2, s2, p2)) => {
                    let sides = match (s1, s2) {
                        (AddrSide::Term(t1), AddrSide::Term(t2)) => term_eq(t1, t2, names, vars),
                        (AddrSide::Lit(l1), AddrSide::Lit(l2)) => l1 == l2,
                        _ => false,
                    };
                    sides && term_eq(a1, a2, names, vars) && go(p1, p2, names, vars)
                }
                (Process::Bang(p1), Process::Bang(p2)) => go(p1, p2, names, vars),
                (
                    Process::Split {
                        pair: t1,
                        fst: f1,
                        snd: s1,
                        body: p1,
                    },
                    Process::Split {
                        pair: t2,
                        fst: f2,
                        snd: s2,
                        body: p2,
                    },
                ) => {
                    if !term_eq(t1, t2, names, vars) {
                        return false;
                    }
                    let depth = vars.len();
                    vars.push((f1.clone(), f2.clone()));
                    vars.push((s1.clone(), s2.clone()));
                    let ok = go(p1, p2, names, vars);
                    vars.truncate(depth);
                    ok
                }
                (
                    Process::Case {
                        scrutinee: s1,
                        binders: b1,
                        key: k1,
                        body: p1,
                    },
                    Process::Case {
                        scrutinee: s2,
                        binders: b2,
                        key: k2,
                        body: p2,
                    },
                ) => {
                    if b1.len() != b2.len()
                        || !term_eq(s1, s2, names, vars)
                        || !term_eq(k1, k2, names, vars)
                    {
                        return false;
                    }
                    let depth = vars.len();
                    for (x1, x2) in b1.iter().zip(b2.iter()) {
                        vars.push((x1.clone(), x2.clone()));
                    }
                    let ok = go(p1, p2, names, vars);
                    vars.truncate(depth);
                    ok
                }
                _ => false,
            }
        }

        go(self, other, &mut Vec::new(), &mut Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn pr(s: &str) -> Process {
        parse(s).expect("valid process literal")
    }

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    /// Parsed, then opened: replaces the free *name* `ident` with the
    /// variable of the same spelling, since the parser resolves unbound
    /// identifiers to names.
    fn open(src: &str, ident: &str) -> Process {
        fn go(p: &Process, name: &Name, var: &Var) -> Process {
            // A name → variable swap cannot be captured (different sorts),
            // so plain structural replacement suffices for tests.
            match p {
                Process::Nil => Process::Nil,
                Process::Output(ch, t, c) => Process::Output(
                    Channel {
                        subject: swap(&ch.subject, name, var),
                        index: ch.index.clone(),
                    },
                    swap(t, name, var),
                    Box::new(go(c, name, var)),
                ),
                Process::Input(ch, x, c) => Process::Input(
                    Channel {
                        subject: swap(&ch.subject, name, var),
                        index: ch.index.clone(),
                    },
                    x.clone(),
                    Box::new(go(c, name, var)),
                ),
                Process::Restrict(n, c) => Process::Restrict(n.clone(), Box::new(go(c, name, var))),
                Process::Par(l, r) => Process::par(go(l, name, var), go(r, name, var)),
                Process::Match(a, b, c) => Process::Match(
                    swap(a, name, var),
                    swap(b, name, var),
                    Box::new(go(c, name, var)),
                ),
                Process::AddrMatch(a, s, c) => {
                    Process::AddrMatch(swap(a, name, var), s.clone(), Box::new(go(c, name, var)))
                }
                Process::Bang(c) => Process::bang(go(c, name, var)),
                Process::Split {
                    pair,
                    fst,
                    snd,
                    body,
                } => Process::Split {
                    pair: swap(pair, name, var),
                    fst: fst.clone(),
                    snd: snd.clone(),
                    body: Box::new(go(body, name, var)),
                },
                Process::Case {
                    scrutinee,
                    binders,
                    key,
                    body,
                } => Process::Case {
                    scrutinee: swap(scrutinee, name, var),
                    binders: binders.clone(),
                    key: swap(key, name, var),
                    body: Box::new(go(body, name, var)),
                },
            }
        }
        fn swap(t: &Term, name: &Name, var: &Var) -> Term {
            match t {
                Term::Name(n) if n == name => Term::Var(var.clone()),
                Term::Name(_) | Term::Var(_) => t.clone(),
                Term::Pair(a, b) => Term::pair(swap(a, name, var), swap(b, name, var)),
                Term::Enc { body, key } => Term::enc(
                    body.iter().map(|x| swap(x, name, var)).collect(),
                    swap(key, name, var),
                ),
                Term::Located { addr, inner } => {
                    Term::located(addr.clone(), swap(inner, name, var))
                }
            }
        }
        go(&pr(src), &Name::new(ident), &Var::new(ident))
    }

    #[test]
    fn substitution_replaces_free_occurrences() {
        let p = open("c<x> | d<x>", "x");
        let q = p.subst_var(&v("x"), &Term::name("m"));
        assert_eq!(q, pr("c<m> | d<m>"));
    }

    #[test]
    fn substitution_respects_shadowing() {
        // d<x>.c(x).e<x> with the first x free and the second bound.
        let p = Process::output(Term::name("d"), Term::var("x"), pr("c(x).e<x>"));
        let q = p.subst_var(&v("x"), &Term::name("m"));
        assert_eq!(q.to_string(), "d<m>.c(x).e<x>");
    }

    #[test]
    fn substitution_avoids_name_capture_under_restriction() {
        let p = open("(^m) c<(x, m)>", "x");
        let q = p.subst_var(&v("x"), &Term::name("m"));
        // The bound m must be renamed so the substituted free m is not
        // captured.
        match &q {
            Process::Restrict(n, _) => assert_ne!(n, &Name::new("m")),
            other => panic!("expected restriction, got {other:?}"),
        }
        let free = q.free_names();
        assert!(free.contains("m"), "the substituted m stays free");
    }

    #[test]
    fn substitution_avoids_var_capture_under_input() {
        let p = open("c(y).d<(x, y)>", "x");
        let q = p.subst_var(&v("x"), &Term::var("y"));
        // The binder y must be renamed so the substituted y stays free.
        assert!(q.free_vars().contains(&v("y")));
        match &q {
            Process::Input(_, binder, _) => assert_ne!(binder, &v("y")),
            other => panic!("expected input, got {other:?}"),
        }
    }

    #[test]
    fn substitution_avoids_var_capture_under_case() {
        let p = open("case z of {y}k in d<(x, y)>", "x");
        let q = p.subst_var(&v("x"), &Term::var("y"));
        assert!(q.free_vars().contains(&v("y")));
    }

    #[test]
    fn substitution_stops_at_case_binders() {
        let p = pr("case z of {x}k in d<x>");
        let q = p.subst_var(&v("x"), &Term::name("m"));
        assert_eq!(q, p, "x is bound by the case, nothing changes");
    }

    #[test]
    fn rename_free_name_respects_binders() {
        let p = pr("c<m> | (^m) d<m>");
        let q = p.rename_free_name(&Name::new("m"), &Name::new("n"));
        assert_eq!(q.to_string(), "c<n> | (^m)d<m>");
    }

    #[test]
    fn rename_free_name_avoids_capture() {
        let p = pr("(^n) c<(m, n)>");
        let q = p.rename_free_name(&Name::new("m"), &Name::new("n"));
        // The restricted n must be alpha-renamed first.
        assert!(q.free_names().contains("n"));
        assert!(q.alpha_eq(&pr("(^w) c<(n, w)>")));
    }

    #[test]
    fn subst_loc_localizes_channels() {
        let p = pr("c@lam(x).c@lam<x>");
        let addr: RelAddr = "0.1".parse().unwrap();
        let q = p.subst_loc(&LocVar::new("lam"), &addr);
        match &q {
            Process::Input(ch, _, cont) => {
                assert_eq!(ch.index, ChanIndex::At(addr.clone()));
                match cont.as_ref() {
                    Process::Output(ch2, _, _) => assert_eq!(ch2.index, ChanIndex::At(addr)),
                    other => panic!("expected output, got {other:?}"),
                }
            }
            other => panic!("expected input, got {other:?}"),
        }
    }

    #[test]
    fn substitution_respects_split_binders() {
        // let (x, y) = z in d<(x, w)> — substituting for x is blocked,
        // substituting for w proceeds.
        let p = pr("c(z).let (x, y) = z in d<(x, w)>");
        let q = p.subst_var(&v("w"), &Term::name("m"));
        // w parsed as a free name, so nothing changes via var subst...
        assert_eq!(q, p);
        // ...but an opened variant substitutes under the binders.
        let open_p = open("c(z).let (x, y) = z in d<(x, w)>", "w");
        let q = open_p.subst_var(&v("w"), &Term::name("m"));
        assert!(q.to_string().contains("(x, m)"), "{q}");
        let untouched = open_p.subst_var(&v("x"), &Term::name("m"));
        assert_eq!(untouched, open_p, "x is bound by the split");
    }

    #[test]
    fn substitution_avoids_capture_by_split_binders() {
        let p = open("c(z).let (x, y) = z in d<(x, w)>", "w");
        let q = p.subst_var(&v("w"), &Term::var("x"));
        // The binder x must be renamed so the substituted x stays free.
        assert!(q.free_vars().contains(&v("x")), "{q}");
    }

    #[test]
    fn alpha_eq_handles_split() {
        assert!(pr("c(z).let (x, y) = z in d<x>").alpha_eq(&pr("c(w).let (u, q) = w in d<u>")));
        assert!(!pr("c(z).let (x, y) = z in d<x>").alpha_eq(&pr("c(z).let (x, y) = z in d<y>")));
    }

    #[test]
    fn alpha_eq_identifies_renamed_binders() {
        assert!(pr("(^m) c<m>").alpha_eq(&pr("(^n) c<n>")));
        assert!(pr("c(x).d<x>").alpha_eq(&pr("c(y).d<y>")));
        assert!(
            pr("case z of {x, y}k in d<(x, y)>").alpha_eq(&pr("case z of {u, w}k in d<(u, w)>"))
        );
    }

    #[test]
    fn alpha_eq_distinguishes_free_identifiers() {
        assert!(!pr("c<m>").alpha_eq(&pr("c<n>")));
        assert!(!pr("(^m) c<m>").alpha_eq(&pr("(^m) c<n>")));
        assert!(!pr("c(x).d<x>").alpha_eq(&pr("c(x).d<y>")));
    }

    #[test]
    fn alpha_eq_requires_consistent_pairing() {
        // (^a)(^b) c<(a,b)> vs (^b)(^a) c<(a,b)> — the pairing is swapped.
        assert!(pr("(^a)(^b) c<(a, b)>").alpha_eq(&pr("(^b)(^a) c<(b, a)>")));
        assert!(!pr("(^a)(^b) c<(a, b)>").alpha_eq(&pr("(^a)(^b) c<(b, a)>")));
    }
}
