//! Experiments E6–E8 — Section 5.2 of the paper: Proposition 3, the
//! replay attack on `Pm2`, and Proposition 4 (`Pm3` securely implements
//! `Pm`).

use spi_auth_repro::auth::{propositions, Verdict, Verifier};
use spi_auth_repro::protocols::multi;

#[test]
fn proposition_3_sessions_pair_off_with_freshness() {
    let audit = propositions::proposition_3(2).unwrap();
    assert!(audit.observations > 1, "several sessions complete");
    assert!(audit.all_from_a, "authentication across sessions");
    assert!(
        !audit.replay_found,
        "no run of Pm delivers the same located message twice"
    );
}

#[test]
fn e7_pm2_suffers_the_replay_attack() {
    let attack = propositions::counterexample_pm2(2)
        .unwrap()
        .expect("Pm2 is replayable");
    // The distinguishing trace delivers the same located message twice.
    assert_eq!(attack.trace.len(), 2);
    assert_eq!(attack.trace[0], attack.trace[1]);
    let text = attack.narration.join("\n");
    assert!(text.contains("E intercepts"), "{text}");
    assert!(
        text.matches("E pretending to be A").count() >= 2,
        "the replay delivers twice: {text}"
    );
}

#[test]
fn e7_one_session_is_not_enough_for_the_replay() {
    // With a single session the naive protocol is still fine — exactly
    // the paper's point that P2 is secure in isolation.
    let report = propositions::counterexample_pm2(1).unwrap();
    assert!(report.is_none(), "one session of Pm2 has no replay");
}

#[test]
fn proposition_4_challenge_response_is_secure() {
    let report = propositions::proposition_4(2).unwrap();
    assert!(
        matches!(report.verdict, Verdict::SecurelyImplements),
        "{report:?}"
    );
}

#[test]
fn the_nonce_check_is_what_saves_pm3() {
    // Ablation: strip the [w = N] matching from B3 and the replay
    // reappears — the verifier pinpoints the design decision.
    use spi_auth_repro::syntax::parse;
    let broken = parse(
        "(^kAB)(!(^m)c(ns).c<{m, ns}kAB> | \
         !(^nb)c<nb>.c(x).case x of {z, w}kAB in observe<z>)",
    )
    .unwrap();
    let pm = multi::abstract_protocol("c", "observe").unwrap();
    let verifier = Verifier::new(["c"]).sessions(2);
    match verifier.check(&broken, &pm).unwrap().verdict {
        Verdict::Attack(a) => {
            assert_eq!(a.trace[0], a.trace[1], "same message accepted twice");
        }
        other => panic!("removing the nonce check must break Pm3, got {other:?}"),
    }
}

#[test]
fn abstract_pm_implements_itself_across_session_counts() {
    let pm = multi::abstract_protocol("c", "observe").unwrap();
    for sessions in 1..=2 {
        let verifier = Verifier::new(["c"]).sessions(sessions);
        assert!(matches!(
            verifier.check(&pm, &pm).unwrap().verdict,
            Verdict::SecurelyImplements
        ));
    }
}
