//! S1 — state-space scaling: exploration size and time versus the number
//! of sessions and versus protocol width, for the abstract `Pm`, the
//! naive `Pm2` and the challenge-response `Pm3`.
//!
//! The shape to expect (recorded in `EXPERIMENTS.md`): the abstract
//! protocol stays small (localization prunes the intruder's moves), the
//! naive cipher protocol grows moderately, and the challenge-response
//! grows fastest (nonces multiply the intruder's choices) while remaining
//! tractable at the paper's two sessions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spi_auth::Verifier;
use spi_bench::independent_pairs;
use spi_protocols::multi;
use spi_verify::{ExploreOptions, Explorer};

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_sessions");
    group.sample_size(10);
    let pm = multi::abstract_protocol("c", "observe").expect("builds");
    let pm2 = multi::shared_key("c", "observe");
    let pm3 = multi::challenge_response("c", "observe");
    for sessions in [1u32, 2] {
        for (name, protocol) in [
            ("pm_abstract", &pm),
            ("pm2_naive", &pm2),
            ("pm3_nonce", &pm3),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, sessions),
                &sessions,
                |b, &sessions| {
                    let verifier = Verifier::new(["c"]).sessions(sessions);
                    b.iter(|| verifier.explore(protocol).expect("explores").stats);
                },
            );
        }
    }
    // Pm and Pm2 stay cheap enough for a third session.
    for (name, protocol) in [("pm_abstract", &pm), ("pm2_naive", &pm2)] {
        group.bench_with_input(BenchmarkId::new(name, 3u32), &3u32, |b, &sessions| {
            let verifier = Verifier::new(["c"]).sessions(sessions);
            b.iter(|| verifier.explore(protocol).expect("explores").stats);
        });
    }
    group.finish();
}

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore_width");
    group.sample_size(10);
    for pairs in [2usize, 4, 6] {
        let system = independent_pairs(pairs);
        group.bench_with_input(
            BenchmarkId::new("independent_pairs", pairs),
            &system,
            |b, s| {
                let explorer = Explorer::new(ExploreOptions::default());
                b.iter(|| explorer.explore(s).expect("explores").stats);
            },
        );
    }
    group.finish();
}

criterion_group!(scaling, bench_sessions, bench_width);
criterion_main!(scaling);
