//! The pluggable oracle suite.
//!
//! An [`Oracle`] is a differential property every well-formed
//! specification must satisfy: two engine paths that claim to compute the
//! same thing are run side by side and any disagreement is a [`Verdict::Fail`].
//! The built-in suite covers the nine seams where the workspace
//! maintains redundant machinery:
//!
//! * **roundtrip** — the exact printer against the parser;
//! * **workers** — the parallel frontier against the sequential engine;
//! * **hashkeys** — 128-bit hashed state keys against full canonical
//!   strings (`verify_keys`);
//! * **cowstate** — the copy-on-write stepper against the deep-clone
//!   reference stepper and the explorer's state count;
//! * **reduce** — the symmetry-quotiented, partial-order-reduced
//!   exploration (`--reduce full`) against the unreduced reference:
//!   reductions may collapse states, never observations, so the exact
//!   weak trace sets and weak barbs must be identical;
//! * **checkpoint** — a kill/resume campaign against an uninterrupted one;
//! * **server** — an in-process `spi serve` daemon against a direct
//!   [`spi_verify::Verifier`] run, including the cache-hit replay;
//! * **fleet** — a coordinator fronting two workers under a seeded
//!   chaos plan (a worker is killed mid-sequence) against the same
//!   direct run: re-dispatch and degradation must never change a byte
//!   of the verdict body;
//! * **engines** — the hedged-bisimulation decision procedure against
//!   the trace engine: the determinized tree's canonical trace language
//!   must equal the weak trace set of the same LTS, and both procedures
//!   must reach the same verdict on the (concrete, spec) question.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use spi_semantics::refstep::{reachable, CloneMode};
use spi_server::{
    coordinate, serve, verify_body, Client, CoordinatorOptions, ServerOptions, VerifierEngine,
};
use spi_verify::jsonlite::Json;
use spi_verify::{
    bisim_preorder_sound_with, bisim_traces, run_campaign, trace_preorder_sound, weak_traces,
    BisimOptions, Budget, CampaignOptions, CampaignReport, ExploreOptions, Explorer,
    ReduceOptions, Verifier,
};
use spi_syntax::{parse, Process};

use crate::gen::TestCase;

/// What an oracle concluded about a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The differential property held.
    Pass,
    /// The case was out of the oracle's reach (too large, too few
    /// schedules, a budget would truncate the comparison) — not evidence
    /// either way.
    Skip(String),
    /// The property failed; the message describes the disagreement.
    Fail(String),
}

/// A deliberately planted bug, used to validate that the harness catches
/// and shrinks real defects.  Never active in normal runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Truncate the copy-on-write stepper's canonical state keys to this
    /// many bytes before deduplication — emulating a canonicalizer that
    /// collides distinct states, exactly the failure `verify_keys`
    /// exists to rule out.
    TruncateCanonKeys(usize),
    /// Replace the explorer's symmetry quotient with an *erasing*
    /// pseudo-quotient (session-copy subtrees dropped, only their
    /// permutation-invariant signatures hashed) — a canonicalizer that
    /// forgets cross-copy name identity and conflates genuinely
    /// different states, exactly the overmerge the `reduce` oracle
    /// exists to rule out.
    SymNoPerm,
    /// Skip one analysis rule in the bisimulation engine's environment
    /// knowledge (everything under an encryption stays opaque, so the
    /// hedge under-closes and distinct fresh names render alike) — an
    /// unsound knowledge closure, exactly the divergence the `engines`
    /// oracle exists to rule out.
    BisimSkipAnalysis,
}

impl Injection {
    /// Parses `truncate-keys:N`, `sym-no-perm` or `bisim-skip-analysis`.
    ///
    /// # Errors
    ///
    /// Returns a description of the expected syntax on anything else.
    pub fn parse(s: &str) -> Result<Injection, String> {
        if s == "sym-no-perm" {
            return Ok(Injection::SymNoPerm);
        }
        if s == "bisim-skip-analysis" {
            return Ok(Injection::BisimSkipAnalysis);
        }
        match s.split_once(':') {
            Some(("truncate-keys", n)) => n
                .parse::<usize>()
                .map(Injection::TruncateCanonKeys)
                .map_err(|_| format!("bad injection length `{n}` (want an integer)")),
            _ => Err(format!(
                "unknown injection `{s}` (valid: truncate-keys:N, sym-no-perm, \
                 bisim-skip-analysis)"
            )),
        }
    }

    /// The directive spelling, `truncate-keys:N`, `sym-no-perm` or
    /// `bisim-skip-analysis`.
    #[must_use]
    pub fn directive(&self) -> String {
        match self {
            Injection::TruncateCanonKeys(n) => format!("truncate-keys:{n}"),
            Injection::SymNoPerm => "sym-no-perm".to_string(),
            Injection::BisimSkipAnalysis => "bisim-skip-analysis".to_string(),
        }
    }
}

/// Shared bounds and switches for a conformance run.
#[derive(Debug, Clone)]
pub struct OracleEnv {
    /// Replication unfold bound for every exploration.
    pub unfold_bound: u32,
    /// State cap for every exploration; comparisons that would be
    /// truncated by it are skipped, never half-checked.
    pub max_states: usize,
    /// The planted bug, if any.
    pub injection: Option<Injection>,
}

impl Default for OracleEnv {
    fn default() -> OracleEnv {
        OracleEnv {
            unfold_bound: 1,
            max_states: 4_000,
            injection: None,
        }
    }
}

/// A differential conformance property.
pub trait Oracle {
    /// The oracle's stable name (used in reports, CLI selection and
    /// reproducer directives).
    fn name(&self) -> &'static str;

    /// Run the oracle only on every `stride`-th case — for oracles whose
    /// single check is expensive (campaign resume).
    fn stride(&self) -> usize {
        1
    }

    /// Checks the property on one case.
    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict;
}

/// The built-in oracle suite, in documentation order.
#[must_use]
pub fn builtin_oracles() -> Vec<Box<dyn Oracle>> {
    vec![
        Box::new(Roundtrip),
        Box::new(Workers),
        Box::new(HashKeys),
        Box::new(CowState),
        Box::new(Reduce),
        Box::new(Checkpoint),
        Box::new(Server),
        Box::new(Fleet),
        Box::new(Engines),
    ]
}

fn explore_opts(env: &OracleEnv) -> ExploreOptions {
    ExploreOptions {
        budget: Budget::unlimited().states(env.max_states),
        unfold_bound: env.unfold_bound,
        workers: 1,
        ..ExploreOptions::default()
    }
}

/// Parse/pretty-print round-trip: `parse(P.to_string()) == P` for both
/// the spec and the concrete system.
struct Roundtrip;

impl Oracle for Roundtrip {
    fn name(&self) -> &'static str {
        "roundtrip"
    }

    fn check(&self, case: &TestCase, _env: &OracleEnv) -> Verdict {
        for (which, p) in [("spec", &case.spec), ("concrete", &case.concrete)] {
            let printed = p.to_string();
            match parse(&printed) {
                Err(e) => {
                    return Verdict::Fail(format!(
                        "{which} does not reparse: {e} (printed as `{printed}`)"
                    ))
                }
                Ok(back) if &back != p => {
                    return Verdict::Fail(format!(
                        "{which} round-trip changed the AST (printed as `{printed}`)"
                    ))
                }
                Ok(_) => {}
            }
        }
        Verdict::Pass
    }
}

/// Explorer determinism: the [`spi_verify::Lts::fingerprint`] must be
/// identical for worker counts 1, 2 and 8 (fault schedule included when
/// the case carries one).
struct Workers;

impl Oracle for Workers {
    fn name(&self) -> &'static str {
        "workers"
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        let mut prints = Vec::new();
        for workers in [1usize, 2, 8] {
            let opts = ExploreOptions {
                workers,
                faults: case.faults.clone(),
                ..explore_opts(env)
            };
            match Explorer::new(opts).explore(&case.spec) {
                Ok(lts) => prints.push((workers, lts.fingerprint())),
                Err(e) => return Verdict::Skip(format!("workers={workers}: {e}")),
            }
        }
        let base = prints[0].1;
        for (workers, fp) in &prints[1..] {
            if *fp != base {
                return Verdict::Fail(format!(
                    "LTS diverges across worker counts: workers=1 gives {base:032x}, \
                     workers={workers} gives {fp:032x}"
                ));
            }
        }
        Verdict::Pass
    }
}

/// Hashed-key interning against full canonical strings: exploring with
/// `verify_keys` must neither panic (a divergence panics by design) nor
/// change the resulting LTS.
struct HashKeys;

impl Oracle for HashKeys {
    fn name(&self) -> &'static str {
        "hashkeys"
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        let plain = match Explorer::new(ExploreOptions {
            faults: case.faults.clone(),
            ..explore_opts(env)
        })
        .explore(&case.spec)
        {
            Ok(lts) => lts.fingerprint(),
            Err(e) => return Verdict::Skip(format!("exploration failed: {e}")),
        };
        let opts = ExploreOptions {
            verify_keys: true,
            faults: case.faults.clone(),
            ..explore_opts(env)
        };
        let spec = case.spec.clone();
        match catch_unwind(AssertUnwindSafe(move || {
            Explorer::new(opts).explore(&spec).map(|lts| lts.fingerprint())
        })) {
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                Verdict::Fail(format!(
                    "verify_keys panicked — hashed and string state keys disagree: {msg}"
                ))
            }
            Ok(Err(e)) => Verdict::Skip(format!("verify_keys exploration failed: {e}")),
            Ok(Ok(checked)) if checked != plain => Verdict::Fail(format!(
                "verify_keys changed the LTS: {plain:032x} without, {checked:032x} with"
            )),
            Ok(Ok(_)) => Verdict::Pass,
        }
    }
}

/// Copy-on-write stepping against deep-clone reference stepping (and,
/// when both sides are exhaustive, against the explorer's state count).
struct CowState;

impl Oracle for CowState {
    fn name(&self) -> &'static str {
        "cowstate"
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        let cow = match reachable(&case.spec, env.unfold_bound, env.max_states, CloneMode::Cow) {
            Ok(r) => r,
            Err(e) => return Verdict::Skip(format!("cow stepper: {e}")),
        };
        let deep = match reachable(&case.spec, env.unfold_bound, env.max_states, CloneMode::Deep) {
            Ok(r) => r,
            Err(e) => return Verdict::Skip(format!("deep stepper: {e}")),
        };
        if !cow.complete || !deep.complete {
            return Verdict::Skip(format!(
                "state space truncated at {} states", env.max_states
            ));
        }
        // The planted canonicalizer bug makes the COW side dedup on
        // truncated keys, so any two states sharing a key prefix
        // collide into one — the exact failure shape of a canonical-form
        // collision, detected as a state-count mismatch.
        let cow_keys: std::collections::BTreeSet<String> = match env.injection {
            Some(Injection::TruncateCanonKeys(n)) => cow
                .keys
                .iter()
                .map(|k| k.chars().take(n).collect())
                .collect(),
            Some(Injection::SymNoPerm | Injection::BisimSkipAnalysis) | None => cow.keys,
        };
        if cow_keys.len() != deep.keys.len() {
            return Verdict::Fail(format!(
                "cow and deep-clone steppers disagree: {} vs {} reachable states",
                cow_keys.len(),
                deep.keys.len()
            ));
        }
        if env.injection.is_none() && cow_keys != deep.keys {
            let missing = deep.keys.difference(&cow_keys).count();
            return Verdict::Fail(format!(
                "cow and deep-clone steppers reach different state sets \
                 ({missing} keys differ out of {})",
                deep.keys.len()
            ));
        }
        // No faults and no intruder: the explorer dedups on a key
        // bijective with the config key, so its state count must match.
        if case.faults.is_none() {
            match Explorer::new(explore_opts(env)).explore(&case.spec) {
                Ok(lts) if lts.complete() && lts.states.len() != deep.keys.len() => {
                    return Verdict::Fail(format!(
                        "explorer reaches {} states but the reference stepper {}",
                        lts.states.len(),
                        deep.keys.len()
                    ));
                }
                _ => {}
            }
        }
        Verdict::Pass
    }
}

/// Reduced exploration against the unreduced reference: exploring under
/// the session-symmetry quotient plus ample-set partial-order reduction
/// (`--reduce full`) must preserve the *exact* weak trace set and the
/// weak barbs of the unreduced LTS — reductions may collapse states,
/// never observations.
struct Reduce;

impl Oracle for Reduce {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        // The session quotient needs at least two replicated copies to
        // have anything to permute; deepen a shallower caller bound.
        let unfold = env.unfold_bound.max(2);
        // The unreduced arm tracks isomorphisms too, so both sides
        // extract the exact raw trace set — identity merges would
        // otherwise mix nonce lineages and the comparison would flag
        // bookkeeping, not semantics.
        let base = ExploreOptions {
            unfold_bound: unfold,
            faults: case.faults.clone(),
            track_isos: true,
            ..explore_opts(env)
        };
        let plain = match Explorer::new(base.clone()).explore(&case.spec) {
            Ok(lts) => lts,
            Err(e) => return Verdict::Skip(format!("unreduced exploration failed: {e}")),
        };
        if !plain.complete() {
            return Verdict::Skip(format!(
                "state space truncated at {} states",
                env.max_states
            ));
        }
        let reduced_opts = ExploreOptions {
            reduce: ReduceOptions::full(),
            sym_conflate: env.injection == Some(Injection::SymNoPerm),
            ..base
        };
        let reduced = match Explorer::new(reduced_opts).explore(&case.spec) {
            Ok(lts) => lts,
            Err(e) => return Verdict::Skip(format!("reduced exploration failed: {e}")),
        };
        if !reduced.complete() {
            return Verdict::Skip("reduced exploration truncated".to_string());
        }
        if reduced.states.len() > plain.states.len() {
            return Verdict::Fail(format!(
                "reduction grew the state space: {} reduced vs {} plain states",
                reduced.states.len(),
                plain.states.len()
            ));
        }
        const VISIBLE: usize = 4;
        let want = weak_traces(&plain, VISIBLE);
        let got = weak_traces(&reduced, VISIBLE);
        if got != want {
            let lost = want.difference(&got).count();
            let invented = got.difference(&want).count();
            return Verdict::Fail(format!(
                "reduced exploration changed the weak trace set: {lost} trace(s) lost, \
                 {invented} invented ({} reduced vs {} plain states)",
                reduced.states.len(),
                plain.states.len()
            ));
        }
        if reduced.weak_barbs() != plain.weak_barbs() {
            return Verdict::Fail(
                "reduced exploration changed the weak barbs".to_string(),
            );
        }
        Verdict::Pass
    }
}

/// Campaign kill/resume equality: interrupting a campaign halfway and
/// resuming from its checkpoint must reproduce the uninterrupted report.
struct Checkpoint;

impl Oracle for Checkpoint {
    fn name(&self) -> &'static str {
        "checkpoint"
    }

    fn stride(&self) -> usize {
        8
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        // One channel keeps the schedule universe tiny: the property
        // under test is resume equality, not campaign coverage.
        let channels: Vec<&str> = case.channels.iter().map(String::as_str).take(1).collect();
        let mut opts = CampaignOptions::new(channels, 1);
        opts.explore = explore_opts(env);
        opts.max_visible = 4;
        let full = match run_campaign(&case.concrete, &case.spec, &opts) {
            Ok(r) => r,
            Err(e) => return Verdict::Skip(format!("campaign failed: {e}")),
        };
        if full.enumerated < 2 {
            return Verdict::Skip("fewer than two schedules to split".to_string());
        }
        let ckpt = std::env::temp_dir().join(format!(
            "spi-conformance-ckpt-{}-{}.json",
            case.seed, case.index
        ));
        let _ = std::fs::remove_file(&ckpt);
        opts.checkpoint_path = Some(ckpt.clone());
        opts.checkpoint_every = 1;
        opts.stop_after = Some(full.enumerated / 2);
        let first = run_campaign(&case.concrete, &case.spec, &opts);
        opts.stop_after = None;
        opts.resume = true;
        let second = run_campaign(&case.concrete, &case.spec, &opts);
        let _ = std::fs::remove_file(&ckpt);
        let (first, resumed) = match (first, second) {
            (Ok(f), Ok(s)) => (f, s),
            (Err(e), _) | (_, Err(e)) => {
                return Verdict::Skip(format!("checkpointed campaign failed: {e}"))
            }
        };
        if !first.interrupted {
            return Verdict::Skip("campaign finished before the kill point".to_string());
        }
        let verdict = compare_reports(&full, &resumed);
        if let Verdict::Pass = verdict {
            if resumed.resumed == 0 {
                return Verdict::Fail(
                    "resumed campaign replayed nothing from the checkpoint".to_string(),
                );
            }
        }
        verdict
    }
}

/// Served verdicts against direct ones: an in-process `spi serve`
/// daemon must answer a verify request with exactly the body a direct
/// [`Verifier`] run encodes — and answer the resubmission from its
/// cache, byte-identically.
struct Server;

impl Server {
    fn check_inner(case: &TestCase, env: &OracleEnv) -> (Verdict, Option<spi_server::ServerHandle>) {
        // Both sides get the same knobs: the budget spelling below is
        // parsed by the wire protocol with the same Budget::parse_spec
        // the direct side uses.
        let budget_spec = format!("states={}", env.max_states.min(2_000));
        let Ok(budget) = Budget::parse_spec(&budget_spec) else {
            return (Verdict::Skip("budget spec did not parse".into()), None);
        };
        let visible = 4usize;
        let verifier = Verifier::new(case.channels.iter().map(String::as_str))
            .sessions(env.unfold_bound)
            .max_visible(visible)
            .budget(budget)
            .workers(1)
            .no_intruder();
        let report = match verifier.check(&case.concrete, &case.spec) {
            Ok(r) => r,
            Err(e) => return (Verdict::Skip(format!("direct check failed: {e}")), None),
        };
        let direct = verify_body(&report).render_compact();

        let opts = ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_bytes: 1 << 20,
            snapshot: None,
            queue_cap: 8,
            default_timeout_secs: None,
            ..ServerOptions::default()
        };
        let engine = Arc::new(VerifierEngine {
            explore_workers: Some(1),
        });
        let handle = match serve(engine, opts) {
            Ok(h) => h,
            Err(e) => return (Verdict::Skip(format!("cannot start server: {e}")), None),
        };
        let request = Json::Obj(vec![
            ("op".to_string(), Json::str("verify")),
            ("concrete".into(), Json::str(case.concrete.to_string())),
            ("abstract".into(), Json::str(case.spec.to_string())),
            (
                "channels".into(),
                Json::str_arr(case.channels.iter().cloned()),
            ),
            ("sessions".into(), Json::count(env.unfold_bound as usize)),
            ("visible".into(), Json::count(visible)),
            ("budget".into(), Json::str(budget_spec)),
            ("intruder".into(), Json::Bool(false)),
        ])
        .render_compact();
        let verdict = Server::roundtrips(&handle, &request, &direct);
        (verdict, Some(handle))
    }

    fn roundtrips(handle: &spi_server::ServerHandle, request: &str, direct: &str) -> Verdict {
        let mut client = match Client::connect(&handle.addr().to_string()) {
            Ok(c) => c,
            Err(e) => return Verdict::Skip(format!("cannot connect: {e}")),
        };
        let mut served = Vec::new();
        for round in ["fresh", "cached"] {
            let line = match client.roundtrip(request) {
                Ok(l) => l,
                Err(e) => return Verdict::Skip(format!("{round} roundtrip failed: {e}")),
            };
            let response = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    return Verdict::Fail(format!("{round} response is not JSON: {e} (`{line}`)"))
                }
            };
            match response.get("status").and_then(Json::as_str) {
                Some("ok") => {}
                Some("error") => {
                    // The served engine refused what the direct run
                    // answered — unless the direct run would refuse too,
                    // which never reaches here (direct errors skip).
                    return Verdict::Fail(format!(
                        "server answered error where the direct run succeeded: {}",
                        response
                            .get("reason")
                            .and_then(Json::as_str)
                            .unwrap_or("<no reason>")
                    ));
                }
                other => return Verdict::Skip(format!("{round} response status {other:?}")),
            }
            let cached = response.get("cached").and_then(Json::as_bool);
            if round == "cached" && cached != Some(true) {
                return Verdict::Fail("the resubmission was not served from the cache".into());
            }
            let Some(body) = response.get("body") else {
                return Verdict::Fail(format!("{round} response has no body"));
            };
            served.push(body.render_compact());
        }
        if served[0] != direct {
            return Verdict::Fail(format!(
                "served verdict differs from the direct run:\n  served: {}\n  direct: {direct}",
                served[0]
            ));
        }
        if served[1] != served[0] {
            return Verdict::Fail(
                "the cache-hit replay differs from the fresh answer".to_string(),
            );
        }
        Verdict::Pass
    }
}

impl Oracle for Server {
    fn name(&self) -> &'static str {
        "server"
    }

    fn stride(&self) -> usize {
        4
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        let (verdict, handle) = Server::check_inner(case, env);
        if let Some(h) = handle {
            h.join();
        }
        verdict
    }
}

/// Fleet verdicts against direct ones: a coordinator fronting two
/// workers — with a case-seeded chaos plan killing one of them early in
/// the request sequence — must answer every repetition of a verify
/// request with exactly the body a direct [`Verifier`] run encodes.
/// Routing, re-dispatch past the dead worker, cache hits on the
/// survivor, and local degradation are all invisible in the bytes.
struct Fleet;

impl Fleet {
    fn check_inner(case: &TestCase, env: &OracleEnv) -> Verdict {
        let budget_spec = format!("states={}", env.max_states.min(2_000));
        let Ok(budget) = Budget::parse_spec(&budget_spec) else {
            return Verdict::Skip("budget spec did not parse".into());
        };
        let visible = 4usize;
        let verifier = Verifier::new(case.channels.iter().map(String::as_str))
            .sessions(env.unfold_bound)
            .max_visible(visible)
            .budget(budget)
            .workers(1)
            .no_intruder();
        let report = match verifier.check(&case.concrete, &case.spec) {
            Ok(r) => r,
            Err(e) => return Verdict::Skip(format!("direct check failed: {e}")),
        };
        let direct = verify_body(&report).render_compact();

        let engine = || {
            Arc::new(VerifierEngine {
                explore_workers: Some(1),
            })
        };
        let worker_opts = || ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_bytes: 1 << 20,
            snapshot: None,
            queue_cap: 8,
            default_timeout_secs: None,
            ..ServerOptions::default()
        };
        let workers = [
            serve(engine(), worker_opts()),
            serve(engine(), worker_opts()),
        ];
        let mut handles = Vec::new();
        for w in workers {
            match w {
                Ok(h) => handles.push(h),
                Err(e) => return Verdict::Skip(format!("cannot start worker: {e}")),
            }
        }
        let coordinator = match coordinate(
            engine(),
            CoordinatorOptions {
                addr: "127.0.0.1:0".into(),
                // A short horizon puts the plan's opening worker kill
                // within the first two requests, deterministically per
                // case.
                chaos: Some(case.seed ^ case.index),
                chaos_horizon: 6,
                heartbeat_ms: 50,
                fail_after_ms: 60_000,
                connect_timeout_ms: 500,
                read_timeout_ms: 30_000,
                hedge_after_ms: 5_000,
                retry_rounds: 2,
                ..CoordinatorOptions::default()
            },
        ) {
            Ok(h) => h,
            Err(e) => {
                for h in handles {
                    h.join();
                }
                return Verdict::Skip(format!("cannot start coordinator: {e}"));
            }
        };
        let request = Json::Obj(vec![
            ("op".to_string(), Json::str("verify")),
            ("concrete".into(), Json::str(case.concrete.to_string())),
            ("abstract".into(), Json::str(case.spec.to_string())),
            (
                "channels".into(),
                Json::str_arr(case.channels.iter().cloned()),
            ),
            ("sessions".into(), Json::count(env.unfold_bound as usize)),
            ("visible".into(), Json::count(visible)),
            ("budget".into(), Json::str(budget_spec)),
            ("intruder".into(), Json::Bool(false)),
        ])
        .render_compact();
        let verdict = Fleet::rides_out_chaos(&coordinator, &handles, &request, &direct);
        coordinator.join();
        for h in handles {
            h.join();
        }
        verdict
    }

    fn rides_out_chaos(
        coordinator: &spi_server::CoordinatorHandle,
        workers: &[spi_server::ServerHandle],
        request: &str,
        direct: &str,
    ) -> Verdict {
        let addr = coordinator.addr().to_string();
        let mut client = match Client::connect(&addr) {
            Ok(c) => c,
            Err(e) => return Verdict::Skip(format!("cannot connect: {e}")),
        };
        for w in workers {
            let join = format!(r#"{{"op":"join","addr":"{}"}}"#, w.addr());
            if client.roundtrip(&join).is_err() {
                return Verdict::Skip("cannot join workers".into());
            }
        }
        // Enough repetitions to straddle the chaos plan's worker kill:
        // fresh compute, survivor re-dispatch, and cache hits must all
        // produce the same bytes.
        for round in 0..4 {
            let line = match client.roundtrip(request) {
                Ok(l) => l,
                Err(e) => return Verdict::Skip(format!("round {round} roundtrip failed: {e}")),
            };
            let response = match Json::parse(&line) {
                Ok(v) => v,
                Err(e) => {
                    return Verdict::Fail(format!(
                        "round {round} response is not JSON: {e} (`{line}`)"
                    ))
                }
            };
            match response.get("status").and_then(Json::as_str) {
                Some("ok") => {}
                Some("error") => {
                    return Verdict::Fail(format!(
                        "fleet answered error where the direct run succeeded: {}",
                        response
                            .get("reason")
                            .and_then(Json::as_str)
                            .unwrap_or("<no reason>")
                    ));
                }
                other => return Verdict::Skip(format!("round {round} response status {other:?}")),
            }
            let Some(body) = response.get("body") else {
                return Verdict::Fail(format!("round {round} response has no body"));
            };
            if body.render_compact() != direct {
                return Verdict::Fail(format!(
                    "fleet verdict differs from the direct run in round {round}:\n  \
                     fleet:  {}\n  direct: {direct}",
                    body.render_compact()
                ));
            }
        }
        Verdict::Pass
    }
}

impl Oracle for Fleet {
    fn name(&self) -> &'static str {
        "fleet"
    }

    fn stride(&self) -> usize {
        8
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        Fleet::check_inner(case, env)
    }
}

/// The hedged-bisimulation decision procedure against the trace engine.
///
/// Two comparisons per case, both over iso-tracked explorations:
///
/// 1. **trace language** — the canonical trace set the bisimulation
///    engine's determinized configuration tree generates must equal the
///    weak trace set of the same LTS, string for string.  This is the
///    sensitive surface: an under-closing hedge (the planted
///    `bisim-skip-analysis` bug) degrades the canonical rendering of
///    names learned by analysis, visible on a *single* system;
/// 2. **verdict** — both procedures must classify the (concrete, spec)
///    question identically, the same cross-check `--engine both` runs.
struct Engines;

impl Oracle for Engines {
    fn name(&self) -> &'static str {
        "engines"
    }

    fn check(&self, case: &TestCase, env: &OracleEnv) -> Verdict {
        const VISIBLE: usize = 4;
        let bisim_opts = BisimOptions {
            skip_analysis: env.injection == Some(Injection::BisimSkipAnalysis),
        };
        // Iso tracking on both arms: the bisimulation engine canonizes
        // through the explorer's isomorphisms, so identity merges would
        // compare bookkeeping, not semantics.
        let base = ExploreOptions {
            faults: case.faults.clone(),
            track_isos: true,
            ..explore_opts(env)
        };
        let spec_lts = match Explorer::new(base.clone()).explore(&case.spec) {
            Ok(lts) => lts,
            Err(e) => return Verdict::Skip(format!("spec exploration failed: {e}")),
        };
        if !spec_lts.complete() {
            return Verdict::Skip(format!(
                "state space truncated at {} states",
                env.max_states
            ));
        }
        let want = weak_traces(&spec_lts, VISIBLE);
        let got = bisim_traces(&spec_lts, VISIBLE, &bisim_opts);
        if got != want {
            let lost = want.difference(&got).count();
            let invented = got.difference(&want).count();
            return Verdict::Fail(format!(
                "the bisimulation engine's canonical trace language differs from the \
                 trace engine's: {lost} trace(s) lost, {invented} invented \
                 (over {} traces)",
                want.len()
            ));
        }
        let concrete_lts = match Explorer::new(base).explore(&case.concrete) {
            Ok(lts) => lts,
            Err(e) => return Verdict::Skip(format!("concrete exploration failed: {e}")),
        };
        let t = trace_preorder_sound(&concrete_lts, &spec_lts, VISIBLE);
        let b = bisim_preorder_sound_with(&concrete_lts, &spec_lts, VISIBLE, &bisim_opts);
        if std::mem::discriminant(&t) != std::mem::discriminant(&b) {
            return Verdict::Fail(format!(
                "decision procedures disagree on the verdict: \
                 trace engine says {t:?}, bisimulation engine says {b:?}"
            ));
        }
        Verdict::Pass
    }
}

fn compare_reports(full: &CampaignReport, resumed: &CampaignReport) -> Verdict {
    if full.identity != resumed.identity {
        return Verdict::Fail(format!(
            "campaign identity changed across resume: {} vs {}",
            full.identity, resumed.identity
        ));
    }
    if full.enumerated != resumed.enumerated || full.tally() != resumed.tally() {
        return Verdict::Fail(format!(
            "resumed campaign disagrees with uninterrupted run: \
             {}/{:?} vs {}/{:?} (enumerated/tally)",
            full.enumerated,
            full.tally(),
            resumed.enumerated,
            resumed.tally()
        ));
    }
    for (f, r) in full.results.iter().zip(&resumed.results) {
        if f.key != r.key || f.outcome != r.outcome {
            return Verdict::Fail(format!(
                "schedule `{}` decided differently after resume",
                f.key
            ));
        }
    }
    Verdict::Pass
}

/// Looks up a built-in oracle by name.
#[must_use]
pub fn oracle_by_name(name: &str) -> Option<Box<dyn Oracle>> {
    builtin_oracles().into_iter().find(|o| o.name() == name)
}

/// The names of the built-in oracles, in documentation order.
#[must_use]
pub fn builtin_names() -> Vec<&'static str> {
    builtin_oracles().iter().map(|o| o.name()).collect()
}

/// Convenience used by shrinking and replay: run one oracle on a
/// standalone process (spec = concrete, no erosion).
#[must_use]
pub fn check_process(
    oracle: &dyn Oracle,
    process: &Process,
    faults: Option<spi_semantics::FaultSpec>,
    channels: &[String],
    env: &OracleEnv,
) -> Verdict {
    let case = TestCase {
        seed: 0,
        index: 0,
        spec: process.clone(),
        concrete: process.clone(),
        channels: channels.to_vec(),
        faults,
    };
    oracle.check(&case, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_server_oracle_is_builtin() {
        assert!(builtin_names().contains(&"server"));
        assert!(oracle_by_name("server").is_some());
    }

    #[test]
    fn the_fleet_oracle_is_builtin() {
        assert!(builtin_names().contains(&"fleet"));
        assert!(oracle_by_name("fleet").is_some());
    }

    #[test]
    fn the_reduce_oracle_is_builtin() {
        assert!(builtin_names().contains(&"reduce"));
        assert!(oracle_by_name("reduce").is_some());
    }

    #[test]
    fn the_reduce_oracle_passes_on_replicated_sessions() {
        let p = parse("!((^m)(c<m> | c(x).observe<x>))").expect("parses");
        let verdict = check_process(&Reduce, &p, None, &["c".to_string()], &OracleEnv::default());
        assert_eq!(verdict, Verdict::Pass);
    }

    #[test]
    fn the_reduce_oracle_catches_the_conflating_pseudo_quotient() {
        // Three interleaved sessions whose nonces cross copies: erasing
        // the copy subtrees conflates states a sound quotient keeps
        // apart, and the lost interleavings show up as missing traces.
        let p = parse("!((^m)(^n)(c<m>.c<n> | c(x).c(y).d<x>.d<y>)) | d(z)").expect("parses");
        let env = OracleEnv {
            unfold_bound: 3,
            max_states: 60_000,
            injection: Some(Injection::SymNoPerm),
        };
        let verdict = check_process(
            &Reduce,
            &p,
            None,
            &["c".to_string(), "d".to_string()],
            &env,
        );
        assert!(
            matches!(verdict, Verdict::Fail(_)),
            "planted conflation went uncaught: {verdict:?}"
        );
    }

    #[test]
    fn injection_directives_round_trip() {
        for inj in [
            Injection::TruncateCanonKeys(2),
            Injection::SymNoPerm,
            Injection::BisimSkipAnalysis,
        ] {
            assert_eq!(Injection::parse(&inj.directive()), Ok(inj));
        }
        assert!(Injection::parse("sym-no-perm:3").is_err());
        assert!(Injection::parse("bisim-skip-analysis:1").is_err());
    }

    #[test]
    fn the_engines_oracle_is_builtin() {
        assert!(builtin_names().contains(&"engines"));
        assert!(oracle_by_name("engines").is_some());
    }

    #[test]
    fn the_engines_oracle_passes_on_encrypted_sessions() {
        let p = parse("(^k)(^m)(c<{m}k> | c(x).observe<x>)").expect("parses");
        let verdict =
            check_process(&Engines, &p, None, &["c".to_string()], &OracleEnv::default());
        assert_eq!(verdict, Verdict::Pass);
    }

    #[test]
    fn the_engines_oracle_catches_the_skipped_analysis_rule() {
        // Two fresh names travel under the same key: with full analysis
        // the canonical traces link each payload to its own nonce index,
        // but the under-closing hedge leaves everything under an
        // encryption opaque — the degraded renderings diverge from the
        // trace engine's on a single system.
        let p = parse("(^k)(^m)(^n)(c<{m}k>.c<{n}k>)").expect("parses");
        let env = OracleEnv {
            injection: Some(Injection::BisimSkipAnalysis),
            ..OracleEnv::default()
        };
        let verdict = check_process(&Engines, &p, None, &["c".to_string()], &env);
        assert!(
            matches!(verdict, Verdict::Fail(_)),
            "planted under-closure went uncaught: {verdict:?}"
        );
        // Without the injection the same process passes.
        let verdict = check_process(
            &Engines,
            &p,
            None,
            &["c".to_string()],
            &OracleEnv::default(),
        );
        assert_eq!(verdict, Verdict::Pass);
    }

    #[test]
    fn the_fleet_oracle_agrees_under_chaos() {
        let p = parse("(^m)c<m>|c(x).observe<x>").expect("parses");
        let verdict = check_process(
            &Fleet,
            &p,
            None,
            &["c".to_string()],
            &OracleEnv::default(),
        );
        assert_eq!(verdict, Verdict::Pass);
    }

    #[test]
    fn the_server_oracle_agrees_with_the_direct_run() {
        let p = parse("(^m)c<m>|c(x).observe<x>").expect("parses");
        let verdict = check_process(
            &Server,
            &p,
            None,
            &["c".to_string()],
            &OracleEnv::default(),
        );
        assert_eq!(verdict, Verdict::Pass);
    }
}
