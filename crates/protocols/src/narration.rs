//! Alice&Bob protocol narrations.
//!
//! The paper presents every protocol twice: as an informal narration
//! (`Message 1  A → B : {M}K_AB`) and as a spi process.  This module
//! provides the narration side as a first-class artifact: an AST
//! ([`Narration`]) with a small text format, which [`compile`](crate::compile)
//! turns into spi processes.
//!
//! # Text format
//!
//! ```text
//! protocol wide-mouthed-frog
//! roles A, B, S
//! public a, b
//! share A S : kas
//! share B S : kbs
//! fresh A : kab
//! fresh A : m
//! 1. A -> S : {b, kab}kas
//! 2. S -> B : {a, kab}kbs
//! 3. A -> B : {m}kab
//! claim B authenticates m from A
//! ```
//!
//! Lines are independent; `--` starts a comment.  Message terms use the
//! spi term syntax (atoms, pairs, `{…}key` encryptions).

use std::collections::BTreeSet;

use spi_syntax::{parse_term, Span, Term};

use crate::ProtocolError;

/// A declared atom and who knows it initially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decl {
    /// `public a` — a free name everyone (including the attacker) knows.
    Public {
        /// The atom.
        atom: String,
    },
    /// `share A B : k` — a restricted name initially known to the listed
    /// roles (a long-term shared key).
    Share {
        /// The roles that know the atom.
        roles: Vec<String>,
        /// The atom.
        atom: String,
    },
    /// `fresh A : m` — a name the role creates freshly in each run
    /// (message payloads, session keys, nonces).
    Fresh {
        /// The creating role.
        role: String,
        /// The atom.
        atom: String,
    },
}

impl Decl {
    /// The declared atom's spelling.
    #[must_use]
    pub fn atom(&self) -> &str {
        match self {
            Decl::Public { atom } | Decl::Share { atom, .. } | Decl::Fresh { atom, .. } => atom,
        }
    }
}

/// One message exchange: `n. from -> to : term`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The message number, as written.
    pub number: usize,
    /// The sending role.
    pub from: String,
    /// The receiving role.
    pub to: String,
    /// The message pattern, over declared atoms.
    pub message: Term,
}

/// An authentication claim: `claim B authenticates m from A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The role that requires authentication.
    pub role: String,
    /// The atom whose received value must originate from `from`.
    pub atom: String,
    /// The expected originator.
    pub from: String,
}

/// A parsed protocol narration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Narration {
    /// The protocol's name.
    pub name: String,
    /// The roles, in declaration order (this fixes tree positions).
    pub roles: Vec<String>,
    /// Atom declarations.
    pub decls: Vec<Decl>,
    /// The message exchanges, in order.
    pub steps: Vec<Step>,
    /// The authentication claims.
    pub claims: Vec<Claim>,
}

impl Narration {
    /// Parses the text format described in the
    /// [module documentation](self).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Narration`] for malformed lines, unknown
    /// roles and undeclared atoms.
    pub fn parse(src: &str) -> Result<Narration, ProtocolError> {
        let mut name = String::new();
        let mut roles: Vec<String> = Vec::new();
        let mut decls: Vec<Decl> = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        let mut claims: Vec<Claim> = Vec::new();

        let mut offset = 0usize;
        for raw_line in src.lines() {
            let line_span = Span::new(offset, offset + raw_line.len());
            offset += raw_line.len() + 1;
            let line = raw_line.split("--").next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| ProtocolError::Narration {
                message,
                span: line_span,
            };

            if let Some(rest) = line.strip_prefix("protocol ") {
                name = rest.trim().to_owned();
            } else if let Some(rest) = line.strip_prefix("roles ") {
                roles = rest.split(',').map(|r| r.trim().to_owned()).collect();
                if roles.iter().any(String::is_empty) {
                    return Err(err("empty role name".into()));
                }
            } else if let Some(rest) = line.strip_prefix("public ") {
                for atom in rest.split(',') {
                    decls.push(Decl::Public {
                        atom: atom.trim().to_owned(),
                    });
                }
            } else if let Some(rest) = line.strip_prefix("share ") {
                let (who, atom) = rest
                    .split_once(':')
                    .ok_or_else(|| err("share needs `roles : atom`".into()))?;
                let share_roles: Vec<String> = who.split_whitespace().map(str::to_owned).collect();
                for r in &share_roles {
                    if !roles.contains(r) {
                        return Err(err(format!("unknown role {r}")));
                    }
                }
                decls.push(Decl::Share {
                    roles: share_roles,
                    atom: atom.trim().to_owned(),
                });
            } else if let Some(rest) = line.strip_prefix("fresh ") {
                let (role, atom) = rest
                    .split_once(':')
                    .ok_or_else(|| err("fresh needs `role : atom`".into()))?;
                let role = role.trim().to_owned();
                if !roles.contains(&role) {
                    return Err(err(format!("unknown role {role}")));
                }
                decls.push(Decl::Fresh {
                    role,
                    atom: atom.trim().to_owned(),
                });
            } else if let Some(rest) = line.strip_prefix("claim ") {
                // claim <role> authenticates <atom> from <role>
                let words: Vec<&str> = rest.split_whitespace().collect();
                match words.as_slice() {
                    [role, "authenticates", atom, "from", from] => {
                        for r in [role, from] {
                            if !roles.iter().any(|x| x == r) {
                                return Err(err(format!("unknown role {r}")));
                            }
                        }
                        claims.push(Claim {
                            role: (*role).to_owned(),
                            atom: (*atom).to_owned(),
                            from: (*from).to_owned(),
                        });
                    }
                    _ => {
                        return Err(err(
                            "claim syntax: claim <role> authenticates <atom> from <role>".into(),
                        ))
                    }
                }
            } else if line.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                // n. A -> B : term
                let (num, rest) = line
                    .split_once('.')
                    .ok_or_else(|| err("step needs `n. A -> B : term`".into()))?;
                let number: usize = num
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad step number {num:?}")))?;
                let (route, message) = rest
                    .split_once(':')
                    .ok_or_else(|| err("step needs `: term`".into()))?;
                let (from, to) = route
                    .split_once("->")
                    .ok_or_else(|| err("step needs `A -> B`".into()))?;
                let (from, to) = (from.trim().to_owned(), to.trim().to_owned());
                for r in [&from, &to] {
                    if !roles.contains(r) {
                        return Err(err(format!("unknown role {r}")));
                    }
                }
                let message = parse_term(message.trim())
                    .map_err(|e| err(format!("bad message term: {e}")))?;
                steps.push(Step {
                    number,
                    from,
                    to,
                    message,
                });
            } else {
                return Err(err(format!("unrecognized line {line:?}")));
            }
        }

        let n = Narration {
            name,
            roles,
            decls,
            steps,
            claims,
        };
        n.validate()?;
        Ok(n)
    }

    /// The declaration for `atom`, if any.
    #[must_use]
    pub fn decl_of(&self, atom: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.atom() == atom)
    }

    /// The atoms a role knows before the run starts: its fresh atoms,
    /// shared atoms listing it, and all public atoms.
    #[must_use]
    pub fn initial_knowledge(&self, role: &str) -> BTreeSet<String> {
        self.decls
            .iter()
            .filter(|d| match d {
                Decl::Public { .. } => true,
                Decl::Share { roles, .. } => roles.iter().any(|r| r == role),
                Decl::Fresh { role: r, .. } => r == role,
            })
            .map(|d| d.atom().to_owned())
            .collect()
    }

    fn validate(&self) -> Result<(), ProtocolError> {
        let bad = |message: String| ProtocolError::Narration {
            message,
            span: Span::default(),
        };
        if self.roles.is_empty() {
            return Err(bad("a narration needs at least one role".into()));
        }
        for s in &self.steps {
            for atom in atoms_of(&s.message) {
                if self.decl_of(&atom).is_none() {
                    return Err(bad(format!(
                        "message {} uses undeclared atom {atom}",
                        s.number
                    )));
                }
            }
        }
        for c in &self.claims {
            if self.decl_of(&c.atom).is_none() {
                return Err(bad(format!("claim uses undeclared atom {}", c.atom)));
            }
        }
        Ok(())
    }

    /// Renders the narration back in the text format.
    #[must_use]
    pub fn display(&self) -> String {
        let mut out = format!("protocol {}\nroles {}\n", self.name, self.roles.join(", "));
        for d in &self.decls {
            match d {
                Decl::Public { atom } => out.push_str(&format!("public {atom}\n")),
                Decl::Share { roles, atom } => {
                    out.push_str(&format!("share {} : {atom}\n", roles.join(" ")));
                }
                Decl::Fresh { role, atom } => {
                    out.push_str(&format!("fresh {role} : {atom}\n"));
                }
            }
        }
        for s in &self.steps {
            out.push_str(&format!(
                "{}. {} -> {} : {}\n",
                s.number, s.from, s.to, s.message
            ));
        }
        for c in &self.claims {
            out.push_str(&format!(
                "claim {} authenticates {} from {}\n",
                c.role, c.atom, c.from
            ));
        }
        out
    }
}

/// All atom spellings occurring in a message pattern.
pub(crate) fn atoms_of(t: &Term) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    fn go(t: &Term, out: &mut BTreeSet<String>) {
        match t {
            Term::Name(n) => {
                out.insert(n.to_string());
            }
            Term::Var(v) => {
                out.insert(v.to_string());
            }
            Term::Pair(a, b) => {
                go(a, out);
                go(b, out);
            }
            Term::Enc { body, key } => {
                for x in body {
                    go(x, out);
                }
                go(key, out);
            }
            Term::Located { inner, .. } => go(inner, out),
        }
    }
    go(t, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const WMF: &str = "\
protocol wide-mouthed-frog
roles A, B, S
public a, b
share A S : kas
share B S : kbs
fresh A : kab
fresh A : m
1. A -> S : {b, kab}kas
2. S -> B : {a, kab}kbs
3. A -> B : {m}kab
claim B authenticates m from A
";

    #[test]
    fn parses_the_wide_mouthed_frog() {
        let n = Narration::parse(WMF).unwrap();
        assert_eq!(n.name, "wide-mouthed-frog");
        assert_eq!(n.roles, vec!["A", "B", "S"]);
        assert_eq!(n.steps.len(), 3);
        assert_eq!(n.claims.len(), 1);
        assert_eq!(n.steps[0].from, "A");
        assert_eq!(n.steps[0].to, "S");
    }

    #[test]
    fn initial_knowledge_follows_declarations() {
        let n = Narration::parse(WMF).unwrap();
        let a = n.initial_knowledge("A");
        assert!(a.contains("kas") && a.contains("kab") && a.contains("m") && a.contains("a"));
        assert!(!a.contains("kbs"));
        let s = n.initial_knowledge("S");
        assert!(s.contains("kas") && s.contains("kbs"));
        assert!(!s.contains("m"));
    }

    #[test]
    fn display_round_trips() {
        let n = Narration::parse(WMF).unwrap();
        let again = Narration::parse(&n.display()).unwrap();
        assert_eq!(n, again);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let n = Narration::parse(
            "protocol t\n\nroles A, B -- two parties\nfresh A : m\n1. A -> B : m\n",
        )
        .unwrap();
        assert_eq!(n.steps.len(), 1);
    }

    #[test]
    fn unknown_roles_are_rejected() {
        let err = Narration::parse("protocol t\nroles A\n1. A -> B : m\n").unwrap_err();
        assert!(err.to_string().contains("unknown role B"));
    }

    #[test]
    fn undeclared_atoms_are_rejected() {
        let err = Narration::parse("protocol t\nroles A, B\n1. A -> B : m\n").unwrap_err();
        assert!(err.to_string().contains("undeclared atom m"));
    }

    #[test]
    fn malformed_lines_carry_spans() {
        let err = Narration::parse("protocol t\nroles A\nnonsense here\n").unwrap_err();
        match err {
            ProtocolError::Narration { span, .. } => assert!(span.start > 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_claims_are_rejected() {
        let err = Narration::parse(
            "protocol t\nroles A, B\nfresh A : m\n1. A -> B : m\nclaim B trusts m\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("claim syntax"));
    }
}
