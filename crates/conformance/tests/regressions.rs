//! Replays the shrunk-reproducer corpus and runs the cheap oracles over
//! the repository's example protocols as a fixed seed corpus.

use std::path::PathBuf;

use spi_conformance::corpus::replay_dir;
use spi_conformance::oracle::{check_process, oracle_by_name, OracleEnv, Verdict};
use spi_syntax::{parse, parse_program, Process};

/// Example files are either bare processes or `def`/`system` programs.
fn parse_any(src: &str) -> Result<Process, String> {
    let is_program = src
        .lines()
        .any(|l| l.trim_start().starts_with("def ") || l.trim_start().starts_with("system"));
    if is_program {
        parse_program(src).map(|p| p.system).map_err(|e| e.to_string())
    } else {
        parse(src).map_err(|e| e.to_string())
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn regression_corpus_replays_clean() {
    let dir = repo_root().join("conformance/corpus/regressions");
    let (replayed, failures) = replay_dir(&dir);
    assert!(
        failures.is_empty(),
        "{} of {replayed} reproducers misbehaved:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(
        replayed > 0,
        "the committed corpus should contain at least one reproducer"
    );
}

#[test]
fn example_protocols_pass_the_cheap_oracles() {
    let dir = repo_root().join("examples/protocols");
    let env = OracleEnv::default();
    let channels = vec!["c".to_string()];
    let mut checked = 0;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/protocols exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "spi"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable");
        let system = parse_any(&src)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        for name in ["roundtrip", "workers", "cowstate"] {
            let oracle = oracle_by_name(name).expect("built-in oracle");
            let verdict = check_process(oracle.as_ref(), &system, None, &channels, &env);
            if let Verdict::Fail(msg) = verdict {
                panic!("{} fails oracle {name}: {msg}", path.display());
            }
        }
        checked += 1;
    }
    assert!(checked >= 3, "expected the pm protocol family, saw {checked}");
}
