//! Secrecy: can the intruder ever derive a protocol secret?
//!
//! The paper notes (Section 5.1) that localizing `A`'s output "would give
//! a secrecy guarantee on the message, because the process `A` would be
//! sure that `B` is the only possible receiver of `M`".  This module
//! checks the standard Dolev–Yao secrecy property on an explored system:
//! in no reachable state can the intruder *derive* a restricted name with
//! one of the given base spellings.

use spi_semantics::RtTerm;
use spi_syntax::Name;

use crate::{CoverageStats, ExploreStats, Lts, ResourceKind};

/// The outcome of a secrecy check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecrecyReport {
    /// `true` when no watched secret is derivable in any explored state.
    pub holds: bool,
    /// Human-readable descriptions of the leaks found (state index,
    /// secret display name).
    pub leaks: Vec<String>,
    /// The exploration behind the verdict.
    pub stats: ExploreStats,
    /// What the exploration covered.
    pub coverage: CoverageStats,
    /// The resource that truncated the exploration, if any.
    pub exhausted: Option<ResourceKind>,
}

impl SecrecyReport {
    /// Returns `true` when secrecy holds within the explored bounds.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// Returns `true` when the verdict is sound as stated: a leak found
    /// on any explored prefix is real, but "no leak" claims require a
    /// complete exploration.
    #[must_use]
    pub fn conclusive(&self) -> bool {
        !self.holds || self.exhausted.is_none()
    }
}

/// Checks that no restricted name whose base spelling is in `secrets`
/// ever becomes derivable by the intruder, across all states of `lts`.
///
/// The system must have been explored *with* an intruder for the verdict
/// to be meaningful (otherwise knowledge is empty and secrecy trivially
/// holds).
///
/// # Example
///
/// ```
/// use spi_syntax::{parse, Name};
/// use spi_verify::{check_secrecy, ExploreOptions, Explorer, IntruderSpec};
///
/// let opts = ExploreOptions {
///     intruder: Some(IntruderSpec::new("1".parse()?, ["c"])),
///     ..ExploreOptions::default()
/// };
/// // The secret travels encrypted: it stays secret...
/// let lts = Explorer::new(opts.clone())
///     .explore(&parse("(^c)(((^k)(^m) c<{m}k>) | 0)")?)?;
/// assert!(check_secrecy(&lts, &[Name::new("m")]).holds());
/// // ...in clear, it leaks.
/// let lts = Explorer::new(opts)
///     .explore(&parse("(^c)(((^m) c<m>) | 0)")?)?;
/// assert!(!check_secrecy(&lts, &[Name::new("m")]).holds());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn check_secrecy(lts: &Lts, secrets: &[Name]) -> SecrecyReport {
    let mut leaks = Vec::new();
    for (idx, state) in lts.states.iter().enumerate() {
        for (id, entry) in state.config.names().iter() {
            if !entry.restricted || !secrets.contains(&entry.base) {
                continue;
            }
            if state.knowledge.can_derive(&RtTerm::Id(id)) {
                leaks.push(format!(
                    "state {idx}: intruder derives {}",
                    state.config.names().display(id)
                ));
            }
        }
    }
    leaks.sort();
    leaks.dedup();
    SecrecyReport {
        holds: leaks.is_empty(),
        leaks,
        stats: lts.stats,
        coverage: lts.coverage,
        exhausted: lts.exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExploreOptions, Explorer, IntruderSpec};
    use spi_syntax::parse;

    fn explore_with_intruder(src: &str) -> Lts {
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        Explorer::new(ExploreOptions {
            intruder: Some(spec),
            ..ExploreOptions::default()
        })
        .explore(&parse(src).expect("parses"))
        .expect("explores")
    }

    #[test]
    fn plaintext_secrets_leak() {
        let lts = explore_with_intruder("(^c)(((^m) c<m>) | 0)");
        let report = check_secrecy(&lts, &[Name::new("m")]);
        assert!(!report.holds());
        assert!(!report.leaks.is_empty());
    }

    #[test]
    fn encrypted_secrets_hold() {
        let lts = explore_with_intruder("(^c)(((^k)(^m) c<{m}k>) | 0)");
        let report = check_secrecy(&lts, &[Name::new("m"), Name::new("k")]);
        assert!(report.holds(), "{:?}", report.leaks);
    }

    #[test]
    fn leaked_keys_compromise_contents() {
        // The key is sent in clear after the ciphertext.
        let lts = explore_with_intruder("(^c)(((^k)(^m) c<{m}k>.c<k>) | 0)");
        let report = check_secrecy(&lts, &[Name::new("m")]);
        assert!(
            !report.holds(),
            "a late key leak opens the stored ciphertext"
        );
    }

    #[test]
    fn localized_outputs_protect_secrecy() {
        // The paper's remark: A's output localized at B cannot be
        // intercepted — even though it is not encrypted.
        let lts = explore_with_intruder("(^c)(((^m) c@(0.1)<m> | c(z)) | 0)");
        let report = check_secrecy(&lts, &[Name::new("m")]);
        assert!(report.holds(), "{:?}", report.leaks);
    }

    #[test]
    fn truncated_holds_are_not_conclusive() {
        use crate::Budget;
        let spec = IntruderSpec::new("1".parse().unwrap(), ["c"]);
        let lts = Explorer::new(ExploreOptions {
            intruder: Some(spec),
            budget: Budget::unlimited().states(1),
            ..ExploreOptions::default()
        })
        .explore(&parse("(^c)(((^m) c<m>) | 0)").unwrap())
        .unwrap();
        let report = check_secrecy(&lts, &[Name::new("m")]);
        // The leak lies beyond the truncation: "holds" but inconclusive.
        assert!(report.holds());
        assert!(!report.conclusive());
        assert_eq!(report.exhausted, Some(crate::ResourceKind::States));
    }

    #[test]
    fn unwatched_names_are_ignored() {
        let lts = explore_with_intruder("(^c)(((^m) c<m>) | 0)");
        let report = check_secrecy(&lts, &[Name::new("other")]);
        assert!(report.holds());
    }
}
