//! Canonical state keys: configuration identity up to renaming of
//! machine-generated names.
//!
//! Two interleavings that allocate the same restricted names in different
//! orders produce configurations that differ only in [`NameId`] numbering.
//! The canonical key renumbers ids by first occurrence in a deterministic
//! left-to-right traversal, so explorers can deduplicate such states.
//! Free names are serialized by spelling (their identity), restricted
//! names by their creator position (which is part of the semantics — it
//! is what the authentication primitives observe).

use std::collections::HashMap;
use std::fmt::Write as _;

use spi_addr::{Path, ProcTree};

use crate::{Config, LeafState, NameId, NameTable, RtChanIndex, RtChannel, RtProcess, RtTerm};

/// Serializes a composite node's creator stamp.
fn write_creator(creator: &Option<Path>, out: &mut String) {
    match creator {
        Some(p) => {
            let _ = write!(out, "#{}", p.to_bits());
        }
        None => out.push_str("#-"),
    }
}

/// Renumbers [`NameId`]s by first occurrence while serializing terms.
///
/// Explorers that carry extra state (e.g. intruder knowledge) extend the
/// configuration key by serializing their terms through the same
/// canonicalizer.
#[derive(Debug, Default)]
pub struct Canonicalizer {
    map: HashMap<NameId, usize>,
}

impl Canonicalizer {
    /// A fresh canonicalizer.
    #[must_use]
    pub fn new() -> Canonicalizer {
        Canonicalizer::default()
    }

    fn canon_id(&mut self, id: NameId, names: &NameTable, out: &mut String) {
        let e = names.entry(id);
        if e.restricted {
            let next = self.map.len();
            let k = *self.map.entry(id).or_insert(next);
            let creator = e
                .creator
                .as_ref()
                .map_or_else(|| "-".to_owned(), Path::to_bits);
            let _ = write!(out, "r{k}@{creator}");
        } else {
            let _ = write!(out, "f:{}", e.base);
        }
    }

    /// Serializes a term into `out` with canonical name numbering.
    pub fn write_term(&mut self, t: &RtTerm, names: &NameTable, out: &mut String) {
        match t {
            RtTerm::Var(v) => {
                let _ = write!(out, "v:{v}");
            }
            RtTerm::Sym(n) => {
                let _ = write!(out, "s:{n}");
            }
            RtTerm::Id(id) => self.canon_id(*id, names, out),
            RtTerm::Pair { fst, snd, creator } => {
                out.push('(');
                self.write_term(fst, names, out);
                out.push(',');
                self.write_term(snd, names, out);
                out.push(')');
                write_creator(creator, out);
            }
            RtTerm::Enc { body, key, creator } => {
                out.push('{');
                for (i, x) in body.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.write_term(x, names, out);
                }
                out.push('}');
                self.write_term(key, names, out);
                write_creator(creator, out);
            }
            RtTerm::LocatedLit { addr, inner } => {
                let _ = write!(
                    out,
                    "L[{}.{}]",
                    addr.observer().to_bits(),
                    addr.target().to_bits()
                );
                self.write_term(inner, names, out);
            }
        }
    }

    fn write_channel(&mut self, ch: &RtChannel, names: &NameTable, out: &mut String) {
        self.write_term(&ch.subject, names, out);
        match &ch.index {
            RtChanIndex::Plain => {}
            RtChanIndex::At(a) => {
                let _ = write!(out, "@?{}.{}", a.observer().to_bits(), a.target().to_bits());
            }
            RtChanIndex::AtAbs(p) => {
                let _ = write!(out, "@{}", p.to_bits());
            }
            RtChanIndex::Loc(l) => {
                let _ = write!(out, "@^{l}");
            }
        }
    }

    /// Serializes a residual process into `out`.
    pub fn write_process(&mut self, p: &RtProcess, names: &NameTable, out: &mut String) {
        match p {
            RtProcess::Nil => out.push('0'),
            RtProcess::Output(ch, t, cont) => {
                out.push('O');
                self.write_channel(ch, names, out);
                out.push('<');
                self.write_term(t, names, out);
                out.push('>');
                self.write_process(cont, names, out);
            }
            RtProcess::Input(ch, x, cont) => {
                out.push('I');
                self.write_channel(ch, names, out);
                let _ = write!(out, "({x})");
                self.write_process(cont, names, out);
            }
            RtProcess::Restrict(n, body) => {
                let _ = write!(out, "N({n})");
                self.write_process(body, names, out);
            }
            RtProcess::Par(l, r) => {
                out.push('[');
                self.write_process(l, names, out);
                out.push('|');
                self.write_process(r, names, out);
                out.push(']');
            }
            RtProcess::Match(a, b, cont) => {
                out.push('M');
                self.write_term(a, names, out);
                out.push('=');
                self.write_term(b, names, out);
                self.write_process(cont, names, out);
            }
            RtProcess::AddrMatchT(a, b, cont) => {
                out.push('A');
                self.write_term(a, names, out);
                out.push('~');
                self.write_term(b, names, out);
                self.write_process(cont, names, out);
            }
            RtProcess::AddrMatchL(a, l, cont) => {
                out.push('A');
                self.write_term(a, names, out);
                let _ = write!(out, "~@{}.{}", l.observer().to_bits(), l.target().to_bits());
                self.write_process(cont, names, out);
            }
            RtProcess::Bang(body) => {
                out.push('!');
                self.write_process(body, names, out);
            }
            RtProcess::Split {
                pair,
                fst,
                snd,
                body,
            } => {
                out.push('S');
                self.write_term(pair, names, out);
                let _ = write!(out, "({fst},{snd})");
                self.write_process(body, names, out);
            }
            RtProcess::Case {
                scrutinee,
                binders,
                key,
                body,
            } => {
                out.push('C');
                self.write_term(scrutinee, names, out);
                out.push('{');
                for (i, b) in binders.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push('}');
                self.write_term(key, names, out);
                out.push(':');
                self.write_process(body, names, out);
            }
        }
    }

    fn write_leaf(&mut self, leaf: &LeafState, names: &NameTable, out: &mut String) {
        match leaf {
            LeafState::Dead => out.push('D'),
            LeafState::Out {
                chan,
                payload,
                cont,
            } => {
                out.push('o');
                self.write_channel(chan, names, out);
                out.push('<');
                self.write_term(payload, names, out);
                out.push('>');
                self.write_process(cont, names, out);
            }
            LeafState::In { chan, var, cont } => {
                out.push('i');
                self.write_channel(chan, names, out);
                let _ = write!(out, "({var})");
                self.write_process(cont, names, out);
            }
            LeafState::Bang { body, unfolded } => {
                let _ = write!(out, "b{unfolded}");
                self.write_process(body, names, out);
            }
        }
    }

    fn write_tree(&mut self, tree: &ProcTree<LeafState>, names: &NameTable, out: &mut String) {
        match tree {
            ProcTree::Leaf(l) => self.write_leaf(l, names, out),
            ProcTree::Node(l, r) => {
                out.push('(');
                self.write_tree(l, names, out);
                out.push(';');
                self.write_tree(r, names, out);
                out.push(')');
            }
        }
    }
}

impl Config {
    /// Serializes the configuration into `out` through `canon`, renaming
    /// machine names canonically.  Explorers append their own state (e.g.
    /// intruder knowledge) with the same canonicalizer to form a full
    /// state key.
    pub fn write_canonical(&self, canon: &mut Canonicalizer, out: &mut String) {
        canon.write_tree(&self.tree, &self.names, out);
    }

    /// The canonical key of this configuration alone.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let mut canon = Canonicalizer::new();
        let mut out = String::new();
        self.write_canonical(&mut canon, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Action;
    use spi_syntax::parse;

    fn cfg(src: &str) -> Config {
        Config::from_process(&parse(src).expect("parses")).expect("loads")
    }

    fn p(s: &str) -> Path {
        s.parse().expect("valid path")
    }

    #[test]
    fn keys_are_stable_for_equal_configs() {
        let a = cfg("(^m) c<m> | d(x)");
        let b = cfg("(^m) c<m> | d(x)");
        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn keys_distinguish_different_configs() {
        assert_ne!(
            cfg("(^m) c<m>").canonical_key(),
            cfg("(^m) d<m>").canonical_key()
        );
        assert_ne!(
            cfg("c<m> | d(x)").canonical_key(),
            cfg("d(x) | c<m>").canonical_key(),
            "tree shape is semantically relevant (addresses)"
        );
    }

    #[test]
    fn keys_identify_interleavings_with_permuted_allocation() {
        // Two independent pairs; allocate in either order.
        let src = "((^m) c<m> | c(x)) | ((^n) d<n> | d(y))";
        let mut left_first = cfg(src);
        let mut right_first = cfg(src);
        let comm_left = Action::Comm {
            out_path: p("00"),
            in_path: p("01"),
        };
        let comm_right = Action::Comm {
            out_path: p("10"),
            in_path: p("11"),
        };
        left_first.fire(&comm_left).unwrap();
        left_first.fire(&comm_right).unwrap();
        right_first.fire(&comm_right).unwrap();
        right_first.fire(&comm_left).unwrap();
        // The raw configurations differ in NameId numbering...
        // ...but the canonical keys agree.
        assert_eq!(left_first.canonical_key(), right_first.canonical_key());
    }

    #[test]
    fn free_names_serialize_by_spelling() {
        let key = cfg("c<m>").canonical_key();
        assert!(key.contains("f:c"));
        assert!(key.contains("f:m"));
    }

    #[test]
    fn restricted_names_serialize_with_creator() {
        let key = cfg("(^m) c<m>").canonical_key();
        assert!(key.contains("r0@e"), "creator position recorded: {key}");
    }
}
