//! The tests `(T, β)` of Definition 3.
//!
//! A process `P` *passes* a test `(T, β)` when `(P | T)` converges on the
//! barb `β`: some sequence of silent steps reaches a configuration that
//! can do an I/O on the free channel `β`.  Testers are ordinary processes
//! and may use the address-matching operator, giving them the paper's
//! "global view of the network": they can check *where* a received
//! message was created.

use spi_semantics::Barb;
use spi_syntax::Process;

use crate::{ExploreOptions, Explorer, Label, VerifyError};

/// A witness run for a passed test: the silent steps leading to the barb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestWitness {
    /// Human-readable descriptions of the steps, in order.
    pub steps: Vec<String>,
    /// The barb reached.
    pub barb: Barb,
}

/// Checks convergence `P ⇓ β`: is a state exhibiting the barb reachable
/// by silent steps?  Returns a witness run when so.
///
/// # Errors
///
/// Propagates exploration errors (open process, state budget).
///
/// # Example
///
/// ```
/// use spi_semantics::Barb;
/// use spi_syntax::{parse, Name};
/// use spi_verify::{may_exhibit, ExploreOptions};
///
/// let p = parse("(^m)(c<m> | c(x).observe<x>)")?;
/// let beta = Barb { chan: Name::new("observe"), output: true };
/// assert!(may_exhibit(&p, &beta, &ExploreOptions::default())?.is_some());
/// let gamma = Barb { chan: Name::new("other"), output: true };
/// assert!(may_exhibit(&p, &gamma, &ExploreOptions::default())?.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn may_exhibit(
    process: &Process,
    barb: &Barb,
    opts: &ExploreOptions,
) -> Result<Option<TestWitness>, VerifyError> {
    may_exhibit_bounded(process, barb, opts).map(|(w, _)| w)
}

/// Like [`may_exhibit`], additionally reporting whether the exploration
/// behind the answer was *complete*.  A witness is sound either way (it
/// lives on the explored prefix); a `None` from a truncated exploration
/// is **not** evidence of absence.
///
/// # Errors
///
/// Propagates exploration errors (open process).
pub fn may_exhibit_bounded(
    process: &Process,
    barb: &Barb,
    opts: &ExploreOptions,
) -> Result<(Option<TestWitness>, bool), VerifyError> {
    let lts = Explorer::new(opts.clone()).explore(process)?;
    let complete = lts.complete();
    // BFS over silent edges only: convergence is τ*.
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; lts.states.len()];
    let mut seen = vec![false; lts.states.len()];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(s) = queue.pop_front() {
        if lts.states[s].barbs.contains(barb) {
            // Reconstruct the witness.
            let mut rev = Vec::new();
            let mut cur = s;
            while let Some((prev, edge_idx)) = parent[cur] {
                let (label, _) = &lts.states[prev].edges[edge_idx];
                rev.push(label.desc().display(lts.states[cur].config.names()));
                cur = prev;
            }
            rev.reverse();
            return Ok((
                Some(TestWitness {
                    steps: rev,
                    barb: barb.clone(),
                }),
                complete,
            ));
        }
        for (edge_idx, (label, tgt)) in lts.states[s].edges.iter().enumerate() {
            // Every τ edge is silent: internal steps, intruder moves, and
            // network faults alike.
            if matches!(label, Label::Tau(_)) && !seen[*tgt] {
                seen[*tgt] = true;
                parent[*tgt] = Some((s, edge_idx));
                queue.push_back(*tgt);
            }
        }
    }
    Ok((None, complete))
}

/// Runs the paper's testing scenario: composes `system | tester` and
/// checks convergence on `barb`.
///
/// The system is typically `(νC)(P | E)` — protocol plus attacker with
/// the protocol channels restricted — and the tester observes the
/// continuations, e.g. `observe(z).[z ~ @(l)] beta<z>`.
///
/// # Errors
///
/// Propagates exploration errors.
pub fn passes_test(
    system: &Process,
    tester: &Process,
    barb: &Barb,
    opts: &ExploreOptions,
) -> Result<Option<TestWitness>, VerifyError> {
    let composed = Process::par(system.clone(), tester.clone());
    may_exhibit(&composed, barb, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_syntax::{parse, Name};

    fn beta() -> Barb {
        Barb {
            chan: Name::new("beta"),
            output: true,
        }
    }

    #[test]
    fn immediate_barbs_pass() {
        let p = parse("beta<ok>").unwrap();
        let w = may_exhibit(&p, &beta(), &ExploreOptions::default())
            .unwrap()
            .expect("barb");
        assert!(w.steps.is_empty(), "no steps needed");
    }

    #[test]
    fn convergence_crosses_internal_steps() {
        let p = parse("(^s)(s<go> | s(x).beta<x>)").unwrap();
        let w = may_exhibit(&p, &beta(), &ExploreOptions::default())
            .unwrap()
            .expect("barb after one τ");
        assert_eq!(w.steps.len(), 1);
        assert!(w.steps[0].starts_with("comm"));
    }

    #[test]
    fn input_barbs_are_distinct_from_output_barbs() {
        let p = parse("beta(x)").unwrap();
        assert!(may_exhibit(&p, &beta(), &ExploreOptions::default())
            .unwrap()
            .is_none());
        let input_barb = Barb {
            chan: Name::new("beta"),
            output: false,
        };
        assert!(may_exhibit(&p, &input_barb, &ExploreOptions::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn tester_with_address_matching_detects_origin() {
        // The system sends a fresh name; the tester at ‖1 accepts only if
        // it was created by the component at ‖0‖0 (relative 1.00).
        let system = parse("(^m) observe<m> | 0").unwrap();
        let tester = parse("observe(z).[z ~ @(1.00)] beta<z>").unwrap();
        let w = passes_test(&system, &tester, &beta(), &ExploreOptions::default()).unwrap();
        assert!(w.is_some(), "origin matches");
        // A tester expecting a different origin fails.
        let wrong = parse("observe(z).[z ~ @(1.01)] beta<z>").unwrap();
        let w = passes_test(&system, &wrong, &beta(), &ExploreOptions::default()).unwrap();
        assert!(w.is_none(), "origin mismatch");
    }

    #[test]
    fn restricted_channels_are_not_barbs() {
        let p = parse("(^beta) beta<x>").unwrap();
        assert!(may_exhibit(&p, &beta(), &ExploreOptions::default())
            .unwrap()
            .is_none());
    }
}
