//! The content-addressed result cache.
//!
//! Entries are keyed by the canonical request digest and hold the
//! rendered (compact) response body.  Capacity is a **byte budget**
//! accounted through the toolkit's existing resource-governor types:
//! the budget rides the [`Budget`] knowledge dimension and every
//! admission decision goes through [`Governor::admit_knowledge`], so
//! the cache degrades exactly like an exploration does — by shedding
//! the least-recently-used entries, never by unbounded growth.

use std::collections::HashMap;

use spi_verify::{Budget, Governor};

/// One cached result.
#[derive(Debug, Clone)]
struct Entry {
    op: String,
    body: String,
    bytes: usize,
    last_used: u64,
}

/// An LRU result cache under a byte budget.
#[derive(Debug)]
pub struct ResultCache {
    governor: Governor,
    entries: HashMap<String, Entry>,
    used_bytes: usize,
    tick: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
}

impl ResultCache {
    /// A cache bounded at `max_bytes` (keys + ops + bodies).
    #[must_use]
    pub fn new(max_bytes: usize) -> ResultCache {
        ResultCache {
            governor: Governor::new(Budget::unlimited().knowledge(max_bytes)),
            entries: HashMap::new(),
            used_bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The configured byte budget.
    #[must_use]
    pub fn max_bytes(&self) -> usize {
        self.governor.budget().max_knowledge
    }

    /// Bytes currently held.  Invariant: never exceeds
    /// [`ResultCache::max_bytes`].
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of cached results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a digest, counting the hit/miss and refreshing recency.
    /// Returns the `(op, body)` pair.
    pub fn get(&mut self, key: &str) -> Option<(String, String)> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some((e.op.clone(), e.body.clone()))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting least-recently-used entries until the
    /// byte budget admits it.  An entry larger than the whole budget is
    /// refused outright (caching it could never satisfy the invariant).
    pub fn insert(&mut self, key: String, op: String, body: String) {
        let cost = key.len() + op.len() + body.len();
        // A single oversized entry can never be admitted.
        let mut probe = self.governor.clone();
        if !probe.admit_knowledge(cost) {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.bytes;
        }
        while !self
            .governor
            .clone()
            .admit_knowledge(self.used_bytes + cost)
        {
            self.evict_lru();
        }
        self.tick += 1;
        self.used_bytes += cost;
        self.entries.insert(
            key,
            Entry {
                op,
                body,
                bytes: cost,
                last_used: self.tick,
            },
        );
    }

    fn evict_lru(&mut self) {
        let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        else {
            return;
        };
        if let Some(e) = self.entries.remove(&victim) {
            self.used_bytes -= e.bytes;
            self.evictions += 1;
        }
    }

    /// Every entry as `(key, op, body)`, least-recently-used first —
    /// the snapshot order, so a reload reconstructs the same recency.
    #[must_use]
    pub fn entries_lru(&self) -> Vec<(String, String, String)> {
        let mut all: Vec<(&String, &Entry)> = self.entries.iter().collect();
        all.sort_by_key(|(_, e)| e.last_used);
        all.into_iter()
            .map(|(k, e)| (k.clone(), e.op.clone(), e.body.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: usize) -> String {
        "x".repeat(n)
    }

    #[test]
    fn hit_miss_counters_and_lookup() {
        let mut c = ResultCache::new(1024);
        assert!(c.get("a").is_none());
        c.insert("a".into(), "verify".into(), body(10));
        assert_eq!(c.get("a"), Some(("verify".into(), body(10))));
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn never_exceeds_the_byte_budget() {
        let mut c = ResultCache::new(100);
        for i in 0..50 {
            c.insert(format!("key-{i}"), "verify".into(), body(20));
            assert!(
                c.used_bytes() <= c.max_bytes(),
                "{} > {} after insert {i}",
                c.used_bytes(),
                c.max_bytes()
            );
        }
        assert!(c.evictions > 0);
        assert!(!c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Each entry costs 1 (key) + 2 (op) + 27 (body) = 30 bytes; the
        // budget fits three.
        let mut c = ResultCache::new(90);
        for k in ["a", "b", "c"] {
            c.insert(k.into(), "op".into(), body(27));
        }
        // Touch `a`, making `b` the coldest.
        assert!(c.get("a").is_some());
        c.insert("d".into(), "op".into(), body(27));
        assert!(c.get("b").is_none(), "b was LRU and must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut c = ResultCache::new(10);
        c.insert("k".into(), "op".into(), body(100));
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = ResultCache::new(100);
        c.insert("k".into(), "op".into(), body(20));
        let used = c.used_bytes();
        c.insert("k".into(), "op".into(), body(20));
        assert_eq!(c.used_bytes(), used);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_order_is_reported_oldest_first() {
        let mut c = ResultCache::new(1024);
        c.insert("first".into(), "op".into(), body(5));
        c.insert("second".into(), "op".into(), body(5));
        let _ = c.get("first");
        let order: Vec<String> = c.entries_lru().into_iter().map(|(k, _, _)| k).collect();
        assert_eq!(order, ["second", "first"]);
    }
}
