//! Cache gossip: the snapshot codec on the wire.
//!
//! A restarted worker warms its cache shard by pulling entries from a
//! peer instead of re-exploring: it sends `{"op":"gossip"}` and the
//! peer answers with the same identity-digest-guarded encoding the
//! on-disk snapshot uses.  The receiver recomputes the digest before
//! merging, so a forged payload, a torn mid-transfer line, or a
//! mismatched identity is refused wholesale — the receiving cache is
//! left exactly as it was.  Merging is a plain union: entries are
//! content-addressed, so two nodes gossiping in either direction
//! converge on the union of their caches.

use std::time::Duration;

use spi_verify::jsonlite::Json;

use crate::client::Client;
use crate::snapshot::{snapshot_identity, Entries};

/// Encodes cache entries as a gossip response body — byte-compatible
/// with the snapshot file format (`version`/`identity`/`entries`).
#[must_use]
pub fn gossip_body(entries: &[(String, String, String)]) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Int(1)),
        ("identity".into(), Json::str(snapshot_identity(entries))),
        (
            "entries".into(),
            Json::Arr(
                entries
                    .iter()
                    .map(|(key, op, body)| {
                        Json::Obj(vec![
                            ("key".into(), Json::str(key.clone())),
                            ("op".into(), Json::str(op.clone())),
                            ("body".into(), Json::str(body.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes and *verifies* a gossip body.
///
/// # Errors
///
/// Fails on an unsupported version, a structurally incomplete entry
/// (torn transfer), or an identity digest that does not match the
/// contents (forgery) — in every case the caller merges nothing.
pub fn parse_gossip(body: &Json) -> Result<Entries, String> {
    match body.get("version").and_then(Json::as_int) {
        Some(1) => {}
        other => return Err(format!("unsupported gossip version {other:?}")),
    }
    let mut entries = Entries::new();
    for item in body.get("entries").and_then(Json::as_arr).unwrap_or_default() {
        let field = |k: &str| {
            item.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("a gossip entry lacks its {k:?}"))
        };
        entries.push((field("key")?, field("op")?, field("body")?));
    }
    let stored = body.get("identity").and_then(Json::as_str).unwrap_or("");
    let computed = snapshot_identity(&entries);
    if stored != computed {
        return Err(format!(
            "gossip identity mismatch (peer says {stored}, contents hash to {computed}); \
             refusing to merge"
        ));
    }
    Ok(entries)
}

/// Pulls and verifies a peer's cache entries over the wire.
///
/// # Errors
///
/// Fails when the peer is unreachable, answers with an error, or sends
/// a payload that does not verify (see [`parse_gossip`]).
pub fn pull_from(
    addr: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<Entries, String> {
    let mut client = Client::connect_with(addr, Some(connect_timeout))?;
    client.read_timeout(Some(read_timeout))?;
    let reply = client.roundtrip(r#"{"op":"gossip"}"#)?;
    let json = Json::parse(&reply).map_err(|e| format!("malformed gossip reply: {e}"))?;
    if json.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("gossip pull refused: {reply}"));
    }
    let body = json.get("body").ok_or("gossip reply lacks a body")?;
    parse_gossip(body)
}

/// Pushes cache entries *to* a peer (`{"op":"gossip-push"}`) — the
/// proactive half of gossip, used by the coordinator to hand a
/// draining worker's shard to its new ring owners before the process
/// dies.  The receiver digest-verifies the payload exactly as a pull.
///
/// # Errors
///
/// Fails when the peer is unreachable or refuses the payload.
pub fn push_to(
    addr: &str,
    entries: &[(String, String, String)],
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<usize, String> {
    let mut client = Client::connect_with(addr, Some(connect_timeout))?;
    client.read_timeout(Some(read_timeout))?;
    let line = Json::Obj(vec![
        ("op".into(), Json::str("gossip-push")),
        ("cache".into(), gossip_body(entries)),
    ])
    .render_compact();
    let reply = client.roundtrip(&line)?;
    let json = Json::parse(&reply).map_err(|e| format!("malformed gossip-push reply: {e}"))?;
    if json.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("gossip push refused: {reply}"));
    }
    let merged = json
        .get("body")
        .and_then(|b| b.get("merged"))
        .and_then(Json::as_int)
        .unwrap_or(0);
    Ok(usize::try_from(merged).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Entries {
        vec![
            (
                "fnv:aaaa".into(),
                "verify".into(),
                r#"{"verdict":"securely-implements"}"#.into(),
            ),
            ("fnv:bbbb".into(), "campaign".into(), r#"{"enumerated":3}"#.into()),
        ]
    }

    #[test]
    fn round_trips_entries() {
        let body = gossip_body(&sample());
        assert_eq!(parse_gossip(&body).unwrap(), sample());
        // And through a compact wire rendering.
        let reparsed = Json::parse(&body.render_compact()).unwrap();
        assert_eq!(parse_gossip(&reparsed).unwrap(), sample());
    }

    #[test]
    fn forged_contents_are_refused() {
        let body = gossip_body(&sample());
        let forged = body.render_compact().replace("securely-implements", "attack");
        let err = parse_gossip(&Json::parse(&forged).unwrap()).unwrap_err();
        assert!(err.contains("identity mismatch"), "{err}");
    }

    #[test]
    fn forged_identity_digest_is_refused() {
        let mut line = gossip_body(&sample()).render_compact();
        let id = line.find("fnv:").expect("identity present");
        line.replace_range(id + 4..id + 8, "dead");
        let err = parse_gossip(&Json::parse(&line).unwrap()).unwrap_err();
        assert!(err.contains("identity mismatch"), "{err}");
    }

    #[test]
    fn torn_transfers_merge_nothing() {
        // Truncate the rendered payload mid-entry: either the JSON no
        // longer parses, or an entry lacks a field — both refuse.
        let line = gossip_body(&sample()).render_compact();
        let torn = &line[..line.len() - 30];
        match Json::parse(torn) {
            Err(_) => {}
            Ok(json) => assert!(parse_gossip(&json).is_err()),
        }
    }

    #[test]
    fn empty_gossip_is_valid() {
        assert_eq!(parse_gossip(&gossip_body(&[])).unwrap(), Entries::new());
    }
}
