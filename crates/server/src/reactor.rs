//! A thin, std-only wrapper over Linux `epoll` — the readiness core of
//! the C10k front end.
//!
//! The workspace bakes in no external crates, so the four syscalls the
//! reactor needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) are declared directly against the C library the binary
//! already links.  Everything else — non-blocking accept, reads, and
//! writes — goes through the safe [`std::net`] API
//! (`set_nonblocking` + `ErrorKind::WouldBlock`), so the unsafe
//! surface is exactly these declarations and the buffer handed to
//! `epoll_wait`.
//!
//! Design points:
//!
//! * **One token per registration.**  Callers attach a `u64` token to
//!   each file descriptor; [`Poller::wait`] hands back `(token,
//!   readable, writable, hangup)` triples.  The reactor uses the token
//!   as a connection id, so a stale event after a close can be
//!   recognized and dropped.
//! * **Edge cases stay level-triggered.**  Registrations are
//!   level-triggered (the epoll default): a connection with unread
//!   bytes or unflushed output keeps firing until drained, which makes
//!   the event loop obviously restartable after any partial read or
//!   write.
//! * **A self-wake eventfd.**  Worker threads finish jobs off-loop and
//!   must nudge the reactor to deliver the replies; [`Poller::wake`]
//!   writes one count to an `eventfd` registered under
//!   [`WAKE_TOKEN`], and the loop drains it on wakeup.  Wakes coalesce
//!   (the counter accumulates), so a burst of completions costs one
//!   loop iteration.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};

/// The token [`Poller::wait`] reports when the self-wake eventfd fired.
/// Callers must not register their own descriptors under it.
pub const WAKE_TOKEN: u64 = u64::MAX;

// The subset of <sys/epoll.h> and <sys/eventfd.h> the reactor uses.
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event`; packed on x86-64 (the kernel ABI), naturally
/// aligned elsewhere — the same layout rule every C toolchain applies.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or a peer half-closed: `EPOLLRDHUP`
    /// folds in here so a read observes the EOF).
    pub readable: bool,
    /// The descriptor accepts writes.
    pub writable: bool,
    /// The peer hung up or the descriptor errored — the connection is
    /// done regardless of buffered plans.
    pub hangup: bool,
}

/// An epoll instance plus a self-wake eventfd.
///
/// `Sync` by construction: `wake` is the only method other threads
/// call, and a `write(2)` to an eventfd is atomic.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    wakefd: RawFd,
}

// The poller is shared so worker threads can `wake` it; both fds are
// plain kernel handles and every syscall here is thread-safe.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates the epoll instance and registers the wake eventfd under
    /// [`WAKE_TOKEN`].
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1`/`eventfd` failures (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let wakefd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if wakefd < 0 {
            let e = io::Error::last_os_error();
            unsafe { close(epfd) };
            return Err(e);
        }
        let poller = Poller { epfd, wakefd };
        poller.register(wakefd, WAKE_TOKEN, true, false)?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &raw mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers a descriptor under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures (bad fd, duplicate add).
    pub fn register(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Updates the interest set of a registered descriptor.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn rearm(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Removes a descriptor.  Safe to call on an already-closed fd (the
    /// error is swallowed — the kernel dropped the registration with
    /// the descriptor anyway).
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, false, false);
    }

    /// Waits for readiness, up to `timeout_ms` (`None` blocks
    /// indefinitely).  Returns the fired events; an elapsed timeout
    /// returns an empty vector.  The wake eventfd is drained here, so
    /// a [`WAKE_TOKEN`] event means "check your message queues" with
    /// no further reading required.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures other than `EINTR` (which
    /// retries).
    pub fn wait(&self, timeout_ms: Option<u64>, out: &mut Vec<Event>) -> io::Result<()> {
        out.clear();
        let timeout = timeout_ms.map_or(-1, |ms| c_int::try_from(ms).unwrap_or(c_int::MAX));
        let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
        let n = loop {
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    c_int::try_from(buf.len()).unwrap_or(c_int::MAX),
                    timeout,
                )
            };
            if rc >= 0 {
                break usize::try_from(rc).unwrap_or(0);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let events = { ev.events };
            let token = { ev.data };
            if token == WAKE_TOKEN {
                self.drain_wake();
                out.push(Event {
                    token,
                    readable: false,
                    writable: false,
                    hangup: false,
                });
                continue;
            }
            out.push(Event {
                token,
                readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }

    /// Nudges a blocked [`Poller::wait`] from any thread.  Wakes
    /// coalesce; calling this redundantly is cheap and harmless.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.wakefd, (&raw const one).cast::<c_void>(), 8) };
    }

    fn drain_wake(&self) {
        let mut counter: u64 = 0;
        // Nonblocking: one read resets the counter; EAGAIN means a
        // racing drain already did.
        let _ = unsafe { read(self.wakefd, (&raw mut counter).cast::<c_void>(), 8) };
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.wakefd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_fires_and_coalesces() {
        let poller = Poller::new().unwrap();
        poller.wake();
        poller.wake();
        poller.wake();
        let mut events = Vec::new();
        poller.wait(Some(1000), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, WAKE_TOKEN);
        // Drained: the next wait times out empty.
        poller.wait(Some(0), &mut events).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn timeout_returns_empty() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        poller.wait(Some(10), &mut events).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_is_reported_by_token() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 7, true, false)
            .unwrap();

        let mut events = Vec::new();
        poller.wait(Some(50), &mut events).unwrap();
        assert!(events.is_empty(), "no bytes yet");

        client.write_all(b"hello\n").unwrap();
        poller.wait(Some(1000), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread bytes keep the event firing.
        poller.wait(Some(1000), &mut events).unwrap();
        assert_eq!(events.len(), 1, "level-triggered re-report");

        let mut buf = [0u8; 16];
        let n = (&server_side).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello\n");
        poller.wait(Some(20), &mut events).unwrap();
        assert!(events.is_empty(), "drained");

        // Peer close surfaces as readable (EOF) and/or hangup.
        drop(client);
        poller.wait(Some(1000), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable || events[0].hangup);
        poller.deregister(server_side.as_raw_fd());
    }

    #[test]
    fn rearm_switches_interest_to_writes() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(server_side.as_raw_fd(), 3, true, false)
            .unwrap();
        poller
            .rearm(server_side.as_raw_fd(), 3, false, true)
            .unwrap();
        let mut events = Vec::new();
        poller.wait(Some(1000), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable, "an idle socket is writable");
    }
}
