//! Hostile-client hardening: malformed wire input, slowloris senders,
//! never-reading receivers, and quota-hogging tenants must each get a
//! structured answer or a surgical disconnect — never a panic, a
//! wedged worker slot, or collateral damage to other connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use spi_server::client::Client;
use spi_server::protocol::JobRequest;
use spi_server::service::{
    serve, Engine, EngineOutcome, RunControl, VerifierEngine, MAX_LINE_BYTES,
};
use spi_server::ServerOptions;
use spi_verify::jsonlite::Json;

fn start() -> spi_server::ServerHandle {
    start_with(|_| {})
}

fn start_with(configure: impl FnOnce(&mut ServerOptions)) -> spi_server::ServerHandle {
    let mut opts = ServerOptions {
        addr: "127.0.0.1:0".into(),
        ..ServerOptions::default()
    };
    configure(&mut opts);
    serve(
        Arc::new(VerifierEngine {
            explore_workers: Some(1),
        }),
        opts,
    )
    .expect("server starts")
}

fn parsed(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("bad response line {line:?}: {e}"))
}

fn status(resp: &Json) -> &str {
    resp.get("status").and_then(Json::as_str).expect("status")
}

/// Sends raw bytes and reads one response line over a plain socket
/// (the [`Client`] insists on UTF-8 strings, which is exactly what
/// these tests must not).
fn raw_roundtrip(stream: &mut TcpStream, payload: &[u8]) -> String {
    stream.write_all(payload).expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    line.trim_end().to_string()
}

#[test]
fn oversized_lines_get_a_structured_error_not_a_wedged_slot() {
    let handle = start();
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // A 10 MB request line: an order of magnitude past the cap.
    let huge = format!(r#"{{"op":"verify","concrete":"{}"}}"#, "x".repeat(10 * 1024 * 1024));
    assert!(huge.len() > MAX_LINE_BYTES);
    let resp = parsed(&client.roundtrip(&huge).unwrap());
    assert_eq!(status(&resp), "error");
    let reason = resp.get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("exceeds"), "{reason}");

    // The same connection still serves real work afterwards.
    let pong = parsed(&client.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(status(&pong), "ok");
    let verify = parsed(
        &client
            .roundtrip(r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#)
            .unwrap(),
    );
    assert_eq!(status(&verify), "ok");

    handle.join();
}

#[test]
fn invalid_utf8_is_answered_not_fatal() {
    let handle = start();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).ok();

    let mut payload = b"{\"op\":\"ping\", \"junk\":\"".to_vec();
    payload.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    payload.extend_from_slice(b"\"}\n");
    let resp = parsed(&raw_roundtrip(&mut stream, &payload));
    assert_eq!(status(&resp), "error");
    let reason = resp.get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("UTF-8"), "{reason}");

    // The connection survives the binary garbage.
    let pong = parsed(&raw_roundtrip(&mut stream, b"{\"op\":\"ping\"}\n"));
    assert_eq!(status(&pong), "ok");

    handle.join();
}

#[test]
fn truncated_json_and_unknown_ops_error_cleanly() {
    let handle = start();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    for bad in [
        r#"{"op":"verify","concrete":"0","abstr"#, // truncated mid-key
        r#"{"op":"verify","#,                      // truncated mid-object
        r#"{"op":"frobnicate"}"#,                  // unknown op
        r#"{"op":42}"#,                            // non-string op
        "]",                                       // not an object at all
    ] {
        let resp = parsed(&client.roundtrip(bad).unwrap());
        assert_eq!(status(&resp), "error", "for {bad:?}: {resp:?}");
        assert!(resp.get("reason").is_some(), "for {bad:?}");
    }

    // After the whole gauntlet, the server still does real work.
    let verify = parsed(
        &client
            .roundtrip(r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#)
            .unwrap(),
    );
    assert_eq!(status(&verify), "ok");

    handle.join();
}

#[test]
fn stats_expose_the_new_metrics_surface() {
    let handle = start();
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let line = r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#;
    let _ = client.roundtrip(line).unwrap(); // miss
    let _ = client.roundtrip(line).unwrap(); // hit

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = stats.get("body").expect("body");
    for key in [
        "hits",
        "misses",
        "hit_rate_pct",
        "evictions",
        "collapsed",
        "queue_depth",
        "latency",
    ] {
        assert!(body.get(key).is_some(), "stats lacks {key:?}: {body:?}");
    }
    let pct = body.get("hit_rate_pct").and_then(Json::as_int).unwrap();
    assert!((1..=100).contains(&pct), "one hit, one miss: {pct}");
    let latency = body.get("latency").expect("latency");
    let verify = latency.get("verify").expect("per-op histogram");
    assert!(verify.get("count").and_then(Json::as_int).unwrap() >= 2);
    for q in ["p50_us", "p99_us"] {
        assert!(verify.get(q).and_then(Json::as_int).unwrap() > 0, "{q}");
    }
    // The C10k front end's counters are part of the surface too.
    for key in ["shed", "quota_denied", "active_connections", "heartbeats_sent"] {
        assert!(body.get(key).is_some(), "stats lacks {key:?}: {body:?}");
    }
    assert!(
        body.get("active_connections").and_then(Json::as_int).unwrap() >= 1,
        "this very connection is registered"
    );

    handle.join();
}

#[test]
fn slowloris_partial_line_is_reaped_while_others_are_served() {
    let handle = start_with(|o| o.read_deadline_ms = 200);
    let addr = handle.addr();

    // The attacker dribbles a request one byte at a time, never
    // finishing the line.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"{\"op\":\"pi").unwrap();
    slow.flush().unwrap();

    // A well-behaved neighbour is completely unaffected meanwhile.
    let mut good = Client::connect(&addr.to_string()).unwrap();
    let pong = parsed(&good.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(status(&pong), "ok");

    // Past the read deadline the attacker's socket is closed: the next
    // read sees EOF, not an eternally parked connection.
    std::thread::sleep(Duration::from_millis(600));
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut sink = Vec::new();
    let n = slow.read_to_end(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "the reaped connection delivers nothing");

    // An idle connection with *no* buffered bytes is never reaped.
    let pong = parsed(&good.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(status(&pong), "ok");

    handle.join();
}

/// An engine whose responses are megabyte-sized, so a non-reading
/// client's output accumulates fast.
struct BlobEngine;

impl Engine for BlobEngine {
    fn run(&self, _job: &JobRequest, _ctl: &RunControl) -> EngineOutcome {
        EngineOutcome {
            body: Ok(Json::Obj(vec![(
                "blob".into(),
                Json::str("x".repeat(1024 * 1024)),
            )])),
            cacheable: true,
        }
    }
}

/// Clamps the socket's kernel receive buffer so a non-reading client
/// cannot lean on TCP autotuning (tcp_rmem scales to tens of MB on
/// loopback) to absorb the server's entire output stream.
fn shrink_recv_buffer(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
    }
    let bytes: i32 = 16 * 1024;
    // SOL_SOCKET = 1, SO_RCVBUF = 8 on Linux.
    let rc = unsafe { setsockopt(stream.as_raw_fd(), 1, 8, &bytes, 4) };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[test]
fn never_reading_client_trips_the_write_cap_not_the_heap() {
    let handle = serve(
        Arc::new(BlobEngine),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            write_buf_bytes: 256 * 1024,
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Pipeline many requests for ~1 MB responses and read none of
    // them: the kernel buffers fill, then the server-side write buffer
    // hits its cap and the connection is cut instead of growing.
    let mut greedy = TcpStream::connect(addr).unwrap();
    shrink_recv_buffer(&greedy);
    let line = r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1}"#;
    let requests = 24usize;
    for _ in 0..requests {
        greedy.write_all(line.as_bytes()).unwrap();
        greedy.write_all(b"\n").unwrap();
    }
    greedy.flush().unwrap();

    // Crucially, do NOT read yet: the kernel buffers fill, the server's
    // write buffer hits its cap, and the reactor cuts the connection.
    std::thread::sleep(Duration::from_millis(1500));

    // The server dropped the greedy connection: a fresh client is the
    // only one it still tracks, and it is served normally.
    let mut good = Client::connect(&addr.to_string()).unwrap();
    let stats = parsed(&good.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let live = stats
        .get("body")
        .and_then(|b| b.get("active_connections"))
        .and_then(Json::as_int);
    assert_eq!(live, Some(1), "the greedy connection was cut: {stats:?}");
    let pong = parsed(&good.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(status(&pong), "ok");

    // The greedy client sees only what was in flight in the kernel —
    // far less than the ~24 MB a well-read client would have gotten.
    // (The teardown may surface as EOF, a reset, or a final timeout,
    // depending on how much the kernel had queued; all are fine — the
    // point is the stream dies bounded instead of growing the heap.)
    greedy
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut sink = Vec::new();
    let _ = greedy.read_to_end(&mut sink);
    let got = sink.len();
    assert!(
        got < requests * 1024 * 1024 / 2,
        "expected a cut stream, read {got} bytes"
    );

    handle.join();
}

#[test]
fn quota_exhausted_tenant_is_shed_while_others_proceed() {
    // 1 token/second, burst 2: the third uncached job in a burst is
    // over quota.
    let handle = start_with(|o| {
        o.quota_rate = 1;
        o.quota_burst = 2;
    });
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();

    let job = |sessions: u32, tenant: &str| {
        format!(
            r#"{{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":{sessions},"tenant":"{tenant}"}}"#
        )
    };
    // Distinct questions so the cache fast path (which deliberately
    // bypasses quotas — hits cost nothing) stays out of the way.
    for sessions in 1..=2 {
        let resp = parsed(&client.roundtrip(&job(sessions, "noisy")).unwrap());
        assert_eq!(status(&resp), "ok", "{resp:?}");
    }
    let shed = parsed(&client.roundtrip(&job(3, "noisy")).unwrap());
    assert_eq!(status(&shed), "rejected", "{shed:?}");
    let reason = shed.get("reason").and_then(Json::as_str).unwrap();
    assert!(reason.contains("quota"), "{reason}");
    let retry = shed.get("retry_after_ms").and_then(Json::as_int).unwrap();
    assert!(retry > 0, "a shed answer tells the tenant when to return");

    // A different tenant's bucket is untouched.
    let polite = parsed(&client.roundtrip(&job(3, "polite")).unwrap());
    assert_eq!(status(&polite), "ok", "{polite:?}");

    // And a cache *hit* is served even to the throttled tenant.
    let hit = parsed(&client.roundtrip(&job(1, "noisy")).unwrap());
    assert_eq!(status(&hit), "ok");
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let body = stats.get("body").expect("body");
    assert!(body.get("quota_denied").and_then(Json::as_int).unwrap() >= 1);

    handle.join();
}

/// A deliberately slow engine for heartbeat observation.
struct SlowEngine(Duration);

impl Engine for SlowEngine {
    fn run(&self, _job: &JobRequest, _ctl: &RunControl) -> EngineOutcome {
        std::thread::sleep(self.0);
        EngineOutcome {
            body: Ok(Json::Obj(vec![("answer".into(), Json::Int(1))])),
            cacheable: true,
        }
    }
}

#[test]
fn progress_ms_streams_heartbeats_before_the_final_answer() {
    let handle = serve(
        Arc::new(SlowEngine(Duration::from_millis(700))),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(&handle.addr().to_string()).unwrap();
    // A short per-line read timeout that only survives because every
    // heartbeat resets it — the satellite point of streaming progress.
    client.read_timeout(Some(Duration::from_millis(400))).unwrap();

    let line = r#"{"op":"verify","concrete":"(^m)c<m>|c(x).observe<x>","abstract":"(^m)c<m>|c(x).observe<x>","sessions":1,"progress_ms":100}"#;
    let mut beats: Vec<Json> = Vec::new();
    let final_line = client
        .roundtrip_streaming(line, |beat| beats.push(parsed(beat)))
        .unwrap();
    let resp = parsed(&final_line);
    assert_eq!(status(&resp), "ok", "{resp:?}");
    assert!(
        beats.len() >= 2,
        "a 700ms run at 100ms intervals heartbeats several times, got {}",
        beats.len()
    );
    for beat in &beats {
        assert_eq!(status(beat), "progress");
        assert_eq!(beat.get("op").and_then(Json::as_str), Some("verify"));
        assert!(beat.get("states_explored").is_some(), "{beat:?}");
        assert!(beat.get("schedules_classified").is_some(), "{beat:?}");
    }

    // The cached repeat answers instantly with zero heartbeats, and
    // the envelope bytes are unaffected by the subscription.
    let mut repeats = 0usize;
    let cached = client
        .roundtrip_streaming(line, |_| repeats += 1)
        .unwrap();
    let cached = parsed(&cached);
    assert_eq!(cached.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(repeats, 0, "cache hits stream no heartbeats");

    let stats = parsed(&client.roundtrip(r#"{"op":"stats"}"#).unwrap());
    let sent = stats
        .get("body")
        .and_then(|b| b.get("heartbeats_sent"))
        .and_then(Json::as_int)
        .unwrap();
    assert!(sent >= 2, "stats count the beats: {sent}");

    handle.join();
}
